#!/usr/bin/env python
"""Tour of the features beyond the paper's core evaluation.

1. **Diurnal arrivals** — a day/night load cycle through the simulator.
2. **Read/write mix** (§6 future work) — writes steered to spinning disks
   per the §1.1 policy, new files allocated on the fly.
3. **Periodic reorganization** (§1.1) — re-pack from observed access
   statistics each epoch.
4. **Multi-state DPM ladder** (§2's framework) — an intermediate "nap"
   state between idle and standby, with the 2-competitive lower-envelope
   schedule.

Usage::

    python examples/extensions_tour.py
"""

import numpy as np

from repro import StorageConfig, StorageSystem
from repro.disk import ST3500630AS
from repro.disk.dpm import DpmState, MultiStateDpmPolicy
from repro.disk.multistate import MultiStateDiskDrive
from repro.sim import Environment
from repro.system import ReorganizingRunner, allocate
from repro.units import HOUR, MB
from repro.workload import (
    FileCatalog,
    MixedWorkloadParams,
    diurnal_rate,
    generate_mixed_workload,
    nonhomogeneous_stream,
)


def part1_diurnal(catalog: FileCatalog) -> None:
    print("=" * 64)
    print("1. Diurnal load cycle (nonhomogeneous Poisson via thinning)")
    rate = diurnal_rate(mean_rate=0.3, amplitude=0.9, peak_hour=14.0)
    stream = nonhomogeneous_stream(
        catalog.popularities, rate, peak_rate=0.6, duration=12 * HOUR, rng=1
    )
    tod = stream.times % (24 * HOUR)
    day = int(np.sum((tod > 6 * HOUR) & (tod < 18 * HOUR)))
    print(f"   {len(stream)} requests over 12 h; "
          f"{day} in daytime hours vs {len(stream) - day} at night")
    cfg = StorageConfig(num_disks=15, load_constraint=0.8)
    alloc = allocate(catalog, "pack", cfg, stream.mean_rate)
    system = StorageSystem(catalog, alloc.mapping(catalog.n), cfg)
    res = system.run(stream)
    print(f"   simulated: {res.completions} served, "
          f"saving vs always-on {res.power_saving_normalized:.1%}, "
          f"mean response {res.mean_response:.2f} s\n")


def part2_writes(catalog: FileCatalog) -> None:
    print("=" * 64)
    print("2. Read/write mix with the paper's write policy (§1.1)")
    extended, stream = generate_mixed_workload(
        catalog,
        MixedWorkloadParams(
            write_fraction=0.3, new_file_fraction=0.5,
            arrival_rate=0.5, duration=2_000.0, seed=2,
        ),
    )
    cfg = StorageConfig(num_disks=15, load_constraint=0.8)
    alloc = allocate(catalog, "pack", cfg, 0.5)
    mapping = np.full(extended.n, -1, dtype=np.int64)
    mapping[: catalog.n] = alloc.mapping(catalog.n)
    system = StorageSystem(extended, mapping, cfg)
    res = system.run(stream, duration=stream.duration + 100)
    new_files = extended.n - catalog.n
    print(f"   {len(stream)} requests ({stream.write_fraction:.0%} writes), "
          f"{new_files} brand-new files allocated on write")
    print(f"   all completed: {res.completions == res.arrivals}, "
          f"writes routed: {system.dispatcher.write_count}\n")


def part3_reorganization(catalog: FileCatalog) -> None:
    print("=" * 64)
    print("3. Periodic reorganization from observed statistics (§1.1)")
    from repro.workload import RequestStream

    stream = RequestStream.poisson(
        catalog.popularities, rate=0.5, duration=3_000.0, rng=3
    )
    cfg = StorageConfig(num_disks=15, load_constraint=0.8)
    runner = ReorganizingRunner(catalog, cfg, interval=1_000.0)
    res = runner.run(stream)
    print(f"   {int(res.extra['epochs'])} epochs, mean "
          f"{res.extra['mean_moved_files']:.0f} files re-placed per epoch")
    print(f"   energy {res.energy / 3.6e6:.3f} kWh, "
          f"mean response {res.mean_response:.2f} s\n")


def part4_dpm() -> None:
    print("=" * 64)
    print("4. Multi-state DPM: idle -> nap -> standby ladder (§2 framework)")
    ladder = [
        DpmState("idle", 9.3, 0.0, 0.0),
        DpmState("nap", 4.0, 60.0, 2.0),
        DpmState("standby", 0.8, 453.0, 15.0),
    ]
    policy = MultiStateDpmPolicy(ladder)
    t1, t2 = policy.thresholds()
    print(f"   lower-envelope thresholds: nap at {t1:.1f} s, "
          f"standby at {t2:.1f} s (2-competitive)")
    env = Environment()
    drive = MultiStateDiskDrive(env, ST3500630AS, policy)
    gaps = np.random.default_rng(4).exponential(90.0, size=200)
    times = np.cumsum(gaps)

    def feeder(env):
        for t in times:
            yield env.timeout(t - env.now)
            drive.submit(0, 72 * MB)

    env.process(feeder(env))
    env.run(until=float(times[-1]) + 50)
    durations = drive.state_durations()
    napped = durations.get("nap", 0.0)
    print(f"   mean power {drive.mean_power():.2f} W; time napping "
          f"{napped:.0f} s of {env.now:.0f} s; "
          f"mean response {drive.stats.response.mean:.2f} s")


def main() -> None:
    catalog = FileCatalog.from_zipf(n=1_000, s_max=2e9, s_min=100 * MB)
    part1_diurnal(catalog)
    part2_writes(catalog)
    part3_reorganization(catalog)
    part4_dpm()


if __name__ == "__main__":
    main()
