#!/usr/bin/env python
"""Explore the power/response trade-off curve (the paper's Figure 4).

Sweeps the load constraint L at a fixed arrival rate, simulating each
operating point and overlaying the closed-form M/G/1 + idle-power analysis,
then renders both curves as terminal plots.

Usage::

    python examples/tradeoff_explorer.py [--rate 6] [--scale 0.25]
"""

import argparse

from repro.experiments import fig4_tradeoff
from repro.reporting.ascii_plot import ascii_plot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=6.0)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="simulated-duration fraction of the paper's 4000 s")
    parser.add_argument("--files", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=20090525)
    args = parser.parse_args()

    print(f"Sweeping L at R={args.rate:g} (scale {args.scale:g}) ...\n")
    result = fig4_tradeoff.run(
        scale=args.scale, seed=args.seed, rate=args.rate,
        n_files=args.files,
    )
    bundle = result.bundles["tradeoff"]

    power = bundle.series["Power (W)"]
    power_a = bundle.series["Power analytic (W)"]
    print(ascii_plot(
        {
            "simulated": (power.x, power.y),
            "analytic": (power_a.x, power_a.y),
        },
        title="Array power vs load constraint L",
        x_label="L", y_label="W",
    ))
    print()

    resp = bundle.series["Response (s)"]
    resp_a = bundle.series["Response analytic (s)"]
    print(ascii_plot(
        {
            "simulated": (resp.x, resp.y),
            "analytic": (resp_a.x, resp_a.y),
        },
        title="Mean response time vs load constraint L",
        x_label="L", y_label="s",
    ))
    print()
    print(result.bundle_table("disks"))
    for note in result.notes:
        print("note:", note)


if __name__ == "__main__":
    main()
