#!/usr/bin/env python
"""Disk-farm sizing: how many disks must stay online to meet a response SLA?

The paper names this as a direct application: "obtaining reliable estimates
on the size of a disk farm needed to support a given workload of requests
while satisfying constraints on I/O response times" (§6).  This example
plans a farm for a Zipf workload with the analytic models, then validates
the recommended plan with a short simulation.

Usage::

    python examples/capacity_planning.py [--rate 6] [--target 15]
"""

import argparse

from repro import StorageConfig, generate_workload
from repro.analysis import minimum_disks, plan_disk_farm
from repro.system import run_policy
from repro.workload import SyntheticWorkloadParams


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=6.0)
    parser.add_argument("--target", type=float, default=15.0,
                        help="mean response-time target (s)")
    parser.add_argument("--files", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    workload = generate_workload(
        SyntheticWorkloadParams(
            n_files=args.files, arrival_rate=args.rate,
            duration=1_200.0, seed=args.seed,
        )
    )
    cat = workload.catalog
    config = StorageConfig()

    print(f"Workload: {cat.n} files, {cat.total_bytes / 1e12:.2f} TB, "
          f"R={args.rate}/s")
    print(f"Continuous lower bound on farm size: "
          f"{minimum_disks(cat, config, args.rate)} disks\n")

    print(f"Candidate plans (response target {args.target:.0f} s):")
    plans = plan_disk_farm(cat, args.rate, args.target, config=config)
    for plan in plans:
        print(" ", plan)
    best = next(p for p in plans if p.feasible)
    print(f"\nRecommended: L={best.load_constraint:.2f} with "
          f"{best.num_disks} disks "
          f"(analytic response {best.expected_response:.1f} s)\n")

    print("Validating the recommended plan by simulation ...")
    cfg = config.with_overrides(
        load_constraint=best.load_constraint,
        num_disks=best.num_disks,
    )
    result = run_policy(cat, workload.stream, "pack", cfg,
                        arrival_rate=args.rate)
    print(result.summary())
    ok = result.mean_response <= args.target * 1.5
    print(f"\nSimulated mean response {result.mean_response:.1f} s vs "
          f"target {args.target:.0f} s: "
          f"{'within tolerance' if ok else 'OVER TARGET — consider lower L'}")


if __name__ == "__main__":
    main()
