#!/usr/bin/env python
"""Quickstart: pack a Zipf catalog, simulate, compare against random.

Runs a laptop-sized version of the paper's core experiment: generate the
Table 1 workload, allocate files with ``Pack_Disks`` and with random
placement, replay the same Poisson request stream through the simulated
disk array, and report energy and response time.

Usage::

    python examples/quickstart.py [--rate 4] [--files 8000] [--duration 1500]
"""

import argparse

from repro import StorageConfig, generate_workload, run_policy
from repro.workload import SyntheticWorkloadParams


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=2.0,
                        help="Poisson arrival rate R (requests/s)")
    parser.add_argument("--files", type=int, default=12_000,
                        help="number of files in the catalog")
    parser.add_argument("--duration", type=float, default=1_500.0,
                        help="simulated seconds")
    parser.add_argument("--load", type=float, default=0.7,
                        help="load constraint L (fraction of disk time)")
    parser.add_argument("--disks", type=int, default=60,
                        help="disk pool size (random baseline uses all)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print(f"Generating workload: {args.files} files, R={args.rate}/s, "
          f"{args.duration:.0f} s ...")
    workload = generate_workload(
        SyntheticWorkloadParams(
            n_files=args.files,
            arrival_rate=args.rate,
            duration=args.duration,
            seed=args.seed,
        )
    )
    cat = workload.catalog
    print(f"  footprint {cat.total_bytes / 1e12:.2f} TB, "
          f"sizes {cat.sizes.min() / 1e6:.0f} MB .. {cat.sizes.max() / 1e9:.0f} GB, "
          f"{len(workload.stream)} requests\n")

    config = StorageConfig(num_disks=args.disks, load_constraint=args.load)

    print("Simulating Pack_Disks allocation ...")
    packed = run_policy(cat, workload.stream, "pack", config,
                        arrival_rate=args.rate)
    print(packed.summary(), "\n")

    print("Simulating random allocation ...")
    rnd = run_policy(cat, workload.stream, "random", config,
                     arrival_rate=args.rate, rng=args.seed)
    print(rnd.summary(), "\n")

    saving = packed.power_saving_vs(rnd)
    ratio = packed.response_ratio_vs(rnd)
    print(f"Power saving of Pack_Disks vs random: {saving:.1%}")
    print(f"Response-time ratio (pack / random):  {ratio:.2f}x")
    print("\nThe paper's Figure 2/3 headline: large savings at low rates "
          "for a modest response-time cost.")


if __name__ == "__main__":
    main()
