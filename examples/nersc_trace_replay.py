#!/usr/bin/env python
"""Trace-driven evaluation: replay a NERSC-like 30-day log (paper §5.1).

Synthesizes a trace matching the published NERSC statistics (or loads a
real trace from CSV if you have one), then compares RND / Pack_Disk /
Pack_Disk4 with and without a 16 GB LRU cache at a chosen idleness
threshold — one column of Figures 5 and 6.

Usage::

    python examples/nersc_trace_replay.py [--scale 0.1] [--threshold 0.5]
    python examples/nersc_trace_replay.py --trace mylog.csv
"""

import argparse

from repro import StorageConfig
from repro.system import allocate, simulate
from repro.units import GiB, HOUR
from repro.workload import (
    NerscTraceParams,
    load_trace_csv,
    nersc_statistics,
    synthesize_nersc_trace,
)

CONFIGS = (
    ("RND", "random", None),
    ("Pack_Disk", "pack", None),
    ("Pack_Disk4", "pack_v4", None),
    ("RND+LRU", "random", "lru"),
    ("Pack_Disk4+LRU", "pack_v4", "lru"),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="trace size fraction (1.0 = full 115832 requests)")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="idleness threshold in hours")
    parser.add_argument("--trace", type=str, default=None,
                        help="CSV trace file to replay instead of synthesizing")
    parser.add_argument("--seed", type=int, default=20080531)
    args = parser.parse_args()

    if args.trace:
        print(f"Loading trace from {args.trace} ...")
        trace = load_trace_csv(args.trace)
    else:
        params = NerscTraceParams(seed=args.seed)
        if args.scale < 1.0:
            params = params.scaled(args.scale)
        print(f"Synthesizing NERSC-like trace (scale {args.scale:g}) ...")
        trace = synthesize_nersc_trace(params)

    stats = nersc_statistics(trace)
    print("Trace statistics (paper §5.1 reports the full-scale values):")
    for key, value in stats.items():
        print(f"  {key:>28}: {value:,.4g}")
    print()

    rate = trace.mean_request_rate()
    base = StorageConfig(
        load_constraint=0.8,
        idleness_threshold=args.threshold * HOUR,
        cache_capacity=16 * GiB,
    )
    allocations = {
        policy: allocate(trace.catalog, policy, base, rate)
        for policy in ("pack", "pack_v4")
    }
    num_disks = max(a.num_disks for a in allocations.values())
    allocations["random"] = allocate(trace.catalog, "random", base, rate,
                                     rng=args.seed, num_disks=num_disks)
    print(f"Pack_Disks uses {allocations['pack'].num_disks} disks; every "
          f"config gets the same {num_disks}-disk pool (as in the paper).\n")

    print(f"{'config':<16} {'saving':>8} {'mean rsp':>9} {'median':>8} "
          f"{'spin-ups':>9} {'cache hit':>9}")
    for name, policy, cache in CONFIGS:
        cfg = base.with_overrides(num_disks=num_disks, cache_policy=cache)
        alloc = allocations[policy]
        res = simulate(trace.catalog, trace.stream, alloc, cfg,
                       num_disks=num_disks, label=name)
        hit = (f"{res.cache_stats.hit_ratio:8.3f}"
               if res.cache_stats is not None else "       -")
        print(f"{name:<16} {res.power_saving_normalized:8.3f} "
              f"{res.mean_response:9.2f} {res.median_response:8.2f} "
              f"{res.spinups:9d} {hit}")

    print("\nPaper's Figure 5/6 shape: Pack_Disk(4) saves ~85% at any "
          "threshold; RND's saving and response depend strongly on it.")


if __name__ == "__main__":
    main()
