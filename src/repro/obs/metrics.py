"""Counters, gauges, and histograms for run observability.

A small metrics registry subsumes the one-off counters that used to be
scattered across the engines (spinup/spindown tallies, cache stats,
controller bookkeeping): anything a run wants to report rolls up into a
:class:`MetricsRegistry` whose :meth:`~MetricsRegistry.snapshot` is a
plain-JSON dict.  :func:`observability_snapshot` builds the structured
snapshot attached to ``SimulationResult.extra["obs"]`` from a finished
result plus (optionally) the observer that watched it.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_SNAPSHOT_VERSION",
    "observability_snapshot",
]

#: Version of the ``extra["obs"]`` snapshot layout.
OBS_SNAPSHOT_VERSION = 1

#: Default histogram bucket bounds for response times, in seconds
#: (log-spaced from sub-ms cache hits to multi-minute spin-up stalls).
DEFAULT_RESPONSE_BOUNDS = (
    0.001,
    0.003,
    0.01,
    0.03,
    0.1,
    0.3,
    1.0,
    3.0,
    10.0,
    30.0,
    100.0,
    300.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bound bucketed distribution with exact count/total/min/max.

    ``counts`` has ``len(bounds) + 1`` entries; ``counts[i]`` holds
    observations ``<= bounds[i]`` (last bucket is the overflow).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_RESPONSE_BOUNDS) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted: {bounds!r}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Sequence[float]) -> None:
        for value in values:
            self.observe(value)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": (self.total / self.count) if self.count else None,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_RESPONSE_BOUNDS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }


def _state_totals(result: Any) -> Dict[str, float]:
    """Pool-total seconds per state label (``DiskState`` or ladder str)."""
    durations = getattr(result, "state_durations", None) or {}
    totals: Dict[str, float] = {}
    for state, seconds in durations.items():
        label = getattr(state, "name", None)
        label = label.lower() if isinstance(label, str) else str(state)
        totals[label] = totals.get(label, 0.0) + float(seconds)
    return totals


def observability_snapshot(result: Any, observer: Any = None) -> Dict[str, Any]:
    """Build the ``extra["obs"]`` snapshot for a finished run.

    Rolls the result's own tallies (arrivals, spin transitions, energy,
    per-state residency, cache stats, response distribution) into one
    registry, and merges the event counts of an observer that carries a
    ``registry`` attribute (e.g. ``repro.obs.trace.TraceRecorder``).
    """
    registry = MetricsRegistry()

    registry.counter("run.arrivals").inc(int(getattr(result, "arrivals", 0) or 0))
    registry.counter("run.spinups").inc(int(getattr(result, "spinups", 0) or 0))
    registry.counter("run.spindowns").inc(int(getattr(result, "spindowns", 0) or 0))

    registry.gauge("run.duration_s").set(float(getattr(result, "duration", 0.0) or 0.0))
    energy = getattr(result, "energy_per_disk", None)
    if energy is not None:
        registry.gauge("run.energy_j").set(float(sum(energy)))
        registry.gauge("run.num_disks").set(float(len(energy)))

    for label, seconds in _state_totals(result).items():
        registry.gauge(f"state.{label}_s").set(seconds)

    cache_stats = getattr(result, "cache_stats", None)
    if cache_stats is not None:
        for field in ("hits", "misses", "insertions", "evictions", "rejected"):
            value = getattr(cache_stats, field, None)
            if value is not None:
                registry.counter(f"cache.{field}").inc(int(value))

    responses = getattr(result, "response_times", None)
    if responses is not None and len(responses):
        registry.histogram("response_s").observe_many(responses)
    elif responses is None:
        # Streaming-metrics run: the per-request array was never
        # materialized, but the bounded accumulator still knows the
        # distribution — report it as gauges so observed
        # ``metrics_mode="streaming"`` runs keep a response section.
        stats = getattr(result, "response_stats", None)
        if stats is not None and stats.count:
            registry.gauge("response.count").set(float(stats.count))
            registry.gauge("response.mean_s").set(stats.mean)
            registry.gauge("response.min_s").set(stats.min)
            registry.gauge("response.max_s").set(stats.max)
            for name, value in (
                ("p50", stats.p50), ("p95", stats.p95), ("p99", stats.p99)
            ):
                # NaN (pre-warmup estimator or a lossy merge) is not a
                # measurement; omit the gauge rather than publish it.
                if not math.isnan(value):
                    registry.gauge(f"response.{name}_s").set(value)

    snapshot = {"version": OBS_SNAPSHOT_VERSION, "run": registry.snapshot()}

    events: Optional[MetricsRegistry] = getattr(observer, "registry", None)
    if isinstance(events, MetricsRegistry):
        snapshot["events"] = events.snapshot()
    return snapshot
