"""The ``RunObserver`` hook protocol: simulated-time run observability.

Both engines thread a single observer object through
:meth:`repro.system.storage.StorageSystem.run` and report what the
simulated system *did* — disk power-state spans (including ladder rung
dwells), cache hits/misses/admissions/evictions, online-controller
threshold decisions, and write-placement choices.  Every timestamp an
observer receives is **simulated seconds** (the event-loop clock /
kernel arrival clock), never wall-clock; orchestrator-layer wall-clock
profiling lives in ``repro.experiments.orchestrator`` instead (rule
R004 keeps the two from mixing, and rule R007 keeps sim-tree
observability on this protocol).

Observation is strictly passive: engines only *append* to an observer,
so an instrumented run is bit-identical to an uninstrumented one.  The
differential harness enforces this across the random config space
(``tests/differential/test_differential.py::test_observer_runs_bit_identical``).

Granularity differs by engine, results do not: the event engine emits
the full per-request drive timeline (seek/active spans included), while
the fast kernel emits power-state *transitions* (spin-downs, spin-ups,
standby dwells, ladder rung changes) recovered from its span logs at
batch boundaries — per-request service spans would defeat its batching.

Hot paths stay allocation-free by normalizing observers up front with
:func:`active_observer`: a disabled (or absent) observer becomes
``None`` and the kernels take their original, untouched branches.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = [
    "RunObserver",
    "NullObserver",
    "NULL_OBSERVER",
    "CACHE_EVENT_KINDS",
    "active_observer",
]

#: Vocabulary of ``on_cache_event`` kinds, in lifecycle order.
CACHE_EVENT_KINDS = ("hit", "miss", "admit", "evict")


class RunObserver:
    """Base observer: every hook is a no-op; subclass what you need.

    Subclasses must treat every call as read-only telemetry — mutating
    engine state from a hook voids the bit-identity contract.
    """

    #: Engines skip all instrumentation when this is falsy (see
    #: :func:`active_observer`); ``NullObserver`` flips it off.
    enabled: bool = True

    def on_state_span(self, disk: int, state: str, start: float, end: float) -> None:
        """A disk dwelled in ``state`` over ``[start, end)`` sim-seconds.

        ``state`` labels are lowercase power states (``"spinning"``,
        ``"spindown"``, ``"standby"``, ``"spinup"``, ``"seek"``,
        ``"active"``) or ladder vocabulary (rung names plus
        ``"down:<rung>"`` / ``"wake:<rung>"`` transitions).
        """

    def on_cache_event(self, time: float, kind: str, file_id: int) -> None:
        """A shared-cache event (``kind`` in :data:`CACHE_EVENT_KINDS`)."""

    def on_thresholds(self, time: float, thresholds: Sequence[float]) -> None:
        """An online DPM controller pushed per-disk idleness thresholds."""

    def on_placement(self, time: float, file_id: int, disk: int) -> None:
        """A write-placement policy allocated ``file_id`` to ``disk``."""


class NullObserver(RunObserver):
    """The default do-nothing observer; engines treat it as absent."""

    enabled = False


#: Shared default instance — safe because it carries no state.
NULL_OBSERVER = NullObserver()


def active_observer(observer: Optional[RunObserver]) -> Optional[RunObserver]:
    """Normalize an observer argument to ``None`` unless it is enabled.

    Engines call this once at the top of a run so their hot loops test
    a plain ``obs is not None`` instead of a method lookup.
    """
    if observer is None or not getattr(observer, "enabled", True):
        return None
    return observer
