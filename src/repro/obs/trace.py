"""Chrome-trace-event export for simulated-time run traces.

:class:`TraceRecorder` is a :class:`~repro.obs.hooks.RunObserver` that
buffers everything the engines emit and serializes it in the Chrome
trace-event JSON format, loadable in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``.  Simulated seconds map to trace microseconds
(``ts = t * 1e6``), so one trace-second of UI time is one simulated
second.

Track layout:

==== ====================== =========================================
pid  process name           content
==== ====================== =========================================
0    ``disk-state``         one thread per disk; B/E span pairs per
                            power state / ladder rung dwell
1    ``cache``              instant events: hit/miss/admit/evict
2    ``control``            instant events: threshold pushes
3    ``placement``          one thread per disk; write allocations
==== ====================== =========================================

:func:`sweep_chrome_trace` reuses the same format for the orchestrator's
*wall-clock* sweep profiles (one thread per worker pid) — that trace is
about where real time went, and never mixes with simulated-time tracks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from repro.obs.hooks import RunObserver
from repro.obs.metrics import MetricsRegistry

__all__ = ["TraceRecorder", "sweep_chrome_trace", "write_trace"]

_PID_DISK = 0
_PID_CACHE = 1
_PID_CONTROL = 2
_PID_PLACEMENT = 3

_PROCESS_NAMES = {
    _PID_DISK: "disk-state",
    _PID_CACHE: "cache",
    _PID_CONTROL: "control",
    _PID_PLACEMENT: "placement",
}


class TraceRecorder(RunObserver):
    """Buffer observer events and export them as a Chrome trace.

    Also keeps per-event-type counts in ``self.registry`` so a recorded
    run's ``extra["obs"]`` snapshot carries an ``events`` section.
    """

    def __init__(self) -> None:
        self.state_spans: List[Tuple[int, str, float, float]] = []
        self.cache_events: List[Tuple[float, str, int]] = []
        self.threshold_events: List[Tuple[float, Tuple[float, ...]]] = []
        self.placements: List[Tuple[float, int, int]] = []
        self.registry = MetricsRegistry()

    # -- RunObserver hooks -------------------------------------------------

    def on_state_span(self, disk: int, state: str, start: float, end: float) -> None:
        self.state_spans.append((disk, state, start, end))
        self.registry.counter(f"span.{state}").inc()

    def on_cache_event(self, time: float, kind: str, file_id: int) -> None:
        self.cache_events.append((time, kind, file_id))
        self.registry.counter(f"cache.{kind}").inc()

    def on_thresholds(self, time: float, thresholds: Sequence[float]) -> None:
        self.threshold_events.append((time, tuple(float(t) for t in thresholds)))
        self.registry.counter("control.threshold_updates").inc()

    def on_placement(self, time: float, file_id: int, disk: int) -> None:
        self.placements.append((time, file_id, disk))
        self.registry.counter("placement.writes").inc()

    # -- export ------------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Serialize to a Chrome trace-event dict (``{"traceEvents": ...}``)."""
        events: List[Dict[str, Any]] = []

        disks = sorted(
            {d for d, _, _, _ in self.state_spans} | {d for _, _, d in self.placements}
        )
        for pid, name in _PROCESS_NAMES.items():
            events.append(_meta(pid, 0, "process_name", {"name": name}))
        for disk in disks:
            events.append(_meta(_PID_DISK, disk, "thread_name", {"name": f"disk {disk}"}))

        spans: List[Dict[str, Any]] = []
        for disk, state, start, end in self.state_spans:
            if end <= start:
                continue
            common = {"pid": _PID_DISK, "tid": disk, "name": state, "cat": "disk-state"}
            spans.append({**common, "ph": "B", "ts": start * 1e6})
            spans.append({**common, "ph": "E", "ts": end * 1e6})

        instants: List[Dict[str, Any]] = []
        for time, kind, file_id in self.cache_events:
            instants.append(
                _instant(_PID_CACHE, 0, f"cache:{kind}", time, {"file_id": int(file_id)})
            )
        for time, thresholds in self.threshold_events:
            instants.append(
                _instant(
                    _PID_CONTROL,
                    0,
                    "thresholds",
                    time,
                    {"thresholds": list(thresholds)},
                )
            )
        for time, file_id, disk in self.placements:
            instants.append(
                _instant(
                    _PID_PLACEMENT,
                    disk,
                    "place",
                    time,
                    {"file_id": int(file_id), "disk": int(disk)},
                )
            )

        # Per-track order: by timestamp, with span-ends ahead of the
        # next span-begin at the same instant so adjacent dwells nest.
        def sort_key(ev: Dict[str, Any]) -> Tuple[int, int, float, int]:
            return (ev["pid"], ev["tid"], ev["ts"], 0 if ev["ph"] == "E" else 1)

        events.extend(sorted(spans + instants, key=sort_key))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "simulated-seconds", "generator": "repro.obs"},
        }

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        return write_trace(self.to_chrome_trace(), path)


def _meta(pid: int, tid: int, name: str, args: Dict[str, Any]) -> Dict[str, Any]:
    return {"ph": "M", "pid": pid, "tid": tid, "ts": 0.0, "name": name, "args": args}


def _instant(
    pid: int, tid: int, name: str, time: float, args: Dict[str, Any]
) -> Dict[str, Any]:
    return {
        "ph": "i",
        "pid": pid,
        "tid": tid,
        "ts": time * 1e6,
        "name": name,
        "s": "t",
        "args": args,
    }


def sweep_chrome_trace(profiles: Iterable[Any]) -> Dict[str, Any]:
    """Chrome trace of sweep-task execution over worker processes.

    ``profiles`` are orchestrator ``TaskProfile``s (wall-clock seconds
    relative to the start of their sweep, one ``tid`` per worker pid).
    Complete (``ph: "X"``) events suffice here — every task has both
    endpoints by the time a profile exists.
    """
    profiles = list(profiles)
    events: List[Dict[str, Any]] = [
        _meta(0, 0, "process_name", {"name": "sweep-workers"})
    ]
    pids = sorted({int(p.pid) for p in profiles})
    for pid in pids:
        events.append(_meta(0, pid, "thread_name", {"name": f"worker {pid}"}))
    for profile in sorted(profiles, key=lambda p: (int(p.pid), p.started)):
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": int(profile.pid),
                "ts": profile.started * 1e6,
                "dur": profile.wall * 1e6,
                "name": profile.label,
                "cat": "sweep-task",
                "args": {"fingerprint": profile.fingerprint},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "wall-seconds", "generator": "repro.obs"},
    }


def write_trace(trace: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a trace dict as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace), encoding="utf-8")
    return path
