"""Unified run observability: hooks, traces, metrics.

- :mod:`repro.obs.hooks` — the ``RunObserver`` protocol both engines
  honor, plus the allocation-free ``NullObserver`` default.
- :mod:`repro.obs.trace` — ``TraceRecorder`` and the Chrome-trace-event
  (Perfetto-loadable) JSON exporter.
- :mod:`repro.obs.metrics` — counters/gauges/histograms and the
  structured ``SimulationResult.extra["obs"]`` snapshot.
"""

from repro.obs.hooks import NULL_OBSERVER, NullObserver, RunObserver, active_observer
from repro.obs.metrics import MetricsRegistry, observability_snapshot
from repro.obs.trace import TraceRecorder

__all__ = [
    "RunObserver",
    "NullObserver",
    "NULL_OBSERVER",
    "active_observer",
    "MetricsRegistry",
    "observability_snapshot",
    "TraceRecorder",
]
