"""Expected power of the threshold spin-down policy under Poisson arrivals.

For an M/G/1 disk, idle periods (from the moment the queue drains until the
next arrival) are exactly ``Exp(lambda)`` by memorylessness.  Let ``tau`` be
the idleness threshold, ``d``/``u`` the spin-down/up times, ``P_*`` the state
powers and ``X ~ Exp(lambda)`` one idle period.  Then per idle period:

* time billed idle: ``E[min(X, tau)] = (1 - e^{-lambda tau}) / lambda``;
* a spin-down happens iff ``X > tau`` (probability ``e^{-lambda tau}``),
  costing the transition energies plus standby for
  ``E[(X - tau - d)^+] = e^{-lambda (tau + d)} / lambda``;
* the arrival ending the period waits for the remaining spin-down plus the
  full spin-up:
  ``E[wait] = e^{-lambda tau} u + e^{-lambda tau} (d - (1 - e^{-lambda d})/lambda)``.

Busy time has utilization ``rho = lambda E[S]`` and busy cycles start at rate
``lambda (1 - rho)`` (standard M/G/1 renewal facts), giving the expected
power via renewal-reward.  The model neglects queue build-up behind spin-ups
(second-order at the low per-disk rates where spin-downs matter), which the
cross-validation tests bound empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.allocation import Allocation
from repro.disk.service import ServiceModel
from repro.disk.specs import DiskSpec
from repro.errors import ConfigError
from repro.workload.catalog import FileCatalog

__all__ = ["IdlePowerAnalysis", "allocation_power_estimate", "disk_power_estimate"]


@dataclass(frozen=True)
class IdlePowerAnalysis:
    """Closed-form per-idle-period quantities for one disk."""

    arrival_rate: float
    threshold: float
    #: Probability an idle period triggers a spin-down.
    spin_down_probability: float
    #: Expected energy per idle period (J), all states included.
    idle_period_energy: float
    #: Expected extra wait imposed on the arrival ending the period (s).
    spin_penalty_wait: float
    #: Expected wall-clock length of the idle phase incl. transitions that
    #: extend past the arrival (s).
    idle_period_length: float


def analyze_idle_period(
    arrival_rate: float, threshold: float, spec: DiskSpec
) -> IdlePowerAnalysis:
    """Evaluate the closed forms above for one disk."""
    if arrival_rate <= 0:
        raise ConfigError("arrival rate must be positive")
    if threshold < 0:
        raise ConfigError("threshold must be >= 0")
    lam = arrival_rate
    tau = threshold
    d = spec.spindown_time
    u = spec.spinup_time

    if math.isinf(tau):
        p_down = 0.0
        e_idle = spec.idle_power / lam
        penalty = 0.0
        length = 1.0 / lam
        return IdlePowerAnalysis(lam, tau, p_down, e_idle, penalty, length)

    p_down = math.exp(-lam * tau)
    e_min = (1.0 - p_down) / lam  # E[min(X, tau)]
    e_standby = math.exp(-lam * (tau + d)) / lam  # E[(X - tau - d)^+]
    energy = (
        spec.idle_power * e_min
        + p_down * (spec.spindown_energy + spec.spinup_energy)
        + spec.standby_power * e_standby
    )
    # Remaining spin-down seen by an arrival landing inside (tau, tau+d]:
    # E[(tau + d - X)^+ ; X > tau] = e^{-lam tau} (d - (1 - e^{-lam d})/lam).
    remaining_down = p_down * (d - (1.0 - math.exp(-lam * d)) / lam)
    penalty = p_down * u + remaining_down
    # Idle phase wall clock: X, extended to tau + d + u when it spun down and
    # the arrival interrupts; expected extension equals the penalty.
    length = 1.0 / lam + penalty
    return IdlePowerAnalysis(lam, tau, p_down, energy, penalty, length)


def disk_power_estimate(
    arrival_rate: float,
    es: float,
    threshold: float,
    spec: DiskSpec,
    serve_power: Optional[float] = None,
) -> float:
    """Expected long-run power (W) of one disk.

    Parameters
    ----------
    arrival_rate:
        Poisson rate of requests hitting this disk (per second).
    es:
        Mean service time of its file mix (s).
    threshold:
        Idleness threshold (s); ``inf`` = never spin down.
    spec:
        Drive model.
    serve_power:
        Power while serving; defaults to the transfer-weighted mix of seek
        and active power.

    Notes
    -----
    A disk with ``arrival_rate == 0`` spins down once and stays in standby:
    the long-run power is the standby power.
    """
    if arrival_rate < 0 or es < 0:
        raise ConfigError("arrival rate and mean service must be >= 0")
    if arrival_rate == 0.0:
        return (
            spec.standby_power
            if not math.isinf(threshold)
            else spec.idle_power
        )
    rho = arrival_rate * es
    if rho >= 1.0:
        # Saturated: always serving.
        return serve_power if serve_power is not None else spec.active_power
    if serve_power is None:
        overhead = spec.access_overhead
        transfer = max(es - overhead, 0.0)
        serve_power = (
            (spec.seek_power * overhead + spec.active_power * transfer) / es
            if es > 0
            else spec.active_power
        )
    idle = analyze_idle_period(arrival_rate, threshold, spec)
    # Renewal-reward over busy cycles: cycles start at rate lam (1 - rho);
    # each cycle = one busy period (mean es/(1-rho), at serve power) + one
    # idle phase (energy and length from the closed forms).
    busy_len = es / (1.0 - rho)
    cycle_len = busy_len + idle.idle_period_length
    cycle_energy = serve_power * busy_len + idle.idle_period_energy
    # Transitions that extend past the arrival delay service, not captured
    # in busy_len; the error is second-order (validated in tests).
    return cycle_energy / cycle_len


def allocation_power_estimate(
    catalog: FileCatalog,
    allocation: Allocation,
    arrival_rate: float,
    service: ServiceModel,
    threshold: float,
    spec: DiskSpec,
    num_disks: Optional[int] = None,
    popularities: Optional[Sequence[float]] = None,
) -> float:
    """Expected total power (W) of an allocated array.

    Disks beyond the allocation (up to ``num_disks``) receive no requests
    and settle at standby power (idle power if spin-down is disabled).
    """
    pops = (
        catalog.popularities
        if popularities is None
        else np.asarray(popularities, dtype=float)
    )
    service_times = service.service_time(catalog.sizes)
    total = 0.0
    for disk in allocation.disks:
        idx = np.fromiter(
            (item.index for item in disk.items), dtype=np.int64, count=len(disk)
        )
        p_disk = float(pops[idx].sum()) if idx.size else 0.0
        lam = arrival_rate * p_disk
        if lam <= 0:
            total += disk_power_estimate(0.0, 0.0, threshold, spec)
            continue
        w = pops[idx] / p_disk
        es = float(np.dot(w, service_times[idx]))
        total += disk_power_estimate(lam, es, threshold, spec)
    if num_disks is not None:
        if num_disks < allocation.num_disks:
            raise ConfigError(
                f"num_disks={num_disks} below allocation's "
                f"{allocation.num_disks}"
            )
        total += (num_disks - allocation.num_disks) * disk_power_estimate(
            0.0, 0.0, threshold, spec
        )
    return total
