"""The analytic power/response trade-off curve (Figure 4's closed form).

For each load constraint ``L``, pack the catalog, then estimate total power
(threshold policy, Poisson idle analysis) and mean response (M/G/1 mix).
Increasing ``L`` packs the same files onto fewer disks: power falls, queues
grow — the trade-off the paper's title names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.mg1 import allocation_response_estimate
from repro.analysis.powermodel import allocation_power_estimate
from repro.core.packing import pack_disks
from repro.system.config import StorageConfig
from repro.system.runner import build_items
from repro.workload.catalog import FileCatalog

__all__ = ["TradeoffPoint", "tradeoff_curve"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the analytic trade-off curve."""

    load_constraint: float
    num_disks: int
    power_watts: float
    response_seconds: float


def tradeoff_curve(
    catalog: FileCatalog,
    arrival_rate: float,
    config: Optional[StorageConfig] = None,
    load_grid: Optional[Sequence[float]] = None,
) -> List[TradeoffPoint]:
    """Evaluate the analytic curve over a grid of load constraints."""
    if config is None:
        config = StorageConfig()
    if load_grid is None:
        load_grid = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    service = config.service_model()
    points: List[TradeoffPoint] = []
    for L in load_grid:
        cfg = config.with_overrides(load_constraint=L)
        items = build_items(catalog, cfg, arrival_rate)
        allocation = pack_disks(items)
        num_disks = max(cfg.num_disks, allocation.num_disks)
        power = allocation_power_estimate(
            catalog, allocation, arrival_rate, service,
            cfg.threshold, cfg.spec, num_disks=num_disks,
        )
        response = allocation_response_estimate(
            catalog, allocation, arrival_rate, service
        )
        points.append(
            TradeoffPoint(
                load_constraint=L,
                num_disks=allocation.num_disks,
                power_watts=power,
                response_seconds=response,
            )
        )
    return points
