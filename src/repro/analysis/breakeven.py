"""Break-even threshold analysis and the 2-competitive guarantee.

The classic dynamic-power-management result (surveyed in the paper's related
work): with two states, the threshold policy that waits exactly the
break-even time before spinning down consumes at most **twice** the energy
of the optimal offline policy that knows every idle-gap length in advance.
This module provides the offline optimum and the online policy's cost on an
arbitrary gap sequence so the guarantee can be property-tested.

Energy accounting per idle gap of length ``g`` (measured idle-to-arrival):

* staying up: ``P_idle * g``;
* spinning down at time ``t <= g``: ``P_idle * t`` + transition energies +
  ``P_standby * max(g - t - d, 0)`` (an arrival during spin-down gets no
  standby time).  The arrival always additionally pays the spin-up time's
  energy; it is charged to the gap that caused it.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.disk.specs import DiskSpec
from repro.errors import ConfigError

__all__ = [
    "breakeven_threshold",
    "offline_optimal_energy",
    "threshold_policy_energy",
]


def breakeven_threshold(spec: DiskSpec) -> float:
    """``(E_down + E_up) / (P_idle - P_standby)`` — Table 2's 53.3 s."""
    return spec.breakeven_threshold()


def _gap_energy_with_spindown_at(g: float, t: float, spec: DiskSpec) -> float:
    """Energy for a gap of length ``g`` when spin-down starts at ``t <= g``."""
    idle = spec.idle_power * t
    down_time = min(spec.spindown_time, max(g - t, 0.0))
    # The spin-down always completes (non-abortable), so its full energy is
    # spent even when the arrival lands mid-transition.
    down = spec.spindown_energy
    standby = spec.standby_power * max(g - t - spec.spindown_time, 0.0)
    up = spec.spinup_energy
    _ = down_time  # wall-clock bookkeeping is the simulator's job
    return idle + down + standby + up


def threshold_policy_energy(
    gaps: Iterable[float], spec: DiskSpec, threshold: float
) -> float:
    """Online threshold policy's energy over a recorded gap sequence."""
    if threshold < 0:
        raise ConfigError("threshold must be >= 0")
    total = 0.0
    for g in gaps:
        if g < 0:
            raise ConfigError("gaps must be >= 0")
        if math.isinf(threshold) or g <= threshold:
            total += spec.idle_power * g
        else:
            total += _gap_energy_with_spindown_at(g, threshold, spec)
    return total


def offline_optimal_energy(gaps: Iterable[float], spec: DiskSpec) -> float:
    """Clairvoyant optimum: per gap, the cheaper of staying up vs spinning
    down immediately (any later spin-down is dominated by one of these)."""
    total = 0.0
    for g in gaps:
        if g < 0:
            raise ConfigError("gaps must be >= 0")
        stay = spec.idle_power * g
        sleep = _gap_energy_with_spindown_at(g, 0.0, spec)
        total += min(stay, sleep)
    return total
