"""Spin-cycle reliability analysis.

The paper flags this in §5.1: "saving power even when a long idleness
threshold ... is given would be an important feature, because it implies
the low frequently spinning down and up, which can prevent the
mean-time-to-failure of disks from dramatically decreasing".  Drive
datasheets rate a contact start/stop or load/unload cycle budget (order
50,000 cycles for desktop drives); this module turns a simulation's
spin-up counts into projected wear.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.system.metrics import SimulationResult
from repro.units import DAY

__all__ = ["SpinCycleStress", "spin_cycle_stress"]

#: Typical rated start/stop cycles for a desktop-class drive.
DEFAULT_RATED_CYCLES = 50_000


@dataclass(frozen=True)
class SpinCycleStress:
    """Projected spin-cycle wear for one simulated configuration."""

    #: Spin-ups per disk per day, averaged over the array.
    cycles_per_disk_day: float
    #: Worst single disk's cycles per day.
    worst_disk_cycles_per_day: float
    #: Years until the rated cycle budget is exhausted at the mean rate
    #: (``inf`` when no disk ever spins).
    years_to_rated_mean: float
    #: Years until the rated budget at the worst disk's rate.
    years_to_rated_worst: float

    def acceptable(self, min_years: float = 5.0) -> bool:
        """Whether even the worst disk outlives ``min_years``."""
        return self.years_to_rated_worst >= min_years


def spin_cycle_stress(
    result: SimulationResult,
    rated_cycles: int = DEFAULT_RATED_CYCLES,
    spinups_per_disk: np.ndarray = None,
) -> SpinCycleStress:
    """Project spin-cycle wear from a simulation result.

    Parameters
    ----------
    result:
        A finished simulation (its ``spinups`` and ``duration`` are used).
    rated_cycles:
        Datasheet start/stop cycle budget.
    spinups_per_disk:
        Optional per-disk spin-up counts for a worst-disk estimate; when
        omitted the mean is used for both figures.
    """
    if rated_cycles <= 0:
        raise ConfigError("rated_cycles must be positive")
    if result.duration <= 0 or result.num_disks <= 0:
        raise ConfigError("result must cover positive time and disks")
    days = result.duration / DAY
    mean_rate = result.spinups / result.num_disks / days
    if spinups_per_disk is not None:
        per_disk = np.asarray(spinups_per_disk, dtype=float)
        worst_rate = float(per_disk.max()) / days
    else:
        worst_rate = mean_rate

    def years(rate: float) -> float:
        if rate <= 0:
            return float("inf")
        return rated_cycles / rate / 365.25

    return SpinCycleStress(
        cycles_per_disk_day=mean_rate,
        worst_disk_cycles_per_day=worst_rate,
        years_to_rated_mean=years(mean_rate),
        years_to_rated_worst=years(worst_rate),
    )
