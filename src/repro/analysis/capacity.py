"""Disk-farm sizing under response-time constraints.

The paper (§1, §6) highlights this planning use: "computing the percentage
of disks that must be maintained on-line to meet file access response time
under budget constraints" and "obtaining reliable estimates on the size of a
disk farm needed to support a given workload".  :func:`plan_disk_farm`
sweeps the load constraint ``L``, packs the catalog for each value, checks
the analytic M/G/1 response time, and returns the cheapest feasible plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.mg1 import allocation_response_estimate
from repro.analysis.powermodel import allocation_power_estimate
from repro.core.packing import pack_disks
from repro.errors import CapacityError, ConfigError, PackingError
from repro.system.config import StorageConfig
from repro.system.runner import build_items
from repro.workload.catalog import FileCatalog

__all__ = ["FarmPlan", "minimum_disks", "plan_disk_farm"]


def minimum_disks(
    catalog: FileCatalog,
    config: StorageConfig,
    arrival_rate: float,
) -> int:
    """Continuous lower bound on the farm size: storage and load volumes."""
    service = config.service_model()
    by_space = catalog.total_bytes / config.usable_capacity
    by_load = catalog.total_load(arrival_rate, service) / config.load_constraint
    return int(math.ceil(max(by_space, by_load)))


@dataclass
class FarmPlan:
    """One feasible (or infeasible) operating point of the farm."""

    load_constraint: float
    num_disks: int
    expected_response: float
    expected_power: float
    feasible: bool

    def __str__(self) -> str:
        flag = "ok " if self.feasible else "INFEASIBLE"
        return (
            f"L={self.load_constraint:.2f}: {self.num_disks:4d} disks, "
            f"T~{self.expected_response:8.2f} s, P~{self.expected_power:8.1f} W "
            f"[{flag}]"
        )


def plan_disk_farm(
    catalog: FileCatalog,
    arrival_rate: float,
    response_target: float,
    config: Optional[StorageConfig] = None,
    load_grid: Optional[Sequence[float]] = None,
) -> List[FarmPlan]:
    """Evaluate candidate load constraints and mark which meet the target.

    Returns all evaluated plans sorted by increasing disk count; the first
    feasible one is the recommended (cheapest) configuration.

    Raises
    ------
    CapacityError
        If no candidate meets the response target.
    """
    if response_target <= 0:
        raise ConfigError("response_target must be positive")
    if config is None:
        config = StorageConfig()
    if load_grid is None:
        load_grid = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2]
    service = config.service_model()
    plans: List[FarmPlan] = []
    for L in load_grid:
        cfg = config.with_overrides(load_constraint=L)
        try:
            items = build_items(catalog, cfg, arrival_rate)
        except PackingError:
            # Below some L the hottest file alone exceeds the per-disk
            # load budget; that operating point simply does not exist.
            continue
        allocation = pack_disks(items)
        response = allocation_response_estimate(
            catalog, allocation, arrival_rate, service
        )
        power = allocation_power_estimate(
            catalog,
            allocation,
            arrival_rate,
            service,
            cfg.threshold,
            cfg.spec,
            num_disks=max(cfg.num_disks, allocation.num_disks),
        )
        plans.append(
            FarmPlan(
                load_constraint=L,
                num_disks=allocation.num_disks,
                expected_response=response,
                expected_power=power,
                feasible=response <= response_target,
            )
        )
    plans.sort(key=lambda p: (p.num_disks, p.load_constraint))
    if not any(p.feasible for p in plans):
        raise CapacityError(
            f"no evaluated configuration meets the {response_target:.1f} s "
            "response target; relax the target or extend load_grid"
        )
    return plans
