"""Analytical models of the power/response-time trade-off.

The paper's title promises *analysis*; this package provides the closed-form
counterparts of the simulator, used both as a fast planning tool and as an
independent cross-check of the simulation (the test suite validates one
against the other):

* :mod:`~repro.analysis.mg1` — M/G/1 response times per disk
  (Pollaczek-Khinchine),
* :mod:`~repro.analysis.powermodel` — expected power and spin-up penalty of
  the threshold policy under Poisson arrivals (idle periods are exactly
  exponential in an M/G/1 disk),
* :mod:`~repro.analysis.breakeven` — the break-even threshold and the
  classic 2-competitive guarantee, with offline-optimal energy on recorded
  gap sequences,
* :mod:`~repro.analysis.capacity` — disk-farm sizing under response-time
  constraints (the paper's stated planning use-case),
* :mod:`~repro.analysis.tradeoff` — the analytic Figure 4 curve.
"""

from repro.analysis.breakeven import (
    breakeven_threshold,
    offline_optimal_energy,
    threshold_policy_energy,
)
from repro.analysis.capacity import FarmPlan, minimum_disks, plan_disk_farm
from repro.disk.dpm import (
    DpmState,
    MultiStateDpmPolicy,
    offline_optimal_gap_energy,
    states_from_spec,
)
from repro.analysis.mg1 import (
    allocation_response_estimate,
    mg1_response_time,
    mg1_waiting_time,
)
from repro.analysis.powermodel import (
    IdlePowerAnalysis,
    allocation_power_estimate,
    disk_power_estimate,
)
from repro.analysis.reliability import SpinCycleStress, spin_cycle_stress
from repro.analysis.tradeoff import TradeoffPoint, tradeoff_curve

__all__ = [
    "DpmState",
    "FarmPlan",
    "IdlePowerAnalysis",
    "MultiStateDpmPolicy",
    "offline_optimal_gap_energy",
    "states_from_spec",
    "SpinCycleStress",
    "TradeoffPoint",
    "spin_cycle_stress",
    "allocation_power_estimate",
    "allocation_response_estimate",
    "breakeven_threshold",
    "disk_power_estimate",
    "mg1_response_time",
    "mg1_waiting_time",
    "minimum_disks",
    "offline_optimal_energy",
    "plan_disk_farm",
    "threshold_policy_energy",
    "tradeoff_curve",
]
