"""Compatibility alias: the multi-state DPM model lives in
:mod:`repro.disk.dpm` (it is disk-domain machinery); this module re-exports
it so analysis-oriented callers find it next to the other closed forms."""

from repro.disk.dpm import (
    DpmState,
    MultiStateDpmPolicy,
    offline_optimal_gap_energy,
    states_from_spec,
)

__all__ = [
    "DpmState",
    "MultiStateDpmPolicy",
    "offline_optimal_gap_energy",
    "states_from_spec",
]
