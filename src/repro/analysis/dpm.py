"""Compatibility alias: the multi-state DPM model lives in
:mod:`repro.disk.dpm` (it is disk-domain machinery); this module re-exports
it so analysis-oriented callers find it next to the other closed forms."""

from repro.disk.dpm import (
    DPM_LADDERS,
    DpmLadder,
    DpmState,
    LadderRung,
    MultiStateDpmPolicy,
    dpm_ladder_names,
    make_dpm_ladder,
    offline_optimal_gap_energy,
    states_from_spec,
)

__all__ = [
    "DPM_LADDERS",
    "DpmLadder",
    "DpmState",
    "LadderRung",
    "MultiStateDpmPolicy",
    "dpm_ladder_names",
    "make_dpm_ladder",
    "offline_optimal_gap_energy",
    "states_from_spec",
]
