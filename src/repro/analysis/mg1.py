"""M/G/1 queueing estimates for per-disk response times.

Each disk serves its files FIFO with Poisson arrivals (a thinning of the
system's Poisson stream), so the Pollaczek-Khinchine formula gives the mean
waiting time:

.. math:: W_q = \\frac{\\lambda E[S^2]}{2 (1 - \\rho)}, \\qquad \\rho = \\lambda E[S]

and mean response time ``T = W_q + E[S]``.  These estimates ignore the
spin-up penalty (see :mod:`repro.analysis.powermodel` for that term) and are
exact for a disk that never spins down.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.allocation import Allocation
from repro.disk.service import ServiceModel
from repro.errors import ConfigError
from repro.workload.catalog import FileCatalog

__all__ = [
    "allocation_response_estimate",
    "mg1_response_time",
    "mg1_waiting_time",
]


def mg1_waiting_time(arrival_rate: float, es: float, es2: float) -> float:
    """Pollaczek-Khinchine mean queueing delay.

    Returns ``inf`` for an overloaded queue (``rho >= 1``).
    """
    if arrival_rate < 0 or es < 0 or es2 < 0:
        raise ConfigError("arrival rate and service moments must be >= 0")
    rho = arrival_rate * es
    if rho >= 1.0:
        return math.inf
    return arrival_rate * es2 / (2.0 * (1.0 - rho))


def mg1_response_time(arrival_rate: float, es: float, es2: float) -> float:
    """Mean response time ``W_q + E[S]``."""
    return mg1_waiting_time(arrival_rate, es, es2) + es


def allocation_response_estimate(
    catalog: FileCatalog,
    allocation: Allocation,
    arrival_rate: float,
    service: ServiceModel,
    popularities: Optional[Sequence[float]] = None,
) -> float:
    """System-wide mean response time under an allocation (no spin-downs).

    Computes per-disk M/G/1 response times from each disk's file mix and
    averages them weighted by the probability a request targets that disk.
    ``inf`` if any disk is overloaded.
    """
    pops = (
        catalog.popularities
        if popularities is None
        else np.asarray(popularities, dtype=float)
    )
    total = 0.0
    service_times = service.service_time(catalog.sizes)
    for disk in allocation.disks:
        idx = np.fromiter(
            (item.index for item in disk.items), dtype=np.int64, count=len(disk)
        )
        if idx.size == 0:
            continue
        p_disk = float(pops[idx].sum())
        if p_disk <= 0:
            continue
        lam = arrival_rate * p_disk
        w = pops[idx] / p_disk
        s = service_times[idx]
        es = float(np.dot(w, s))
        es2 = float(np.dot(w, s * s))
        t = mg1_response_time(lam, es, es2)
        if math.isinf(t):
            return math.inf
        total += p_disk * t
    return total
