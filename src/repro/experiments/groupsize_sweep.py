"""§5.1's group-size study: Pack_Disk_v for v = 1..8 at a 0.5 h threshold.

Paper's claims: v = 4 is the sweet spot — grouping beyond 4 disks no longer
improves response time but dilutes the load concentration and so degrades
power saving.  (Pack_Disk_1 is plain Pack_Disks.)

Allocations are computed up front (each v resizes the pool, so the harness
needs the disk counts anyway) and the per-v simulations dispatch through
the shared :class:`~repro.experiments.orchestrator.SweepRunner`: points are
cached per fingerprint (in memory and on the disk-backed default cache) and
fan out across worker processes under ``--workers N``.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.orchestrator import (
    SimTask,
    default_runner,
    materialize_workload,
)
from repro.reporting.series import SeriesBundle
from repro.system.config import StorageConfig
from repro.system.runner import allocate
from repro.units import HOUR
from repro.workload.nersc import NerscTraceParams

__all__ = ["run"]

PAPER_NOTE = (
    "paper: v=4 ideal — response stops improving past v=4 while power "
    "saving keeps degrading (§5.1)"
)


def run(
    scale: float = 1.0,
    seed: int = 20080531,
    group_sizes: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    threshold_hours: float = 0.5,
) -> ExperimentResult:
    """Sweep the group size v over the NERSC-like trace."""
    with Stopwatch() as timer:
        params = NerscTraceParams(seed=seed)
        if scale < 1.0:
            params = params.scaled(scale)
        catalog, stream = materialize_workload(params)
        rate = stream.mean_rate
        base_cfg = StorageConfig(
            load_constraint=0.8, idleness_threshold=threshold_hours * HOUR
        )

        tasks = []
        disks_used = {}
        for v in group_sizes:
            policy = "pack" if v == 1 else f"pack_v{v}"
            alloc = allocate(catalog, policy, base_cfg, rate)
            disks_used[v] = alloc.num_disks
            tasks.append(
                SimTask(
                    label=f"v={v}",
                    workload=params,
                    config=base_cfg.with_overrides(num_disks=alloc.num_disks),
                    mapping=alloc.mapping(catalog.n),
                    num_disks=alloc.num_disks,
                    key=v,
                )
            )
        by_key = default_runner().run_map(tasks)

        bundle = SeriesBundle(
            title=f"Pack_Disk_v sweep at threshold {threshold_hours:g} h",
            x_label="v (group size)",
            y_label="value",
        )
        for v in group_sizes:
            res = by_key[v]
            bundle.add("power saving", v, res.power_saving_normalized)
            bundle.add("mean response (s)", v, res.mean_response)
            bundle.add("median response (s)", v, res.median_response)
            bundle.add("disks used", v, disks_used[v])

    result = ExperimentResult(name="groupsize_sweep", wall_seconds=timer.elapsed)
    result.bundles["sweep"] = bundle
    result.notes.append(PAPER_NOTE)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=20080531)
    args = parser.parse_args()
    print(run(scale=args.scale, seed=args.seed).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
