"""The shared R-sweep behind Figures 2 and 3.

For each arrival rate ``R`` (1..12 in the paper) the Table 1 workload is
generated, placed once at random over the 100-disk pool (the baseline is
independent of ``L``), and packed with ``Pack_Disks`` for every load
constraint ``L``; all allocations are simulated over the same request
stream.  Figure 2 plots ``1 - E_pack/E_random`` and Figure 3 plots
``T_pack / T_random``, so one sweep feeds both figures (memoized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.experiments.common import memoize_by_key, scaled_duration
from repro.system.config import StorageConfig
from repro.system.metrics import SimulationResult
from repro.system.runner import allocate, simulate
from repro.workload.generator import SyntheticWorkloadParams, generate_workload

__all__ = ["RateSweep", "sweep_rates"]

DEFAULT_RATES: Tuple[float, ...] = tuple(range(1, 13))
DEFAULT_LOADS: Tuple[float, ...] = (0.5, 0.6, 0.7, 0.8)


@dataclass
class RateSweep:
    """All simulation results of one (rates x loads) grid."""

    rates: Tuple[float, ...]
    loads: Tuple[float, ...]
    #: ``random[R]`` — the baseline run for each rate.
    random: Dict[float, SimulationResult]
    #: ``packed[(R, L)]`` — the Pack_Disks run for each grid point.
    packed: Dict[Tuple[float, float], SimulationResult]
    #: Disks used by Pack_Disks at each grid point.
    pack_disks_used: Dict[Tuple[float, float], int]


@memoize_by_key
def _sweep(memo_key, rates, loads, scale, seed, num_disks, n_files) -> RateSweep:
    random_results: Dict[float, SimulationResult] = {}
    packed_results: Dict[Tuple[float, float], SimulationResult] = {}
    disks_used: Dict[Tuple[float, float], int] = {}

    for rate in rates:
        params = SyntheticWorkloadParams(
            n_files=n_files,
            arrival_rate=rate,
            duration=scaled_duration(4_000.0, scale),
            seed=seed,
        )
        workload = generate_workload(params)
        base_cfg = StorageConfig(num_disks=num_disks)
        rnd_alloc = allocate(
            workload.catalog, "random", base_cfg, rate, rng=seed,
            num_disks=num_disks,
        )
        random_results[rate] = simulate(
            workload.catalog, workload.stream, rnd_alloc, base_cfg,
            num_disks=num_disks, label=f"random R={rate:g}",
        )
        for load in loads:
            cfg = base_cfg.with_overrides(load_constraint=load)
            alloc = allocate(workload.catalog, "pack", cfg, rate)
            disks_used[(rate, load)] = alloc.num_disks
            packed_results[(rate, load)] = simulate(
                workload.catalog, workload.stream, alloc, cfg,
                num_disks=num_disks, label=f"pack R={rate:g} L={load:g}",
            )
    return RateSweep(
        rates=tuple(rates),
        loads=tuple(loads),
        random=random_results,
        packed=packed_results,
        pack_disks_used=disks_used,
    )


def sweep_rates(
    rates: Sequence[float] = DEFAULT_RATES,
    loads: Sequence[float] = DEFAULT_LOADS,
    scale: float = 1.0,
    seed: int = 20090525,
    num_disks: int = 100,
    n_files: int = 40_000,
) -> RateSweep:
    """Run (or fetch the memoized) grid sweep."""
    rates = tuple(float(r) for r in rates)
    loads = tuple(float(l) for l in loads)
    key = (rates, loads, float(scale), int(seed), int(num_disks), int(n_files))
    return _sweep(key, rates, loads, scale, seed, num_disks, n_files)
