"""The shared R-sweep behind Figures 2 and 3.

For each arrival rate ``R`` (1..12 in the paper) the Table 1 workload is
generated, placed once at random over the 100-disk pool (the baseline is
independent of ``L``), and packed with ``Pack_Disks`` for every load
constraint ``L``; all allocations are simulated over the same request
stream.  Figure 2 plots ``1 - E_pack/E_random`` and Figure 3 plots
``T_pack / T_random``, so one sweep feeds both figures (memoized).

The grid is executed through the shared
:class:`~repro.experiments.orchestrator.SweepRunner`, so points are cached
per (config, seed) fingerprint and fan out across worker processes when
``python -m repro run ... --workers N`` (or ``REPRO_SWEEP_WORKERS``) asks
for parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.experiments.common import memoize_by_key, scaled_duration
from repro.experiments.orchestrator import SimTask, default_runner
from repro.system.config import StorageConfig
from repro.system.metrics import SimulationResult
from repro.workload.generator import SyntheticWorkloadParams

__all__ = ["RateSweep", "sweep_rates"]

DEFAULT_RATES: Tuple[float, ...] = tuple(range(1, 13))
DEFAULT_LOADS: Tuple[float, ...] = (0.5, 0.6, 0.7, 0.8)


@dataclass
class RateSweep:
    """All simulation results of one (rates x loads) grid."""

    rates: Tuple[float, ...]
    loads: Tuple[float, ...]
    #: ``random[R]`` — the baseline run for each rate.
    random: Dict[float, SimulationResult]
    #: ``packed[(R, L)]`` — the Pack_Disks run for each grid point.
    packed: Dict[Tuple[float, float], SimulationResult]
    #: Disks used by Pack_Disks at each grid point.
    pack_disks_used: Dict[Tuple[float, float], int]


@memoize_by_key
def _sweep(memo_key, rates, loads, scale, seed, num_disks, n_files) -> RateSweep:
    tasks = []
    for rate in rates:
        params = SyntheticWorkloadParams(
            n_files=n_files,
            arrival_rate=rate,
            duration=scaled_duration(4_000.0, scale),
            seed=seed,
        )
        base_cfg = StorageConfig(num_disks=num_disks)
        tasks.append(
            SimTask(
                label=f"random R={rate:g}",
                workload=params,
                config=base_cfg,
                policy="random",
                arrival_rate=rate,
                num_disks=num_disks,
                alloc_rng=seed,
                key=("random", rate),
            )
        )
        for load in loads:
            tasks.append(
                SimTask(
                    label=f"pack R={rate:g} L={load:g}",
                    workload=params,
                    config=base_cfg.with_overrides(load_constraint=load),
                    policy="pack",
                    arrival_rate=rate,
                    num_disks=num_disks,
                    key=("pack", rate, load),
                )
            )

    by_key = default_runner().run_map(tasks)
    random_results: Dict[float, SimulationResult] = {
        rate: by_key[("random", rate)] for rate in rates
    }
    packed_results: Dict[Tuple[float, float], SimulationResult] = {}
    disks_used: Dict[Tuple[float, float], int] = {}
    for rate in rates:
        for load in loads:
            result = by_key[("pack", rate, load)]
            packed_results[(rate, load)] = result
            disks_used[(rate, load)] = int(result.extra["alloc_disks"])
    return RateSweep(
        rates=tuple(rates),
        loads=tuple(loads),
        random=random_results,
        packed=packed_results,
        pack_disks_used=disks_used,
    )


def sweep_rates(
    rates: Sequence[float] = DEFAULT_RATES,
    loads: Sequence[float] = DEFAULT_LOADS,
    scale: float = 1.0,
    seed: int = 20090525,
    num_disks: int = 100,
    n_files: int = 40_000,
) -> RateSweep:
    """Run (or fetch the memoized) grid sweep."""
    rates = tuple(float(r) for r in rates)
    loads = tuple(float(l) for l in loads)
    key = (rates, loads, float(scale), int(seed), int(num_disks), int(n_files))
    return _sweep(key, rates, loads, scale, seed, num_disks, n_files)
