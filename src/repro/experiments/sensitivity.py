"""Sensitivity studies around the paper's fixed modelling choices.

Two knobs the paper holds constant:

* the **idleness threshold** on the *synthetic* workload (Figures 2-4 use
  the 53.3 s break-even; only the trace experiments sweep it) — this
  experiment sweeps it for both allocators at a fixed rate, showing the
  saving is threshold-robust for Pack_Disks but not for random placement
  even on Poisson (non-bursty) traffic;
* the **service-time model**: the paper's simulation uses
  ``l_i = r_i * s_i`` (pure transfer); our default adds the 12.66 ms
  seek + rotation overhead.  For multi-hundred-MB files the choice must
  not matter — this experiment quantifies the gap.

Allocations are computed once per study (they are shared across the grid)
and the simulations dispatch as mapping-based tasks through the shared
:class:`~repro.experiments.orchestrator.SweepRunner` — fingerprint-cached,
process-parallel under ``--workers N``.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, Stopwatch, scaled_duration
from repro.experiments.orchestrator import (
    SimTask,
    default_runner,
    materialize_workload,
)
from repro.reporting.series import SeriesBundle
from repro.reporting.table import format_table
from repro.system.config import StorageConfig
from repro.system.runner import allocate
from repro.workload.generator import SyntheticWorkloadParams

__all__ = ["run_service_mode", "run_threshold"]


def run_threshold(
    scale: float = 1.0,
    seed: int = 20090525,
    rate: float = 4.0,
    thresholds: Sequence[float] = (10.0, 30.0, 53.3, 120.0, 300.0, 900.0),
    num_disks: int = 100,
    n_files: int = 40_000,
) -> ExperimentResult:
    """Power saving vs idleness threshold on the Table 1 workload."""
    with Stopwatch() as timer:
        params = SyntheticWorkloadParams(
            n_files=n_files, arrival_rate=rate,
            duration=scaled_duration(4_000.0, scale), seed=seed,
        )
        catalog, _ = materialize_workload(params)
        base = StorageConfig(num_disks=num_disks, load_constraint=0.7)
        pack_map = allocate(catalog, "pack", base, rate).mapping(catalog.n)
        rnd_map = allocate(
            catalog, "random", base, rate, rng=seed, num_disks=num_disks
        ).mapping(catalog.n)
        tasks = []
        for thr in thresholds:
            cfg = base.with_overrides(idleness_threshold=thr)
            for name, mapping in (("pack", pack_map), ("rnd", rnd_map)):
                tasks.append(
                    SimTask(
                        label=f"{name} thr={thr:g}",
                        workload=params,
                        config=cfg,
                        mapping=mapping,
                        num_disks=num_disks,
                        key=(name, thr),
                    )
                )
        by_key = default_runner().run_map(tasks)

        bundle = SeriesBundle(
            title=f"Saving and spin cycles vs idleness threshold (R={rate:g})",
            x_label="threshold (s)",
            y_label="value",
        )
        for thr in thresholds:
            packed = by_key[("pack", thr)]
            rnd = by_key[("rnd", thr)]
            bundle.add("saving pack-vs-rnd", thr, packed.power_saving_vs(rnd))
            bundle.add("pack saving (norm.)", thr, packed.power_saving_normalized)
            bundle.add("rnd saving (norm.)", thr, rnd.power_saving_normalized)
            bundle.add("pack spin-ups", thr, packed.spinups)
            bundle.add("rnd spin-ups", thr, rnd.spinups)

    result = ExperimentResult(name="sensitivity_threshold", wall_seconds=timer.elapsed)
    result.bundles["threshold"] = bundle
    result.notes.append(
        "on this busy Poisson workload random's per-disk gaps sit below "
        "break-even: short thresholds thrash (negative normalized saving) "
        "and its saving rises toward the no-spin-down plateau; Pack_Disks "
        "keeps a large positive margin at every threshold, peaking near "
        "the 53.3 s break-even"
    )
    return result


def run_service_mode(
    scale: float = 1.0,
    seed: int = 20090525,
    rate: float = 6.0,
    num_disks: int = 100,
    n_files: int = 40_000,
) -> ExperimentResult:
    """'full' (seek+rotation+transfer) vs the paper's 'transfer' load model."""
    with Stopwatch() as timer:
        params = SyntheticWorkloadParams(
            n_files=n_files, arrival_rate=rate,
            duration=scaled_duration(4_000.0, scale), seed=seed,
        )
        catalog, _ = materialize_workload(params)
        tasks = []
        alloc_disks = {}
        for mode in ("full", "transfer"):
            cfg = StorageConfig(
                num_disks=num_disks, load_constraint=0.7, service_mode=mode
            )
            alloc = allocate(catalog, "pack", cfg, rate)
            alloc_disks[mode] = alloc.num_disks
            tasks.append(
                SimTask(
                    label=f"pack {mode}",
                    workload=params,
                    config=cfg,
                    mapping=alloc.mapping(catalog.n),
                    num_disks=num_disks,
                    key=mode,
                )
            )
        by_key = default_runner().run_map(tasks)
        rows = []
        for mode in ("full", "transfer"):
            res = by_key[mode]
            rows.append(
                [
                    mode,
                    alloc_disks[mode],
                    f"{res.mean_power:.1f}",
                    f"{res.mean_response:.2f}",
                ]
            )
        table = format_table(
            rows,
            headers=["service model", "pack disks", "power (W)", "mean resp (s)"],
            title=f"Service-model sensitivity (R={rate:g})",
        )

    result = ExperimentResult(
        name="sensitivity_service_mode", wall_seconds=timer.elapsed
    )
    result.tables["service_mode"] = table
    result.notes.append(
        "paper uses l_i = r_i*s_i (transfer only); with 188 MB+ files the "
        "12.66 ms positioning overhead shifts loads <1%, so disk counts "
        "and curves must be nearly identical"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    args = parser.parse_args()
    print(run_threshold(scale=args.scale).to_text())
    print()
    print(run_service_mode(scale=args.scale).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
