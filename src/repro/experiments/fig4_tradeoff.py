"""Figure 4: power cost and response time vs the load constraint L (R = 6).

Paper's claims: raising L packs files onto fewer disks, so power falls
(roughly 900 W down toward 400 W on their axes) while response time rises
(a few seconds up to ~25 s) — the trade-off of the title.  We additionally
overlay the closed-form estimate from :mod:`repro.analysis.tradeoff`.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.tradeoff import tradeoff_curve
from repro.experiments.common import ExperimentResult, Stopwatch, scaled_duration
from repro.experiments.orchestrator import (
    SimTask,
    default_runner,
    materialize_workload,
)
from repro.reporting.series import SeriesBundle
from repro.system.config import StorageConfig
from repro.workload.generator import SyntheticWorkloadParams

__all__ = ["run"]

DEFAULT_LOADS = (0.4, 0.45, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9)

PAPER_NOTE = (
    "paper: at R=6, increasing L monotonically lowers power and raises "
    "response time (Fig. 4)"
)


def run(
    scale: float = 1.0,
    seed: int = 20090525,
    rate: float = 6.0,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_disks: int = 100,
    n_files: int = 40_000,
) -> ExperimentResult:
    """Regenerate Figure 4's two curves (plus analytic overlays)."""
    with Stopwatch() as timer:
        params = SyntheticWorkloadParams(
            n_files=n_files,
            arrival_rate=rate,
            duration=scaled_duration(4_000.0, scale),
            seed=seed,
        )
        # Shares the process-level cache with the serial sweep workers, so
        # the catalog for the analytic overlay is not synthesized twice.
        catalog, _ = materialize_workload(params)

        bundle = SeriesBundle(
            title=f"Fig 4: power and response time vs L (R={rate:g})",
            x_label="L (load constraint)",
            y_label="power (W) / response (s)",
        )
        disks_bundle = SeriesBundle(
            title="Disks used by Pack_Disks vs L",
            x_label="L (load constraint)",
            y_label="disks",
        )
        tasks = [
            SimTask(
                label=f"pack L={load:g}",
                workload=params,
                config=StorageConfig(num_disks=num_disks, load_constraint=load),
                policy="pack",
                arrival_rate=rate,
                num_disks=num_disks,
                key=load,
            )
            for load in loads
        ]
        by_load = default_runner().run_map(tasks)
        for load in loads:
            res = by_load[load]
            bundle.add("Power (W)", load, res.mean_power)
            bundle.add("Response (s)", load, res.mean_response)
            disks_bundle.add("pack_disks", load, int(res.extra["alloc_disks"]))

        # Analytic overlay (no simulation).
        for point in tradeoff_curve(
            catalog, rate,
            StorageConfig(num_disks=num_disks), load_grid=list(loads),
        ):
            bundle.add("Power analytic (W)", point.load_constraint, point.power_watts)
            bundle.add(
                "Response analytic (s)", point.load_constraint, point.response_seconds
            )

    result = ExperimentResult(name="fig4_tradeoff", wall_seconds=timer.elapsed)
    result.bundles["tradeoff"] = bundle
    result.bundles["disks"] = disks_bundle
    result.notes.append(PAPER_NOTE)

    power = bundle.series["Power (W)"].y
    resp = bundle.series["Response (s)"].y
    result.notes.append(
        f"measured: power {power[0]:.0f} W @L={loads[0]:g} -> "
        f"{power[-1]:.0f} W @L={loads[-1]:g}; response {resp[0]:.1f} s -> "
        f"{resp[-1]:.1f} s"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=20090525)
    args = parser.parse_args()
    print(run(scale=args.scale, seed=args.seed).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
