"""Figure 2: ratio of power saving vs the arrival rate of file accesses.

Paper's claims: with R < 4 requests/s, Pack_Disks saves over 60% of the
power of random placement; the saving ratio decreases as R grows (more
disks must spin to carry the load) and increases with the load constraint L.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.rate_sweep import (
    DEFAULT_LOADS,
    DEFAULT_RATES,
    sweep_rates,
)
from repro.reporting.series import SeriesBundle

__all__ = ["run"]

PAPER_NOTE = (
    "paper: >60% saving for R<4 at every L; saving decreases with R and "
    "increases with L (Fig. 2)"
)


def run(
    scale: float = 1.0,
    seed: int = 20090525,
    rates: Sequence[float] = DEFAULT_RATES,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_disks: int = 100,
    n_files: int = 40_000,
) -> ExperimentResult:
    """Regenerate Figure 2's curves."""
    with Stopwatch() as timer:
        sweep = sweep_rates(rates, loads, scale, seed, num_disks, n_files)
        bundle = SeriesBundle(
            title="Fig 2: ratio of power saving vs arrival rate R",
            x_label="R (arrivals/s)",
            y_label="power saving ratio (1 - E_pack/E_random)",
        )
        for load in sweep.loads:
            label = f"L={int(load * 100)}%"
            for rate in sweep.rates:
                saving = sweep.packed[(rate, load)].power_saving_vs(
                    sweep.random[rate]
                )
                bundle.add(label, rate, saving)

    result = ExperimentResult(name="fig2_power_saving", wall_seconds=timer.elapsed)
    result.bundles["power_saving"] = bundle
    result.notes.append(PAPER_NOTE)

    low_rate_ok = all(
        y > 0.6
        for label, series in bundle.series.items()
        for x, y in zip(series.x, series.y)
        if x < 4
    )
    result.notes.append(
        f"measured: saving at R<4 all above 60%: {low_rate_ok}"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=20090525)
    args = parser.parse_args()
    print(run(scale=args.scale, seed=args.seed).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
