"""Shared experiment machinery: results container, scaling, memoization."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Union

from repro.errors import ConfigError
from repro.reporting.series import SeriesBundle
from repro.reporting.table import format_table

__all__ = ["ExperimentResult", "memoize_by_key", "scaled_duration"]


@dataclass
class ExperimentResult:
    """Output of one experiment: curves, tables and paper-comparison notes."""

    name: str
    bundles: Dict[str, SeriesBundle] = field(default_factory=dict)
    tables: Dict[str, str] = field(default_factory=dict)
    #: Free-form remarks, including the paper's expected shape for the
    #: experiment and whether the run matched it.
    notes: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    def bundle_table(self, key: str) -> str:
        """Render one bundle as an aligned ASCII table."""
        bundle = self.bundles[key]
        return format_table(
            bundle.rows(), headers=bundle.headers(), title=bundle.title
        )

    def to_text(self) -> str:
        """Full human-readable report."""
        parts = [f"=== {self.name} (wall {self.wall_seconds:.1f}s) ==="]
        for key in self.bundles:
            parts.append(self.bundle_table(key))
        for title, table in self.tables.items():
            parts.append(table if table.startswith(title) else f"{title}\n{table}")
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {n}" for n in self.notes)
        return "\n\n".join(parts)

    def save_csv(self, directory: Union[str, Path]) -> List[Path]:
        """Write every bundle to ``directory`` as CSV; returns the paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for key, bundle in self.bundles.items():
            path = directory / f"{self.name}_{key}.csv"
            bundle.to_csv(path)
            paths.append(path)
        return paths


def scaled_duration(base: float, scale: float, minimum: float = 200.0) -> float:
    """Scale a simulated duration, keeping a floor for statistical sanity."""
    if not 0 < scale <= 1:
        raise ConfigError(f"scale must be in (0, 1], got {scale}")
    return max(minimum, base * scale)


def memoize_by_key(func: Callable) -> Callable:
    """Memoize an expensive sweep by an explicit hashable key argument.

    The wrapped function must accept ``memo_key`` as its first argument;
    results are cached per key for the process lifetime (used so Figure 3
    reuses Figure 2's sweep instead of re-simulating).
    """
    cache: Dict = {}

    def wrapper(memo_key, *args, **kwargs):
        if memo_key not in cache:
            cache[memo_key] = func(memo_key, *args, **kwargs)
        return cache[memo_key]

    wrapper.cache = cache  # type: ignore[attr-defined]
    return wrapper


class Stopwatch:
    """Tiny context timer for ExperimentResult.wall_seconds."""

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
