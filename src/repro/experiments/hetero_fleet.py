"""Heterogeneous fleets: fleet mix x placement x DPM policy.

The paper's array is homogeneous — every disk is the Table 2 Seagate, so
placement only has load and spin state to reason about, and one
break-even threshold fits all.  Real installations are mixed-generation:
drives bought years apart share a pool, and the newer ones hold more,
idle cheaper and recover from standby faster.  This experiment quantifies
what that asymmetry is worth: it sweeps

* the **fleet axis** — the uniform Table 2 pool vs the
  ``mixed_generation`` preset (:mod:`repro.disk.fleet`), which alternates
  the Seagate with a newer green drive (double capacity, ~1/3 the idle
  draw, lower break-even);
* the **placement axis** — spec-blind policies (``round_robin``,
  ``spinning_best_fit``) against the spec-aware ``cheapest_spinning``,
  which ranks spinning candidates by their drive's own active power;
* the **DPM axis** — per-disk static break-evens (``fixed``) against the
  online controllers (``adaptive_timeout``, ``slo_feedback``), which on a
  fleet steer every disk relative to *its own* break-even vector.

The headline check, reported in the notes: on the mixed-generation
fleet, at least one spec-aware cell (``cheapest_spinning`` + per-disk
control) beats every spec-blind placement cell on the energy/p95
frontier — more power saving at equal-or-better tail latency.  On the
uniform fleet ``cheapest_spinning`` degenerates to load-based
tie-breaking, so the same comparison shows *no* such gap: the win is
heterogeneity-specific, not a free lunch the other policies left behind.

Every grid point dispatches through the shared
:class:`~repro.experiments.orchestrator.SweepRunner` (``--workers``,
``--engine fast``, ``--chunk-size`` and the cross-session disk cache all
apply; fingerprints are salted with the fleet preset via
``StorageConfig.fleet``).  Run from the CLI with::

    python -m repro run hetero-fleet --scale 0.25 --workers 4 --engine fast
    python -m repro run hetero-fleet --fleet mixed_generation
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.disk.fleet import fleet_names
from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult, Stopwatch, scaled_duration
from repro.experiments.orchestrator import (
    InlineWorkload,
    SimTask,
    default_runner,
)
from repro.reporting.series import SeriesBundle
from repro.reporting.table import format_table
from repro.system.config import StorageConfig
from repro.system.runner import allocate
from repro.units import MB
from repro.workload.generator import SyntheticWorkloadParams, generate_workload
from repro.workload.mixed import MixedWorkloadParams, generate_mixed_workload

__all__ = ["build_tasks", "run"]

#: Fleet axis: ``None`` is the paper's uniform Table 2 pool (bare
#: ``spec=``), strings are presets from :data:`repro.disk.fleet.FLEETS`.
DEFAULT_FLEETS = (None, "mixed_generation")

#: Placement axis: two spec-blind policies vs the spec-aware one.
DEFAULT_BLIND_POLICIES = ("round_robin", "spinning_best_fit")
AWARE_POLICY = "cheapest_spinning"

#: DPM axis: per-disk static break-evens vs the online controllers.
DEFAULT_DPM_POLICIES = ("fixed", "adaptive_timeout", "slo_feedback")

#: p95 target handed to the slo_feedback cells (seconds).
DEFAULT_SLO_TARGET = 18.0


def _fleet_tag(fleet: Optional[str]) -> str:
    return "uniform" if fleet is None else fleet


def build_tasks(
    scale: float,
    seed: int,
    rate: float,
    fleets: Sequence[Optional[str]],
    placements: Sequence[str],
    dpm_policies: Sequence[str],
    slo_target: float,
    num_disks: int,
    load_constraint: float,
    write_fraction: float,
):
    """The grid as :class:`SimTask` descriptions (shared with the bench).

    One mixed read/write workload (new files enter the mapping as ``-1``
    so the swept placement — not the packer — sites them), spread
    round-robin so every disk sees idle gaps worth pricing; grid keys are
    ``(fleet_or_None, placement, dpm_policy)``.
    """
    duration = scaled_duration(4_000.0, scale)
    control_interval = max(50.0, duration / 10.0)
    base_cfg = StorageConfig(
        num_disks=num_disks,
        load_constraint=load_constraint,
        control_interval=control_interval,
    )

    base = generate_workload(
        SyntheticWorkloadParams(
            n_files=max(2_000, int(20_000 * scale)),
            arrival_rate=rate,
            duration=duration,
            seed=seed,
            s_max=500 * MB,
            s_min=20 * MB,
        )
    )
    base_mapping = allocate(
        base.catalog, "round_robin", base_cfg, rate, num_disks=num_disks
    ).mapping(base.catalog.n)
    catalog, stream = generate_mixed_workload(
        base.catalog,
        MixedWorkloadParams(
            write_fraction=write_fraction,
            new_file_fraction=0.6,
            arrival_rate=rate,
            duration=duration,
            seed=seed + 1,
        ),
    )
    mapping = np.concatenate(
        [
            base_mapping,
            np.full(catalog.n - base.catalog.n, -1, dtype=np.int64),
        ]
    )
    workload = InlineWorkload(
        sizes=catalog.sizes,
        popularities=catalog.popularities,
        times=stream.times,
        file_ids=stream.file_ids,
        duration=stream.duration,
        kinds=stream.kinds,
    )

    tasks = []
    for fleet in fleets:
        fleet_cfg = (
            base_cfg if fleet is None
            else base_cfg.with_overrides(fleet=fleet)
        )
        for placement in placements:
            for policy in dpm_policies:
                cfg = fleet_cfg.with_overrides(write_policy=placement)
                if policy == "slo_feedback":
                    cfg = cfg.with_overrides(
                        dpm_policy="slo_feedback",
                        slo_target=slo_target,
                        slo_percentile=95.0,
                    )
                elif policy != "fixed":
                    cfg = cfg.with_overrides(dpm_policy=policy)
                tasks.append(
                    SimTask(
                        label=(
                            f"{_fleet_tag(fleet)} {placement} {policy}"
                        ),
                        workload=workload,
                        config=cfg,
                        mapping=mapping,
                        num_disks=num_disks,
                        key=(fleet, placement, policy),
                    )
                )
    return tasks


def _saving(result) -> float:
    return 1.0 - result.normalized_power_cost


def run(
    scale: float = 1.0,
    seed: int = 20090607,
    rate: float = 0.25,
    fleets: Sequence[Optional[str]] = DEFAULT_FLEETS,
    blind_policies: Sequence[str] = DEFAULT_BLIND_POLICIES,
    dpm_policies: Sequence[str] = DEFAULT_DPM_POLICIES,
    slo_target: float = DEFAULT_SLO_TARGET,
    num_disks: int = 12,
    load_constraint: float = 0.6,
    write_fraction: float = 0.3,
    fleet: Optional[str] = None,
) -> ExperimentResult:
    """Sweep fleet mix x placement x DPM policy; report the frontier.

    ``fleet`` (the CLI's ``--fleet``) restricts the fleet axis to one
    preset name from :func:`repro.disk.fleet.fleet_names` (or
    ``"uniform"`` for the bare-spec pool).
    """
    if fleet is not None:
        if fleet == "uniform":
            fleets = (None,)
        elif fleet in fleet_names():
            fleets = (fleet,)
        else:
            raise ConfigError(
                f"unknown --fleet {fleet!r}; choose from "
                f"{('uniform',) + fleet_names()}"
            )
    for name in fleets:
        if name is not None and name not in fleet_names():
            raise ConfigError(
                f"unknown fleet {name!r}; choose from {fleet_names()}"
            )
    placements = tuple(blind_policies) + (AWARE_POLICY,)

    with Stopwatch() as timer:
        tasks = build_tasks(
            scale=scale,
            seed=seed,
            rate=rate,
            fleets=fleets,
            placements=placements,
            dpm_policies=dpm_policies,
            slo_target=slo_target,
            num_disks=num_disks,
            load_constraint=load_constraint,
            write_fraction=write_fraction,
        )
        by_key = default_runner().run_map(tasks)

        result = ExperimentResult(name="hetero_fleet")
        demonstrations = []
        for flt in fleets:
            tag = _fleet_tag(flt)
            bundle = SeriesBundle(
                title=f"Energy/p95 frontier on the {tag} fleet",
                x_label="p95 response (s)",
                y_label="normalized power saving",
            )
            rows = []
            blind_cells = []
            aware_cells = []
            for placement in placements:
                for policy in dpm_policies:
                    res = by_key[(flt, placement, policy)]
                    saving = _saving(res)
                    p95 = res.p95_response
                    bundle.add(f"{placement} {policy}", p95, saving)
                    rows.append(
                        [
                            placement,
                            policy,
                            f"{saving:.3f}",
                            f"{p95:.2f}",
                            f"{res.mean_response:.2f}",
                            res.spinups,
                        ]
                    )
                    # On a fleet, even "fixed" is per-disk control: the
                    # control layer hands every disk its own break-even
                    # threshold from its own spec's vector.
                    name = (
                        f"{placement}+{policy}" if policy != "fixed"
                        else f"{placement}+per-disk break-evens"
                    )
                    cell = (name, saving, p95)
                    if placement == AWARE_POLICY:
                        aware_cells.append(cell)
                    else:
                        blind_cells.append(cell)
            result.bundles[tag] = bundle
            result.tables[tag] = format_table(
                rows,
                headers=[
                    "placement", "dpm", "saving", "p95", "mean", "spinups",
                ],
                title=f"Fleet {tag}: placement x DPM frontier",
            )

            # The acceptance cell: a spec-aware (placement, control) pair
            # that strictly out-saves every spec-blind cell sitting at
            # equal-or-better p95.
            for label, saving, p95 in sorted(
                aware_cells, key=lambda c: -c[1]
            ):
                rivals = [
                    c for c in blind_cells if c[2] <= p95 * 1.02 + 0.25
                ]
                if not rivals:
                    continue
                best = max(rivals, key=lambda c: c[1])
                if saving > best[1] + 1e-9:
                    demonstrations.append(
                        f"{tag}: {label} saves {saving:.3f} at "
                        f"p95={p95:.2f}s — beating every spec-blind cell "
                        f"at equal-or-better p95 (best: {best[0]}, saving "
                        f"{best[1]:.3f}, p95={best[2]:.2f}s)"
                    )
                    break

        hetero_demos = [
            d for d in demonstrations if not d.startswith("uniform")
        ]
        if hetero_demos:
            result.notes.append(
                "hetero-fleet demonstration: " + "; ".join(hetero_demos)
            )
        elif any(f is not None for f in fleets):
            result.notes.append(
                "no mixed-fleet cell showed spec-aware placement + "
                "per-disk control beating the spec-blind grid at this "
                "scale — try scale>=0.25"
            )
        result.notes.append(
            "cheapest_spinning ranks spinning write targets by their "
            "drive's own active power; on a uniform fleet that rank is "
            "flat and the policy degenerates to load tie-breaking, so "
            "any frontier gap is heterogeneity-specific"
        )
        result.notes.append(
            f"{len(tasks)} grid points dispatched through the shared "
            "SweepRunner (fleet-salted fingerprints, disk-cacheable); "
            "mixed-fleet cells run per-disk capacities, break-evens and "
            "power tables through both engines"
        )
    result.wall_seconds = timer.elapsed
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--fleet", type=str, default=None)
    args = parser.parse_args()
    print(run(scale=args.scale, fleet=args.fleet).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
