"""Table 1: regenerate the synthetic system parameters from the generator.

Verifies the self-consistency the paper relies on: with n=40000 files,
theta = log0.6/log0.4 and a 20 GB maximum, the inverse-Zipf minimum file
size lands at Table 1's 188 MB and the total footprint at ~13 TB (the paper
prints 12.86 TB).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.reporting.table import format_table
from repro.workload.generator import (
    SyntheticWorkloadParams,
    generate_workload,
    table1_summary,
)

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 20090525, rate: float = 6.0) -> ExperimentResult:
    """Regenerate every Table 1 row."""
    with Stopwatch() as timer:
        n_files = max(1, int(40_000 * scale))
        params = SyntheticWorkloadParams(
            n_files=n_files, arrival_rate=rate, seed=seed
        )
        workload = generate_workload(params)
        summary = table1_summary(workload)
        table = format_table(
            [[k, v] for k, v in summary.items()],
            headers=["Parameter", "Value"],
            title="Table 1: System Parameters (regenerated)",
        )

    result = ExperimentResult(name="table1_workload", wall_seconds=timer.elapsed)
    result.tables["table1"] = table
    result.notes.append(
        "paper: n=40000, R Poisson 1..12/s, sizes 188 MB..20 GB inverse "
        "Zipf, 100 disks, 4000 s simulated, 12.86 TB footprint"
    )
    if scale == 1.0:
        result.notes.append(
            f"measured footprint: {workload.catalog.total_bytes / 1e12:.2f} TB "
            "(paper 12.86 TB; the ~2% gap is unit rounding)"
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
