"""Ablations of the design choices DESIGN.md calls out.

* **packing complexity** — the paper's §3 claim: the heap + two-stack data
  structure turns the O(n^2) algorithm of [3] into O(n log n) *without
  changing the output*;
* **packing quality** — disks used by each allocator against the continuous
  lower bound and the Theorem 1 guarantee;
* **size/popularity correlation** — the synthetic workload assumes hot
  files are small; the NERSC logs showed no correlation (§5.1); this
  ablation quantifies how much the saving depends on that assumption;
* **cache policy** — LRU vs LFU/FIFO/CLOCK hit ratios on the trace (§6
  future work);
* **size segregation** — §6 observes large files queued ahead of small hot
  files hurt response; packing size classes onto disjoint disks tests the
  suggested fix.

The simulation-backed ablations (correlation, cache policy, segregation)
dispatch their grid points through the shared
:class:`~repro.experiments.orchestrator.SweepRunner`; the purely
algorithmic ones (complexity, quality) run inline.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.baselines import (
    best_fit,
    first_fit,
    first_fit_decreasing,
    next_fit,
    random_allocation,
)
from repro.core.bounds import continuous_lower_bound, theorem1_guarantee
from repro.core.packing import pack_disks
from repro.core.reference import pack_disks_quadratic
from repro.errors import PackingError
from repro.experiments.common import ExperimentResult, Stopwatch, scaled_duration
from repro.experiments.orchestrator import (
    SimTask,
    default_runner,
    materialize_workload,
)
from repro.reporting.series import SeriesBundle
from repro.reporting.table import format_table
from repro.sim.rng import rng_from_seed
from repro.system.config import StorageConfig
from repro.system.runner import allocate, build_items
from repro.units import GiB, HOUR
from repro.workload.generator import SyntheticWorkloadParams
from repro.workload.nersc import NerscTraceParams

__all__ = [
    "run_cache_policies",
    "run_complexity",
    "run_correlation",
    "run_quality",
    "run_segregation",
]


def _random_items(n: int, rng, max_coord: float = 0.3):
    """Uniform random 2DVPP instances for the algorithmic ablations."""
    from repro.core.item import make_items

    sizes = rng.uniform(0.01, max_coord, size=n)
    loads = rng.uniform(0.01, max_coord, size=n)
    return make_items(sizes, loads)


def run_complexity(
    scale: float = 1.0,
    seed: int = 7,
    sizes: Sequence[int] = (250, 500, 1_000, 2_000, 4_000, 8_000),
) -> ExperimentResult:
    """Time pack_disks vs the O(n^2) reference; verify identical output."""
    with Stopwatch() as timer:
        rng = rng_from_seed(seed)
        bundle = SeriesBundle(
            title="Pack_Disks O(n log n) vs reference O(n^2) runtime",
            x_label="n (items)",
            y_label="seconds",
        )
        identical = True
        for n in sizes:
            n = max(10, int(n * scale))
            items = _random_items(n, rng)
            t0 = time.perf_counter()
            fast = pack_disks(items)
            t_fast = time.perf_counter() - t0
            t0 = time.perf_counter()
            slow = pack_disks_quadratic(items)
            t_slow = time.perf_counter() - t0
            bundle.add("pack_disks (heap)", n, t_fast)
            bundle.add("reference (scan)", n, t_slow)
            bundle.add("speedup", n, t_slow / t_fast if t_fast else float("nan"))
            identical &= [
                [i.index for i in d.items] for d in fast.disks
            ] == [[i.index for i in d.items] for d in slow.disks]

    result = ExperimentResult(name="ablation_complexity", wall_seconds=timer.elapsed)
    result.bundles["runtime"] = bundle
    result.notes.append(
        "paper §3: same packing policy, data structure drops cost from "
        "O(n^2) to O(n log n)"
    )
    result.notes.append(f"measured: outputs bit-identical across sizes: {identical}")
    return result


def run_quality(
    scale: float = 1.0, seed: int = 7, n: int = 5_000
) -> ExperimentResult:
    """Disks used by each allocator vs the continuous lower bound."""
    with Stopwatch() as timer:
        rng = rng_from_seed(seed)
        n = max(50, int(n * scale))
        items = _random_items(n, rng)
        lb = continuous_lower_bound(items)
        guarantee = theorem1_guarantee(items)
        rows = []
        allocations = {
            "pack_disks": pack_disks(items),
            "first_fit_decreasing": first_fit_decreasing(items),
            "best_fit": best_fit(items),
            "first_fit": first_fit(items),
            "next_fit": next_fit(items),
            "random (2x LB pool)": random_allocation(
                items, num_disks=int(2 * np.ceil(lb)) + 1, rng=rng
            ),
        }
        for name, alloc in allocations.items():
            if not name.startswith("random"):
                # Random placement is load-oblivious by design (the paper's
                # baseline); only the fit heuristics promise feasibility.
                alloc.validate(items)
            rows.append(
                [name, alloc.num_disks, f"{alloc.num_disks / lb:.3f}"]
            )
        table = format_table(
            rows,
            headers=["allocator", "disks", "disks / LB"],
            title=(
                f"Packing quality, n={n}: LB={lb:.1f}, "
                f"Theorem-1 cap={guarantee:.1f}"
            ),
        )

    result = ExperimentResult(name="ablation_quality", wall_seconds=timer.elapsed)
    result.tables["quality"] = table
    pack_used = allocations["pack_disks"].num_disks
    result.notes.append(
        f"pack_disks used {pack_used} disks; Theorem 1 cap {guarantee:.1f}: "
        f"{'satisfied' if pack_used <= guarantee else 'VIOLATED'}"
    )
    return result


def run_correlation(
    scale: float = 1.0, seed: int = 20090525, rate: float = 6.0
) -> ExperimentResult:
    """Power saving under inverse / none / direct size-popularity correlation."""
    with Stopwatch() as timer:
        duration = scaled_duration(4_000.0, scale)
        n_files = max(1_000, int(40_000 * scale))
        infeasible = []
        feasible_cases = []
        tasks = []
        cfg = StorageConfig(num_disks=100, load_constraint=0.7)
        for idx, correlation in enumerate(("inverse", "none", "direct")):
            params = SyntheticWorkloadParams(
                n_files=n_files, arrival_rate=rate, duration=duration,
                correlation=correlation, seed=seed,
            )
            catalog, _ = materialize_workload(params)
            try:
                pack_alloc = allocate(catalog, "pack", cfg, rate)
            except PackingError:
                # Direct correlation makes the hottest file also the largest;
                # past a rate threshold a single file outgrows one disk's
                # bandwidth and needs replication (outside the paper's model).
                infeasible.append(correlation)
                continue
            rnd_alloc = allocate(
                catalog, "random", cfg, rate, rng=seed, num_disks=100
            )
            feasible_cases.append((idx, pack_alloc.num_disks))
            for name, alloc in (("pack", pack_alloc), ("rnd", rnd_alloc)):
                tasks.append(
                    SimTask(
                        label=f"{name} {correlation}",
                        workload=params,
                        config=cfg,
                        mapping=alloc.mapping(catalog.n),
                        num_disks=100,
                        key=(name, idx),
                    )
                )
        by_key = default_runner().run_map(tasks)

        bundle = SeriesBundle(
            title=f"Saving vs size-popularity correlation (R={rate:g})",
            x_label="case (0=inverse, 1=none, 2=direct)",
            y_label="power saving vs random",
        )
        feasible_by_idx = dict(feasible_cases)
        for idx in range(3):
            if idx not in feasible_by_idx:
                bundle.add("saving", idx, float("nan"))
                bundle.add("pack disks", idx, float("nan"))
                continue
            packed = by_key[("pack", idx)]
            rnd = by_key[("rnd", idx)]
            bundle.add("saving", idx, packed.power_saving_vs(rnd))
            bundle.add("pack disks", idx, feasible_by_idx[idx])

    result = ExperimentResult(
        name="ablation_correlation", wall_seconds=timer.elapsed
    )
    result.bundles["correlation"] = bundle
    result.notes.append(
        "paper §4 assumes inverse correlation; §5.1 found none in real "
        "logs — saving should persist in all three cases"
    )
    for correlation in infeasible:
        result.notes.append(
            f"case {correlation!r} infeasible at R={rate:g}: the hottest "
            "file saturates a single disk (would require replication)"
        )
    return result


def run_cache_policies(
    scale: float = 0.25,
    seed: int = 20080531,
    policies: Sequence[str] = ("lru", "lfu", "fifo", "clock"),
    cache_bytes: float = 16 * GiB,
) -> ExperimentResult:
    """Hit ratio and saving per cache policy on the NERSC-like trace."""
    with Stopwatch() as timer:
        params = NerscTraceParams(seed=seed)
        if scale < 1.0:
            params = params.scaled(scale)
        catalog, stream = materialize_workload(params)
        rate = stream.mean_rate
        base_cfg = StorageConfig(
            load_constraint=0.8, idleness_threshold=0.5 * HOUR
        )
        alloc = allocate(catalog, "pack_v4", base_cfg, rate)
        mapping = alloc.mapping(catalog.n)
        tasks = [
            SimTask(
                label=f"pack_v4+{policy or 'nocache'}",
                workload=params,
                config=base_cfg.with_overrides(
                    num_disks=alloc.num_disks,
                    cache_policy=policy,
                    cache_capacity=cache_bytes,
                ),
                mapping=mapping,
                num_disks=alloc.num_disks,
                key=policy or "nocache",
            )
            for policy in (None, *policies)
        ]
        by_key = default_runner().run_map(tasks)
        rows = []
        for policy in (None, *policies):
            res = by_key[policy or "nocache"]
            hit = (
                res.cache_stats.hit_ratio
                if res.cache_stats is not None
                else 0.0
            )
            rows.append(
                [
                    policy or "(none)",
                    f"{hit:.3f}",
                    f"{res.power_saving_normalized:.3f}",
                    f"{res.mean_response:.2f}",
                ]
            )
        table = format_table(
            rows,
            headers=["policy", "hit ratio", "power saving", "mean resp (s)"],
            title="Cache policy ablation (paper future work, §6)",
        )

    result = ExperimentResult(
        name="ablation_cache_policies", wall_seconds=timer.elapsed
    )
    result.tables["cache"] = table
    result.notes.append("paper: 16 GB LRU hit ratio 5.6%, little benefit")
    return result


def run_segregation(
    scale: float = 1.0,
    seed: int = 20090525,
    rate: float = 8.0,
    boundary_bytes: float = 2e9,
) -> ExperimentResult:
    """§6's suggestion: keep large files off the small-hot-file disks.

    Packs small and large size classes onto disjoint disk sets and compares
    response against plain Pack_Disks at a high arrival rate.
    """
    with Stopwatch() as timer:
        from repro.core.partitioned import (
            pack_disks_partitioned,
            size_class_classifier,
        )

        params = SyntheticWorkloadParams(
            n_files=max(1_000, int(40_000 * scale)),
            arrival_rate=rate,
            duration=scaled_duration(4_000.0, scale),
            seed=seed,
        )
        catalog, _ = materialize_workload(params)
        cfg = StorageConfig(num_disks=100, load_constraint=0.7)
        items = build_items(catalog, cfg, rate)

        plain = pack_disks(items)
        segregated = pack_disks_partitioned(
            items,
            size_class_classifier(boundary_bytes / cfg.usable_capacity),
        )

        by_key = default_runner().run_map(
            [
                SimTask(
                    label=alloc.algorithm,
                    workload=params,
                    config=cfg,
                    mapping=alloc.mapping(catalog.n),
                    num_disks=100,
                    key=name,
                )
                for name, alloc in (("plain", plain), ("seg", segregated))
            ]
        )
        res_plain = by_key["plain"]
        res_seg = by_key["seg"]
        table = format_table(
            [
                [
                    "pack_disks",
                    plain.num_disks,
                    f"{res_plain.mean_response:.2f}",
                    f"{res_plain.response_percentile(95):.2f}",
                    f"{res_plain.mean_power:.0f}",
                ],
                [
                    "pack_segregated",
                    segregated.num_disks,
                    f"{res_seg.mean_response:.2f}",
                    f"{res_seg.response_percentile(95):.2f}",
                    f"{res_seg.mean_power:.0f}",
                ],
            ],
            headers=["allocator", "disks", "mean resp", "p95 resp", "power W"],
            title=f"Size segregation at {boundary_bytes / 1e9:.0f} GB boundary, R={rate:g}",
        )

    result = ExperimentResult(
        name="ablation_segregation", wall_seconds=timer.elapsed
    )
    result.tables["segregation"] = table
    result.notes.append(
        "paper §6: separating large files from small hot files should cut "
        "queueing delay at some power cost"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    args = parser.parse_args()
    for fn in (
        run_complexity,
        run_quality,
        run_correlation,
        run_cache_policies,
        run_segregation,
    ):
        print(fn(scale=args.scale).to_text())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
