"""Figure 3: response-time ratio of Pack_Disks to random allocation vs R.

Paper's claims: the ratio lies roughly between 0.5x and 2.5x (rising toward
~3.5x for L=80% at high R).  Below 1 means Pack_Disks responds *faster* —
at low rates random placement's disks keep spinning down and requests pay
the 15 s spin-up, while Pack_Disks' hot disks stay busy enough to stay up.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.rate_sweep import (
    DEFAULT_LOADS,
    DEFAULT_RATES,
    sweep_rates,
)
from repro.reporting.series import SeriesBundle

__all__ = ["run"]

PAPER_NOTE = (
    "paper: response ratio ~0.5-2.5 (up to ~3.5 for L=80%), generally "
    "rising with R (Fig. 3)"
)


def run(
    scale: float = 1.0,
    seed: int = 20090525,
    rates: Sequence[float] = DEFAULT_RATES,
    loads: Sequence[float] = DEFAULT_LOADS,
    num_disks: int = 100,
    n_files: int = 40_000,
) -> ExperimentResult:
    """Regenerate Figure 3's curves (reuses Figure 2's memoized sweep)."""
    with Stopwatch() as timer:
        sweep = sweep_rates(rates, loads, scale, seed, num_disks, n_files)
        bundle = SeriesBundle(
            title="Fig 3: response-time ratio Pack_Disks / random vs R",
            x_label="R (arrivals/s)",
            y_label="mean response ratio",
        )
        for load in sweep.loads:
            label = f"L={int(load * 100)}%"
            for rate in sweep.rates:
                ratio = sweep.packed[(rate, load)].response_ratio_vs(
                    sweep.random[rate]
                )
                bundle.add(label, rate, ratio)

    result = ExperimentResult(
        name="fig3_response_ratio", wall_seconds=timer.elapsed
    )
    result.bundles["response_ratio"] = bundle
    result.notes.append(PAPER_NOTE)

    ys = [y for s in bundle.series.values() for y in s.y]
    result.notes.append(
        f"measured: ratio range {min(ys):.2f} .. {max(ys):.2f}"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=20090525)
    args = parser.parse_args()
    print(run(scale=args.scale, seed=args.seed).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
