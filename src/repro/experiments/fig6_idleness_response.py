"""Figure 6: response times vs idleness threshold on the NERSC trace.

Paper's claims: below a ~0.5 h threshold, random placement's mean response
exceeds 10 s (most requests hit spun-down disks and pay the 15 s spin-up);
beyond 0.5 h it stays under 10 s.  Pack_Disk4 achieves response similar to
or better than random despite saving far more power; plain Pack_Disk can be
slower when batched same-size requests pile on one disk (the effect
Pack_Disks_v was designed to fix).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.trace_sweep import (
    CONFIG_NAMES,
    DEFAULT_THRESHOLD_HOURS,
    sweep_trace,
)
from repro.reporting.series import SeriesBundle

__all__ = ["run"]

PAPER_NOTE = (
    "paper: RND needs threshold >= 0.5 h to keep response <= 10 s; "
    "Pack_Disk4 similar or better than RND; Pack_Disk worse under batched "
    "arrivals (Fig. 6)"
)


def run(
    scale: float = 1.0,
    seed: int = 20080531,
    threshold_hours: Sequence[float] = DEFAULT_THRESHOLD_HOURS,
    configs: Sequence[str] = CONFIG_NAMES,
) -> ExperimentResult:
    """Regenerate Figure 6's curves (reuses Figure 5's memoized sweep)."""
    with Stopwatch() as timer:
        sweep = sweep_trace(threshold_hours, configs, scale, seed)
        bundle = SeriesBundle(
            title="Fig 6: response time vs idleness threshold (NERSC trace)",
            x_label="idleness threshold (h)",
            y_label="mean response (s)",
        )
        median_bundle = SeriesBundle(
            title="Fig 6 companion: median response vs idleness threshold",
            x_label="idleness threshold (h)",
            y_label="median response (s)",
        )
        for name in sweep.configs:
            for hours in sweep.threshold_hours:
                res = sweep.results[(name, hours)]
                bundle.add(name, hours, res.mean_response)
                median_bundle.add(name, hours, res.median_response)

    result = ExperimentResult(
        name="fig6_idleness_response", wall_seconds=timer.elapsed
    )
    result.bundles["response"] = bundle
    result.bundles["response_median"] = median_bundle
    result.notes.append(PAPER_NOTE)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=20080531)
    args = parser.parse_args()
    print(run(scale=args.scale, seed=args.seed).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
