"""Experiment harnesses — one module per table/figure of the paper.

Every module exposes ``run(scale=..., seed=...) -> ExperimentResult`` and a
``main()`` CLI.  ``scale`` shrinks simulated time (synthetic workloads) or
trace length (NERSC workload) while preserving rates and distributional
shapes; ``scale=1.0`` is the paper's full configuration.  See DESIGN.md's
per-experiment index for the mapping to the paper.

Grid-shaped experiments route their simulations through
:mod:`repro.experiments.orchestrator` (``SweepRunner``): per-point result
caching keyed on the task fingerprint, in-batch deduplication, and optional
``ProcessPoolExecutor`` fan-out (``python -m repro run ... --workers N``,
or the ``REPRO_SWEEP_WORKERS`` environment variable).
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
