"""Placement ablation: write-placement policy x write fraction x threshold.

The paper fixes one write-allocation rule (§1.1: best-fit among spinning
disks, worst-fit standby fallback) and never quantifies what that rule
buys.  This sweep does: every policy in the write-placement registry
(:mod:`repro.system.placement`) runs over mixed read/write streams at
several write fractions and idleness thresholds, so the energy/response
trade-off induced by placement alone is laid out as a grid.

Expected shape (the effects this experiment reproduces):

* energy-aware placement (``spinning_best_fit``/``fullest_spinning``)
  concentrates writes on already-spinning disks — fewer spin-ups, lower
  energy, but writes pile onto loaded disks and response suffers at high
  write fractions (the skew/latency coupling TimeTrader-style systems
  exploit);
* spreading placement (``round_robin``/``coldest_disk``) evens the load —
  better response under write pressure, paid for with spin-ups and
  standby-time lost (Behzadnia et al.'s energy-aware placement lever).

Every grid point dispatches through the shared
:class:`~repro.experiments.orchestrator.SweepRunner`, so ``--workers``
fan-out, ``--engine fast`` and the cross-session disk cache all apply;
fingerprints are salted with the policy name via
``StorageConfig.write_policy``.  Run from the CLI with::

    python -m repro run placement --scale 0.1 --workers 4 --engine fast
    python -m repro run placement --write-policy round_robin   # one policy
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult, Stopwatch, scaled_duration
from repro.experiments.orchestrator import (
    InlineWorkload,
    SimTask,
    default_runner,
)
from repro.reporting.series import SeriesBundle
from repro.reporting.table import format_table
from repro.system.config import StorageConfig
from repro.system.placement import placement_policy_names
from repro.system.runner import allocate
from repro.workload.generator import SyntheticWorkloadParams, generate_workload
from repro.workload.mixed import MixedWorkloadParams, generate_mixed_workload

__all__ = ["build_tasks", "run"]

#: Idleness thresholds swept (seconds); brackets the spec's ~53 s
#: break-even point from both sides.
DEFAULT_THRESHOLDS = (20.0, 60.0, 180.0)

#: Write fractions swept (the paper's §6 "various mixes").
DEFAULT_WRITE_FRACTIONS = (0.1, 0.3, 0.5)


def build_tasks(
    scale: float,
    seed: int,
    rate: float,
    policies: Sequence[str],
    write_fractions: Sequence[float],
    thresholds: Sequence[float],
    num_disks: int,
    load_constraint: float,
):
    """The grid as :class:`SimTask` descriptions (shared with the bench).

    One mixed workload per write fraction (shipped to pool workers once as
    an :class:`InlineWorkload`); new files enter the mapping as ``-1`` so
    the swept policy — not the packer — places them.
    """
    # Floor of 2000 files: smaller Zipf catalogs concentrate so much load
    # on the head file that no single disk can carry it at the default
    # rate (the packer rightly refuses).
    base = generate_workload(
        SyntheticWorkloadParams(
            n_files=max(2_000, int(20_000 * scale)),
            arrival_rate=rate,
            duration=scaled_duration(4_000.0, scale),
            seed=seed,
        )
    )
    cfg = StorageConfig(
        num_disks=num_disks, load_constraint=load_constraint
    )
    base_alloc = allocate(base.catalog, "pack", cfg, rate)
    base_mapping = base_alloc.mapping(base.catalog.n)

    tasks = []
    for wf in write_fractions:
        catalog, stream = generate_mixed_workload(
            base.catalog,
            MixedWorkloadParams(
                write_fraction=wf,
                new_file_fraction=0.6,
                arrival_rate=rate,
                duration=base.stream.duration,
                seed=seed + 1,
            ),
        )
        mapping = np.concatenate(
            [
                base_mapping,
                np.full(catalog.n - base.catalog.n, -1, dtype=np.int64),
            ]
        )
        workload = InlineWorkload(
            sizes=catalog.sizes,
            popularities=catalog.popularities,
            times=stream.times,
            file_ids=stream.file_ids,
            duration=stream.duration,
            kinds=stream.kinds,
        )
        for policy in policies:
            for threshold in thresholds:
                tasks.append(
                    SimTask(
                        label=f"{policy} wf={wf:g} th={threshold:g}",
                        workload=workload,
                        config=cfg.with_overrides(
                            write_policy=policy,
                            idleness_threshold=threshold,
                        ),
                        mapping=mapping,
                        num_disks=num_disks,
                        key=(policy, wf, threshold),
                    )
                )
    return tasks


def run(
    scale: float = 1.0,
    seed: int = 20090607,
    rate: float = 3.0,
    policies: Optional[Sequence[str]] = None,
    write_fractions: Sequence[float] = DEFAULT_WRITE_FRACTIONS,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    num_disks: int = 100,
    load_constraint: float = 0.7,
    write_policy: Optional[str] = None,
) -> ExperimentResult:
    """Sweep placement policy x write fraction x idleness threshold.

    ``policies`` defaults to the whole registry; ``write_policy`` (the
    CLI's ``--write-policy``) restricts the sweep to one named policy.
    """
    if policies is None:
        policies = placement_policy_names()
    if write_policy is not None:
        if write_policy not in placement_policy_names():
            raise ConfigError(
                f"unknown write placement policy {write_policy!r}; choose "
                f"from {placement_policy_names()}"
            )
        policies = (write_policy,)

    with Stopwatch() as timer:
        tasks = build_tasks(
            scale=scale,
            seed=seed,
            rate=rate,
            policies=policies,
            write_fractions=write_fractions,
            thresholds=thresholds,
            num_disks=num_disks,
            load_constraint=load_constraint,
        )
        by_key = default_runner().run_map(tasks)

        result = ExperimentResult(name="placement_sweep")
        mid_wf = write_fractions[len(write_fractions) // 2]
        for wf in write_fractions:
            bundle = SeriesBundle(
                title=(
                    f"Placement trade-off at write fraction {wf:g} "
                    f"(R={rate:g})"
                ),
                x_label="idleness threshold (s)",
                y_label="normalized power cost / mean response (s)",
            )
            for policy in policies:
                for threshold in thresholds:
                    res = by_key[(policy, wf, threshold)]
                    bundle.add(
                        f"{policy} power", threshold,
                        res.normalized_power_cost,
                    )
                    bundle.add(
                        f"{policy} resp", threshold, res.mean_response
                    )
            result.bundles[f"wf_{wf:g}"] = bundle

        rows = []
        mid_th = thresholds[len(thresholds) // 2]
        for policy in policies:
            res = by_key[(policy, mid_wf, mid_th)]
            rows.append(
                [
                    policy,
                    f"{res.normalized_power_cost:.3f}",
                    f"{res.mean_response:.2f}",
                    f"{res.response_percentile(95):.2f}",
                    res.spinups,
                ]
            )
        result.tables["policies"] = format_table(
            rows,
            headers=[
                "policy", "norm power", "mean resp", "p95 resp", "spinups",
            ],
            title=(
                f"Placement policies at wf={mid_wf:g}, "
                f"threshold={mid_th:g}s"
            ),
        )
        result.notes.append(
            "paper §1.1 fixes spinning_best_fit; the sweep quantifies the "
            "power/response trade-off of that choice against spreading "
            "placements (round_robin/coldest_disk wake standby disks)"
        )
        result.notes.append(
            f"{len(tasks)} grid points dispatched through the shared "
            "SweepRunner (policy-salted fingerprints, disk-cacheable)"
        )
    result.wall_seconds = timer.elapsed
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--write-policy", type=str, default=None)
    args = parser.parse_args()
    print(run(scale=args.scale, write_policy=args.write_policy).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
