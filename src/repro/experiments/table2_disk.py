"""Table 2 / Figure 1: the disk characteristics and power-state machine.

Regenerates every row of Table 2 from :data:`repro.disk.specs.ST3500630AS`,
including the derived idleness threshold — the paper's 53.3 s is the
break-even time ``(E_down + E_up)/(P_idle - P_standby)``.
"""

from __future__ import annotations

from repro.disk.power import DiskState, PowerModel
from repro.disk.specs import ST3500630AS
from repro.experiments.common import ExperimentResult, Stopwatch
from repro.reporting.table import format_table

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Table 2 and the Figure 1 power table."""
    with Stopwatch() as timer:
        spec = ST3500630AS
        table2 = format_table(
            [[k, v] for k, v in spec.table2_rows().items()],
            headers=["Description", "Value"],
            title="Table 2: Hard Disk Characteristics (regenerated)",
        )
        power = PowerModel(spec)
        fig1 = format_table(
            [
                [state.value, f"{power.power(state):.1f} W"]
                for state in DiskState
            ]
            + [
                ["spin-up transition", f"{spec.spinup_time:.0f} s @ {spec.spinup_power:.0f} W"],
                ["spin-down transition", f"{spec.spindown_time:.0f} s @ {spec.spindown_power:.1f} W"],
            ],
            headers=["State / transition", "Power"],
            title="Fig 1: Power modes (regenerated)",
        )

    result = ExperimentResult(name="table2_disk", wall_seconds=timer.elapsed)
    result.tables["table2"] = table2
    result.tables["fig1"] = fig1
    threshold = spec.breakeven_threshold()
    result.notes.append(
        f"derived idleness threshold {threshold:.1f} s (paper: 53.3 s)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
