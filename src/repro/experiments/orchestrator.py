"""Parallel sweep orchestration with per-point result caching.

Every figure of the paper is a grid of near-identical simulations (rate x
load, threshold x config, ...).  The :class:`SweepRunner` turns such grids
into lists of self-contained, picklable :class:`SimTask` descriptions and

* skips points whose result is already cached (in memory, and optionally on
  disk) under a fingerprint of the full task — config, workload parameters
  incl. the stream seed, policy, mapping and horizon;
* deduplicates identical points within one batch;
* fans the remaining points across ``concurrent.futures``
  ``ProcessPoolExecutor`` workers (serially when only one worker is
  configured or only one point is pending), shipping each distinct
  :class:`InlineWorkload` to the pool **once** via the executor
  initializer instead of pickling its arrays into every task.

Workers rebuild the workload from its parameters (synthetic and NERSC
specs) or from inline arrays (:class:`InlineWorkload`, optionally carrying
read/write ``kinds``), allocate when a ``policy`` is given (recording the
allocation's disk count in ``result.extra["alloc_disks"]``) or simulate a
prebuilt ``mapping`` directly.

All grid-shaped experiment harnesses (``rate_sweep``, ``trace_sweep``,
``fig4_tradeoff``, ``groupsize_sweep``, ``sensitivity``, the simulation
``ablations``) route their grids through the shared :func:`default_runner`;
``python -m repro run ... --workers N [--engine fast] [--sweep-cache DIR]``
calls :func:`configure` to size the pool, optionally force the batched
kernel, and point the disk-backed result cache somewhere else.

Defaults are environment-driven: the worker count reads
``REPRO_SWEEP_WORKERS`` and falls back to serial execution (multi-process
fan-out is opt-in), while the *shared* runner persists results under
``REPRO_SWEEP_CACHE`` (default ``~/.cache/repro/sweeps``; set it to
``off`` to disable) so repeated CLI invocations of the same grid reuse
each other's points across sessions.  Fingerprints are salted with
:data:`RESULT_SCHEMA_VERSION` and the package version; bump the schema
constant whenever simulation semantics change within a release so
persisted results from the older simulator become misses.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.system.config import StorageConfig
from repro.system.metrics import SimulationResult
from repro.system.runner import allocate, simulate
from repro.system.storage import StorageSystem
from repro.workload.arrivals import RequestStream
from repro.workload.catalog import FileCatalog
from repro.workload.generator import SyntheticWorkloadParams, generate_workload
from repro.workload.mixed import MixedRequestStream
from repro.workload.nersc import NerscTraceParams, synthesize_nersc_trace

__all__ = [
    "InlineWorkload",
    "SimTask",
    "SweepRunner",
    "configure",
    "default_cache_dir",
    "default_runner",
    "materialize_workload",
    "task_fingerprint",
]


@dataclass(frozen=True, eq=False)
class InlineWorkload:
    """A fully materialized (catalog, stream) pair shipped to workers.

    Used when the workload is expensive or stateful to synthesize (e.g. a
    shared trace whose allocations were computed up front).  When several
    tasks of one batch share the instance it is pickled to each worker
    process exactly once, through the pool initializer.  An optional
    ``kinds`` array (``"read"``/``"write"`` per request) materializes as a
    :class:`~repro.workload.mixed.MixedRequestStream`, so mixed
    read/write grid points are first-class sweep citizens.
    """

    sizes: np.ndarray
    popularities: np.ndarray
    times: np.ndarray
    file_ids: np.ndarray
    duration: float
    kinds: Optional[np.ndarray] = None

    def content_digest(self) -> str:
        """Digest of the arrays, computed once and cached on the instance.

        Grids embed the same inline workload in every task; hashing the
        (potentially multi-megabyte) arrays once instead of per task keeps
        :func:`task_fingerprint` cheap.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            digest = hashlib.sha256()
            arrays = [self.sizes, self.popularities, self.times, self.file_ids]
            if self.kinds is not None:
                arrays.append(np.asarray(self.kinds))
            for arr in arrays:
                arr = np.ascontiguousarray(arr)
                digest.update(arr.dtype.str.encode())
                digest.update(str(arr.shape).encode())
                digest.update(arr.tobytes())
            digest.update(repr(float(self.duration)).encode())
            digest.update(b"mixed" if self.kinds is not None else b"reads")
            cached = digest.hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached


#: Workload descriptions a worker can materialize on its own.
WorkloadSpec = Union[SyntheticWorkloadParams, NerscTraceParams, InlineWorkload]


@dataclass(frozen=True)
class _SharedWorkloadRef:
    """Stand-in for an :class:`InlineWorkload` installed in the worker.

    The pool initializer ships each distinct inline workload's arrays to
    every worker exactly once; tasks submitted to the pool then carry only
    this digest reference instead of re-pickling megabytes per grid point.
    Fingerprints are computed on the original tasks, so cache keys are
    unaffected by the substitution.
    """

    digest: str


#: Per-process registry the pool initializer fills (worker side).
_SHARED_WORKLOADS: Dict[str, InlineWorkload] = {}


def _install_shared_workloads(payload: Dict[str, InlineWorkload]) -> None:
    """Executor initializer: register the batch's inline workloads."""
    _SHARED_WORKLOADS.update(payload)


@dataclass(frozen=True, eq=False)
class SimTask:
    """One self-contained grid point: workload + placement + config.

    Exactly one of ``policy`` (allocate inside the worker) or ``mapping``
    (simulate a prebuilt file->disk array) must be set.  ``key`` is an
    optional caller-side grid coordinate echoed by
    :meth:`SweepRunner.run_map`.
    """

    label: str
    workload: WorkloadSpec
    config: StorageConfig
    policy: Optional[str] = None
    mapping: Optional[np.ndarray] = None
    arrival_rate: Optional[float] = None
    num_disks: Optional[int] = None
    duration: Optional[float] = None
    alloc_rng: Optional[int] = None
    key: Optional[Hashable] = None

    def __post_init__(self) -> None:
        if (self.policy is None) == (self.mapping is None):
            raise ConfigError(
                "exactly one of policy/mapping must be set on a SimTask"
            )


def _canon(obj: Any) -> Any:
    """Canonical, hashable-by-pickle form of task components."""
    if isinstance(obj, InlineWorkload):
        return ("InlineWorkload", obj.content_digest())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (type(obj).__name__,) + tuple(
            (f.name, _canon(getattr(obj, f.name)))
            for f in dataclasses.fields(obj)
        )
    if isinstance(obj, np.ndarray):
        return (obj.shape, obj.dtype.str, obj.tobytes())
    return obj


#: Salt mixed into every task fingerprint.  Bump this whenever simulation
#: *semantics* change within a release (kernel behavior, dispatcher
#: policy, metric definitions), so disk-cached results computed by an
#: older simulator are treated as misses instead of being silently served.
#: The package version is mixed in automatically, so releases always
#: invalidate regardless of discipline here.
#: v3: pluggable write-placement registry (``StorageConfig.write_policy``
#: salts fingerprints via the config dataclass) + ``final_mapping`` on
#: :class:`SimulationResult`.
#: v4: online DPM control subsystem (``StorageConfig.dpm_policy`` /
#: ``control_interval`` / ``slo_target`` / ``slo_percentile`` salt
#: fingerprints via the config dataclass; controlled runs carry
#: per-interval traces in ``extra["dpm"]``) + the ``hottest_spinning``
#: write-placement policy.
#: v5: multi-state DPM ladders (``StorageConfig.dpm_ladder`` salts
#: fingerprints via the config dataclass; ladder runs key
#: ``state_durations`` by timeline label) + the reworked
#: ``MultiStateDiskDrive`` descent/wake energy accounting.
#: v6: out-of-core streaming (``StorageConfig.metrics_mode`` /
#: ``chunk_size`` salt fingerprints via the config dataclass; streaming
#: results carry ``response_stats`` instead of ``response_times``) + the
#: unified chunked fast-kernel core.
RESULT_SCHEMA_VERSION = 7


def task_fingerprint(task: SimTask) -> str:
    """Stable hex digest identifying a task's simulation inputs.

    Covers everything that shapes the result — config, workload parameters
    (incl. the stream seed), policy/mapping, horizon, the label the result
    is reported under — plus :data:`RESULT_SCHEMA_VERSION` and the package
    version, so persisted results do not survive semantic changes to the
    simulator.  The caller-side ``key`` is presentation only and excluded,
    so regrouping a grid does not invalidate its cache.
    """
    from repro import __version__

    payload = pickle.dumps(
        (
            RESULT_SCHEMA_VERSION,
            __version__,
            _canon(dataclasses.replace(task, key=None)),
        ),
        protocol=4,
    )
    return hashlib.sha256(payload).hexdigest()


def materialize_workload(
    workload: WorkloadSpec,
) -> Tuple[FileCatalog, RequestStream]:
    """Build (catalog, stream) from a workload spec.

    Synthesized workloads (synthetic/NERSC params) are cached per process,
    so a grid sharing one spec generates it once, not once per task.
    Experiment harnesses that also need the workload outside the sweep
    (e.g. for analytic overlays) should call this instead of synthesizing
    their own copy.  An :class:`InlineWorkload` is trivial array wrapping
    and is built directly — caching it would only pin duplicate array
    copies (unpickled worker instances hash by identity and never hit).
    """
    if isinstance(workload, _SharedWorkloadRef):
        try:
            workload = _SHARED_WORKLOADS[workload.digest]
        except KeyError:
            raise SimulationError(
                f"shared workload {workload.digest[:12]}… was not installed "
                "in this process (pool initializer missing?)"
            ) from None
    if isinstance(workload, InlineWorkload):
        catalog = FileCatalog(
            sizes=workload.sizes, popularities=workload.popularities
        )
        if workload.kinds is not None:
            return catalog, MixedRequestStream(
                times=workload.times,
                file_ids=workload.file_ids,
                kinds=workload.kinds,
                duration=workload.duration,
            )
        stream = RequestStream(
            times=workload.times,
            file_ids=workload.file_ids,
            duration=workload.duration,
        )
        return catalog, stream
    return _synthesize_cached(workload)


# Synthetic/NERSC params hash by value (frozen dataclasses), so the cache
# hits whenever grid points share a spec — even across separate run() calls.
@functools.lru_cache(maxsize=8)
def _synthesize_cached(
    workload: WorkloadSpec,
) -> Tuple[FileCatalog, RequestStream]:
    if isinstance(workload, SyntheticWorkloadParams):
        built = generate_workload(workload)
        return built.catalog, built.stream
    if isinstance(workload, NerscTraceParams):
        trace = synthesize_nersc_trace(workload)
        return trace.catalog, trace.stream
    raise ConfigError(f"unsupported workload spec {type(workload).__name__}")


def _execute_task(task: SimTask) -> SimulationResult:
    """Run one grid point (module-level so ProcessPoolExecutor can pickle)."""
    catalog, stream = materialize_workload(task.workload)
    rate = (
        task.arrival_rate
        if task.arrival_rate is not None
        else stream.mean_rate
    )
    if task.policy is not None:
        allocation = allocate(
            catalog,
            task.policy,
            task.config,
            rate,
            rng=task.alloc_rng,
            num_disks=task.num_disks,
        )
        result = simulate(
            catalog,
            stream,
            allocation,
            task.config,
            num_disks=task.num_disks,
            duration=task.duration,
            label=task.label,
        )
        result.extra["alloc_disks"] = float(allocation.num_disks)
        return result
    mapping = np.asarray(task.mapping, dtype=np.int64)
    num_disks = task.num_disks
    if num_disks is not None and mapping.size:
        num_disks = max(num_disks, int(mapping.max()) + 1)
    system = StorageSystem(catalog, mapping, task.config, num_disks=num_disks)
    return system.run(stream, duration=task.duration, label=task.label)


def _resolve_workers(max_workers: Optional[int]) -> int:
    if max_workers is not None:
        return max(1, int(max_workers))
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        return max(1, int(env))
    # Multi-process fan-out is opt-in (--workers / REPRO_SWEEP_WORKERS):
    # spawning pools by default would re-execute unguarded user scripts on
    # spawn-start platforms and surprise library callers.
    return 1


#: ``REPRO_SWEEP_CACHE`` / ``--sweep-cache`` values that disable the
#: disk-backed result cache (case-insensitive; shared with the CLI).
CACHE_OFF_TOKENS = ("", "0", "off", "none", "disabled")


def resolve_cache_dir(value: Union[str, Path]) -> Optional[Path]:
    """Turn a user-supplied cache location into a path (or ``None``).

    One resolver for both ``REPRO_SWEEP_CACHE`` and the CLI's
    ``--sweep-cache``: off-tokens (:data:`CACHE_OFF_TOKENS`) disable the
    disk cache, anything else is a directory with ``~`` expanded.
    """
    if isinstance(value, str):
        if value.strip().lower() in CACHE_OFF_TOKENS:
            return None
        return Path(value).expanduser()
    return value


def default_cache_dir() -> Optional[Path]:
    """Where the *shared* runner persists sweep results across sessions.

    ``REPRO_SWEEP_CACHE`` overrides the location (set it to ``off``/``0``/
    ``none`` to disable persistence entirely); otherwise results land under
    ``$XDG_CACHE_HOME/repro/sweeps`` (``~/.cache/repro/sweeps``).  Only
    :func:`default_runner`/:func:`configure` apply this default —
    constructing a :class:`SweepRunner` directly still opts into disk
    caching explicitly via ``cache_dir``.
    """
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env is not None:
        return resolve_cache_dir(env)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base).expanduser() if base else Path.home() / ".cache"
    return root / "repro" / "sweeps"


@dataclass
class SweepStats:
    """Counters of what one runner actually computed vs reused."""

    executed: int = 0
    cached: int = 0
    deduplicated: int = 0


class SweepRunner:
    """Fans grids of :class:`SimTask` across processes with caching.

    Parameters
    ----------
    max_workers:
        Process pool size; ``None`` reads ``REPRO_SWEEP_WORKERS`` and falls
        back to serial execution (fan-out is opt-in).
    engine:
        When set (``"event"``/``"fast"``), override each task's
        ``config.engine`` — ``"fast"`` is applied to every known workload
        spec (the batched kernel covers writes and shared caches; see the
        coverage matrix in :mod:`repro.sim.fastkernel`).
    cache_dir:
        Optional directory for persistent pickled results, keyed by
        :func:`task_fingerprint`, surviving across processes and sessions.
        The shared :func:`default_runner` fills this from
        :func:`default_cache_dir`; direct constructions default to no disk
        cache.
    chunk_size:
        When set, override each task's ``config.chunk_size`` so fast-engine
        sweep points run out-of-core through the chunked kernel (the CLI's
        ``--chunk-size``).  Results are bit-identical to monolithic runs
        (the differential harness's chunked axis enforces it), so the
        fingerprint still salts on the config — a chunked sweep and a
        monolithic sweep are distinct cache entries by design.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        engine: Optional[str] = None,
        cache_dir: Union[None, str, Path] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if engine is not None and engine not in ("event", "fast"):
            raise ConfigError(
                f"engine must be 'event' or 'fast', got {engine!r}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(
                f"chunk_size must be a positive integer, got {chunk_size!r}"
            )
        self.max_workers = _resolve_workers(max_workers)
        self.engine = engine
        self.chunk_size = chunk_size
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: Dict[str, SimulationResult] = {}
        self.stats = SweepStats()

    # -- engine + cache plumbing ---------------------------------------------

    def _with_engine(self, task: SimTask) -> SimTask:
        overrides: Dict[str, Any] = {}
        if (
            self.chunk_size is not None
            and task.config.chunk_size != self.chunk_size
        ):
            overrides["chunk_size"] = self.chunk_size
        if self.engine is not None and task.config.engine != self.engine:
            apply_engine = True
            if self.engine == "fast":
                # Every known workload spec materializes an array-backed
                # stream — the only thing the fast kernel still cannot
                # express (writes and shared caches are covered since the
                # global-merge pass).  Leave unknown future specs alone
                # rather than risk a mid-sweep ConfigError.
                apply_engine = isinstance(
                    task.workload,
                    (SyntheticWorkloadParams, NerscTraceParams, InlineWorkload),
                )
            if apply_engine:
                overrides["engine"] = self.engine
        if not overrides:
            return task
        return dataclasses.replace(
            task, config=task.config.with_overrides(**overrides)
        )

    def _cache_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.pkl"

    def _lookup(self, key: str) -> Optional[SimulationResult]:
        hit = self._memory.get(key)
        if hit is not None:
            return hit
        path = self._cache_path(key)
        if path is not None and path.exists():
            try:
                with path.open("rb") as fh:
                    result = pickle.load(fh)
            except Exception:
                # A truncated/corrupt entry (e.g. a crashed writer) is a
                # miss, not a fatal error; it will be rewritten below.
                return None
            self._memory[key] = result
            return result
        return None

    def _store(self, key: str, result: SimulationResult) -> None:
        self._memory[key] = result
        path = self._cache_path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Unique temp name per writer: concurrent sessions sharing the
            # cache_dir must not interleave bytes in one temp file.  The
            # atomic replace makes the last complete writer win.
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:16]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh, protocol=4)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

    # -- execution -------------------------------------------------------------

    def run(self, tasks: Sequence[SimTask]) -> List[SimulationResult]:
        """Execute (or fetch) every task; results in task order."""
        tasks = [self._with_engine(t) for t in tasks]
        keys = [task_fingerprint(t) for t in tasks]
        results: List[Optional[SimulationResult]] = [None] * len(tasks)

        fresh: List[Tuple[str, SimTask]] = []
        seen: Dict[str, int] = {}
        for i, (task, key) in enumerate(zip(tasks, keys)):
            cached = self._lookup(key)
            if cached is not None:
                results[i] = cached
                self.stats.cached += 1
            elif key in seen:
                self.stats.deduplicated += 1
            else:
                seen[key] = i
                fresh.append((key, task))

        if fresh:
            workers = min(self.max_workers, len(fresh))
            if workers <= 1:
                outputs = [_execute_task(task) for _, task in fresh]
            else:
                # Ship each distinct inline workload once per worker (via
                # the pool initializer) and submit lightweight digest refs
                # instead of re-pickling the arrays into every task.
                shared: Dict[str, InlineWorkload] = {}
                submit: List[SimTask] = []
                for _, task in fresh:
                    workload = task.workload
                    if isinstance(workload, InlineWorkload):
                        digest = workload.content_digest()
                        shared[digest] = workload
                        task = dataclasses.replace(
                            task, workload=_SharedWorkloadRef(digest)
                        )
                    submit.append(task)
                pool_kwargs: Dict[str, Any] = {"max_workers": workers}
                if shared:
                    pool_kwargs["initializer"] = _install_shared_workloads
                    pool_kwargs["initargs"] = (shared,)
                with ProcessPoolExecutor(**pool_kwargs) as pool:
                    outputs = list(pool.map(_execute_task, submit))
            for (key, _), result in zip(fresh, outputs):
                self._store(key, result)
                self.stats.executed += 1

        for i, key in enumerate(keys):
            if results[i] is None:
                results[i] = self._memory[key]
        return results  # type: ignore[return-value]

    def run_map(
        self, tasks: Sequence[SimTask]
    ) -> Dict[Hashable, SimulationResult]:
        """Like :meth:`run`, keyed by each task's ``key`` (index fallback)."""
        results = self.run(tasks)
        return {
            task.key if task.key is not None else i: result
            for i, (task, result) in enumerate(zip(tasks, results))
        }


_DEFAULT: Optional[SweepRunner] = None

#: Sentinel for :func:`configure`'s ``cache_dir``: resolve via
#: :func:`default_cache_dir` (env override, else ``~/.cache/repro/sweeps``).
#: A unique object, not a string, so a real directory literally named
#: ``auto`` cannot collide with it.
AUTO_CACHE: object = object()


def default_runner() -> SweepRunner:
    """The process-wide runner the experiment harnesses share.

    Created lazily with the disk-backed :func:`default_cache_dir`, so CLI
    runs of the same grid reuse each other's points across sessions.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SweepRunner(cache_dir=default_cache_dir())
    return _DEFAULT


def configure(
    max_workers: Optional[int] = None,
    engine: Optional[str] = None,
    cache_dir: Union[None, str, Path, object] = AUTO_CACHE,
    chunk_size: Optional[int] = None,
) -> SweepRunner:
    """Replace the shared runner (used by the CLI's ``--workers``,
    ``--engine``, ``--sweep-cache`` and ``--chunk-size`` flags).

    ``cache_dir`` accepts a directory, ``None`` (no disk cache), or the
    default :data:`AUTO_CACHE` sentinel (resolve via
    :func:`default_cache_dir`).
    """
    global _DEFAULT
    if cache_dir is AUTO_CACHE:
        cache_dir = default_cache_dir()
    _DEFAULT = SweepRunner(
        max_workers=max_workers,
        engine=engine,
        cache_dir=cache_dir,
        chunk_size=chunk_size,
    )
    return _DEFAULT
