"""Parallel sweep orchestration with per-point result caching.

Every figure of the paper is a grid of near-identical simulations (rate x
load, threshold x config, ...).  The :class:`SweepRunner` turns such grids
into lists of self-contained, picklable :class:`SimTask` descriptions and

* skips points whose result is already cached (in memory, and optionally on
  disk) under a fingerprint of the full task — config, workload parameters
  incl. the stream seed, policy, mapping and horizon;
* deduplicates identical points within one batch;
* fans the remaining points across ``concurrent.futures``
  ``ProcessPoolExecutor`` workers (serially when only one worker is
  configured or only one point is pending), shipping each distinct
  :class:`InlineWorkload` to the pool **once** via the executor
  initializer instead of pickling its arrays into every task.

Workers rebuild the workload from its parameters (synthetic and NERSC
specs) or from inline arrays (:class:`InlineWorkload`, optionally carrying
read/write ``kinds``), allocate when a ``policy`` is given (recording the
allocation's disk count in ``result.extra["alloc_disks"]``) or simulate a
prebuilt ``mapping`` directly.

All grid-shaped experiment harnesses (``rate_sweep``, ``trace_sweep``,
``fig4_tradeoff``, ``groupsize_sweep``, ``sensitivity``, the simulation
``ablations``) route their grids through the shared :func:`default_runner`;
``python -m repro run ... --workers N [--engine fast] [--sweep-cache DIR]``
calls :func:`configure` to size the pool, optionally force the batched
kernel, and point the disk-backed result cache somewhere else.

Defaults are environment-driven: the worker count reads
``REPRO_SWEEP_WORKERS`` and falls back to serial execution (multi-process
fan-out is opt-in), while the *shared* runner persists results under
``REPRO_SWEEP_CACHE`` (default ``~/.cache/repro/sweeps``; set it to
``off`` to disable) so repeated CLI invocations of the same grid reuse
each other's points across sessions.  Fingerprints are salted with
:data:`RESULT_SCHEMA_VERSION` and the package version; bump the schema
constant whenever simulation semantics change within a release so
persisted results from the older simulator become misses.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import pickle
import tempfile
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.system.config import StorageConfig
from repro.system.metrics import SimulationResult
from repro.system.runner import allocate, simulate
from repro.system.storage import StorageSystem
from repro.workload.arrivals import RequestStream
from repro.workload.catalog import FileCatalog
from repro.workload.generator import SyntheticWorkloadParams, generate_workload
from repro.workload.mixed import MixedRequestStream
from repro.workload.nersc import NerscTraceParams, synthesize_nersc_trace

__all__ = [
    "InlineWorkload",
    "SimTask",
    "SweepRunner",
    "SweepStats",
    "TaskProfile",
    "configure",
    "default_cache_dir",
    "default_runner",
    "materialize_workload",
    "task_fingerprint",
]


@dataclass(frozen=True, eq=False)
class InlineWorkload:
    """A fully materialized (catalog, stream) pair shipped to workers.

    Used when the workload is expensive or stateful to synthesize (e.g. a
    shared trace whose allocations were computed up front).  When several
    tasks of one batch share the instance it is pickled to each worker
    process exactly once, through the pool initializer.  An optional
    ``kinds`` array (``"read"``/``"write"`` per request) materializes as a
    :class:`~repro.workload.mixed.MixedRequestStream`, so mixed
    read/write grid points are first-class sweep citizens.
    """

    sizes: np.ndarray
    popularities: np.ndarray
    times: np.ndarray
    file_ids: np.ndarray
    duration: float
    kinds: Optional[np.ndarray] = None

    def content_digest(self) -> str:
        """Digest of the arrays, computed once and cached on the instance.

        Grids embed the same inline workload in every task; hashing the
        (potentially multi-megabyte) arrays once instead of per task keeps
        :func:`task_fingerprint` cheap.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            digest = hashlib.sha256()
            arrays = [self.sizes, self.popularities, self.times, self.file_ids]
            if self.kinds is not None:
                arrays.append(np.asarray(self.kinds))
            for arr in arrays:
                arr = np.ascontiguousarray(arr)
                digest.update(arr.dtype.str.encode())
                digest.update(str(arr.shape).encode())
                digest.update(arr.tobytes())
            digest.update(repr(float(self.duration)).encode())
            digest.update(b"mixed" if self.kinds is not None else b"reads")
            cached = digest.hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached


#: Workload descriptions a worker can materialize on its own.
WorkloadSpec = Union[SyntheticWorkloadParams, NerscTraceParams, InlineWorkload]


@dataclass(frozen=True)
class _SharedWorkloadRef:
    """Stand-in for an :class:`InlineWorkload` installed in the worker.

    The pool initializer ships each distinct inline workload's arrays to
    every worker exactly once; tasks submitted to the pool then carry only
    this digest reference instead of re-pickling megabytes per grid point.
    Fingerprints are computed on the original tasks, so cache keys are
    unaffected by the substitution.
    """

    digest: str


#: Per-process registry the pool initializer fills (worker side).
_SHARED_WORKLOADS: Dict[str, InlineWorkload] = {}


def _install_shared_workloads(payload: Dict[str, InlineWorkload]) -> None:
    """Executor initializer: register the batch's inline workloads."""
    _SHARED_WORKLOADS.update(payload)


@dataclass(frozen=True, eq=False)
class SimTask:
    """One self-contained grid point: workload + placement + config.

    Exactly one of ``policy`` (allocate inside the worker) or ``mapping``
    (simulate a prebuilt file->disk array) must be set.  ``key`` is an
    optional caller-side grid coordinate echoed by
    :meth:`SweepRunner.run_map`.
    """

    label: str
    workload: WorkloadSpec
    config: StorageConfig
    policy: Optional[str] = None
    mapping: Optional[np.ndarray] = None
    arrival_rate: Optional[float] = None
    num_disks: Optional[int] = None
    duration: Optional[float] = None
    alloc_rng: Optional[int] = None
    key: Optional[Hashable] = None

    def __post_init__(self) -> None:
        if (self.policy is None) == (self.mapping is None):
            raise ConfigError(
                "exactly one of policy/mapping must be set on a SimTask"
            )


def _canon(obj: Any) -> Any:
    """Canonical, hashable-by-pickle form of task components."""
    if isinstance(obj, InlineWorkload):
        return ("InlineWorkload", obj.content_digest())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (type(obj).__name__,) + tuple(
            (f.name, _canon(getattr(obj, f.name)))
            for f in dataclasses.fields(obj)
        )
    if isinstance(obj, np.ndarray):
        return (obj.shape, obj.dtype.str, obj.tobytes())
    return obj


#: Salt mixed into every task fingerprint.  Bump this whenever simulation
#: *semantics* change within a release (kernel behavior, dispatcher
#: policy, metric definitions), so disk-cached results computed by an
#: older simulator are treated as misses instead of being silently served.
#: The package version is mixed in automatically, so releases always
#: invalidate regardless of discipline here.
#: v3: pluggable write-placement registry (``StorageConfig.write_policy``
#: salts fingerprints via the config dataclass) + ``final_mapping`` on
#: :class:`SimulationResult`.
#: v4: online DPM control subsystem (``StorageConfig.dpm_policy`` /
#: ``control_interval`` / ``slo_target`` / ``slo_percentile`` salt
#: fingerprints via the config dataclass; controlled runs carry
#: per-interval traces in ``extra["dpm"]``) + the ``hottest_spinning``
#: write-placement policy.
#: v5: multi-state DPM ladders (``StorageConfig.dpm_ladder`` salts
#: fingerprints via the config dataclass; ladder runs key
#: ``state_durations`` by timeline label) + the reworked
#: ``MultiStateDiskDrive`` descent/wake energy accounting.
#: v6: out-of-core streaming (``StorageConfig.metrics_mode`` /
#: ``chunk_size`` salt fingerprints via the config dataclass; streaming
#: results carry ``response_stats`` instead of ``response_times``) + the
#: unified chunked fast-kernel core.
#: v8: slack-aware request scheduling (``StorageConfig.scheduler`` /
#: ``scheduler_params`` salt fingerprints via the config dataclass;
#: scheduled runs hold requests back and measure response from the
#: original arrival).
RESULT_SCHEMA_VERSION = 8


def task_fingerprint(task: SimTask) -> str:
    """Stable hex digest identifying a task's simulation inputs.

    Covers everything that shapes the result — config, workload parameters
    (incl. the stream seed), policy/mapping, horizon, the label the result
    is reported under — plus :data:`RESULT_SCHEMA_VERSION` and the package
    version, so persisted results do not survive semantic changes to the
    simulator.  The caller-side ``key`` is presentation only and excluded,
    so regrouping a grid does not invalidate its cache.
    """
    from repro import __version__

    payload = pickle.dumps(
        (
            RESULT_SCHEMA_VERSION,
            __version__,
            _canon(dataclasses.replace(task, key=None)),
        ),
        protocol=4,
    )
    return hashlib.sha256(payload).hexdigest()


def materialize_workload(
    workload: WorkloadSpec,
) -> Tuple[FileCatalog, RequestStream]:
    """Build (catalog, stream) from a workload spec.

    Synthesized workloads (synthetic/NERSC params) are cached per process,
    so a grid sharing one spec generates it once, not once per task.
    Experiment harnesses that also need the workload outside the sweep
    (e.g. for analytic overlays) should call this instead of synthesizing
    their own copy.  An :class:`InlineWorkload` is trivial array wrapping
    and is built directly — caching it would only pin duplicate array
    copies (unpickled worker instances hash by identity and never hit).
    """
    if isinstance(workload, _SharedWorkloadRef):
        try:
            workload = _SHARED_WORKLOADS[workload.digest]
        except KeyError:
            raise SimulationError(
                f"shared workload {workload.digest[:12]}… was not installed "
                "in this process (pool initializer missing?)"
            ) from None
    if isinstance(workload, InlineWorkload):
        catalog = FileCatalog(
            sizes=workload.sizes, popularities=workload.popularities
        )
        if workload.kinds is not None:
            return catalog, MixedRequestStream(
                times=workload.times,
                file_ids=workload.file_ids,
                kinds=workload.kinds,
                duration=workload.duration,
            )
        stream = RequestStream(
            times=workload.times,
            file_ids=workload.file_ids,
            duration=workload.duration,
        )
        return catalog, stream
    return _synthesize_cached(workload)


# Synthetic/NERSC params hash by value (frozen dataclasses), so the cache
# hits whenever grid points share a spec — even across separate run() calls.
@functools.lru_cache(maxsize=8)
def _synthesize_cached(
    workload: WorkloadSpec,
) -> Tuple[FileCatalog, RequestStream]:
    if isinstance(workload, SyntheticWorkloadParams):
        built = generate_workload(workload)
        return built.catalog, built.stream
    if isinstance(workload, NerscTraceParams):
        trace = synthesize_nersc_trace(workload)
        return trace.catalog, trace.stream
    raise ConfigError(f"unsupported workload spec {type(workload).__name__}")


def _execute_task_profiled(
    task: SimTask,
) -> Tuple[SimulationResult, Tuple[float, float, int]]:
    """:func:`_execute_task` plus ``(start, end, pid)`` wall-clock profile.

    Wall-clock reads live here — strictly in the orchestrator layer, never
    in the simulation trees (reprolint R004) — and use ``time.time()``
    rather than a monotonic clock because the timestamps must be
    comparable across pool worker processes.
    """
    t0 = time.time()
    result = _execute_task(task)
    return result, (t0, time.time(), os.getpid())


def _execute_task(task: SimTask) -> SimulationResult:
    """Run one grid point (module-level so ProcessPoolExecutor can pickle)."""
    catalog, stream = materialize_workload(task.workload)
    rate = (
        task.arrival_rate
        if task.arrival_rate is not None
        else stream.mean_rate
    )
    if task.policy is not None:
        allocation = allocate(
            catalog,
            task.policy,
            task.config,
            rate,
            rng=task.alloc_rng,
            num_disks=task.num_disks,
        )
        result = simulate(
            catalog,
            stream,
            allocation,
            task.config,
            num_disks=task.num_disks,
            duration=task.duration,
            label=task.label,
        )
        result.extra["alloc_disks"] = float(allocation.num_disks)
        return result
    mapping = np.asarray(task.mapping, dtype=np.int64)
    num_disks = task.num_disks
    if num_disks is not None and mapping.size:
        num_disks = max(num_disks, int(mapping.max()) + 1)
    system = StorageSystem(catalog, mapping, task.config, num_disks=num_disks)
    return system.run(stream, duration=task.duration, label=task.label)


def _resolve_workers(max_workers: Optional[int]) -> int:
    if max_workers is not None:
        return max(1, int(max_workers))
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        return max(1, int(env))
    # Multi-process fan-out is opt-in (--workers / REPRO_SWEEP_WORKERS):
    # spawning pools by default would re-execute unguarded user scripts on
    # spawn-start platforms and surprise library callers.
    return 1


#: ``REPRO_SWEEP_CACHE`` / ``--sweep-cache`` values that disable the
#: disk-backed result cache (case-insensitive; shared with the CLI).
CACHE_OFF_TOKENS = ("", "0", "off", "none", "disabled")


def resolve_cache_dir(value: Union[str, Path]) -> Optional[Path]:
    """Turn a user-supplied cache location into a path (or ``None``).

    One resolver for both ``REPRO_SWEEP_CACHE`` and the CLI's
    ``--sweep-cache``: off-tokens (:data:`CACHE_OFF_TOKENS`) disable the
    disk cache, anything else is a directory with ``~`` expanded.
    """
    if isinstance(value, str):
        if value.strip().lower() in CACHE_OFF_TOKENS:
            return None
        return Path(value).expanduser()
    return value


def default_cache_dir() -> Optional[Path]:
    """Where the *shared* runner persists sweep results across sessions.

    ``REPRO_SWEEP_CACHE`` overrides the location (set it to ``off``/``0``/
    ``none`` to disable persistence entirely); otherwise results land under
    ``$XDG_CACHE_HOME/repro/sweeps`` (``~/.cache/repro/sweeps``).  Only
    :func:`default_runner`/:func:`configure` apply this default —
    constructing a :class:`SweepRunner` directly still opts into disk
    caching explicitly via ``cache_dir``.
    """
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env is not None:
        return resolve_cache_dir(env)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base).expanduser() if base else Path.home() / ".cache"
    return root / "repro" / "sweeps"


@dataclass
class TaskProfile:
    """Wall-clock profile of one executed grid point.

    ``started`` is the offset (seconds) from the sweep's start, so
    profiles from different worker processes share one time base;
    ``wall`` is the task's own elapsed wall time on its worker.
    """

    label: str
    fingerprint: str
    started: float
    wall: float
    pid: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "fingerprint": self.fingerprint,
            "started_s": self.started,
            "wall_s": self.wall,
            "pid": self.pid,
        }


@dataclass
class SweepStats:
    """What one :meth:`SweepRunner.run` call computed vs reused.

    Reset at the start of every ``run()`` so multi-sweep sessions report
    per-sweep numbers, not accumulated stale counts; per-run snapshots
    pile up on :attr:`SweepRunner.history` for cross-sweep reporting.
    ``cached`` splits into ``memory_hits`` (this runner already held the
    result) and ``disk_hits`` (revived from the persistent cache).
    """

    executed: int = 0
    cached: int = 0
    deduplicated: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    elapsed: float = 0.0
    profiles: List[TaskProfile] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.executed + self.cached + self.deduplicated

    def reset(self) -> None:
        self.executed = 0
        self.cached = 0
        self.deduplicated = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.elapsed = 0.0
        self.profiles = []

    def summary_line(self) -> str:
        """The one-line sweep summary the CLI prints under ``--verbose``."""
        return (
            f"sweep: {self.total} tasks — {self.executed} executed, "
            f"{self.cached} cached ({self.memory_hits} memory / "
            f"{self.disk_hits} disk), {self.deduplicated} deduplicated "
            f"in {self.elapsed:.2f}s"
        )

    def worker_occupancy(self) -> Dict[int, float]:
        """Busy wall-seconds per worker pid (from the executed profiles)."""
        busy: Dict[int, float] = {}
        for profile in self.profiles:
            busy[profile.pid] = busy.get(profile.pid, 0.0) + profile.wall
        return busy

    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (profiles included) for manifests/exports."""
        return {
            "executed": self.executed,
            "cached": self.cached,
            "deduplicated": self.deduplicated,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "elapsed_s": self.elapsed,
            "profiles": [p.as_dict() for p in self.profiles],
        }


class SweepRunner:
    """Fans grids of :class:`SimTask` across processes with caching.

    Parameters
    ----------
    max_workers:
        Process pool size; ``None`` reads ``REPRO_SWEEP_WORKERS`` and falls
        back to serial execution (fan-out is opt-in).
    engine:
        When set (``"event"``/``"fast"``), override each task's
        ``config.engine`` — ``"fast"`` is applied to every known workload
        spec (the batched kernel covers writes and shared caches; see the
        coverage matrix in :mod:`repro.sim.fastkernel`).
    cache_dir:
        Optional directory for persistent pickled results, keyed by
        :func:`task_fingerprint`, surviving across processes and sessions.
        The shared :func:`default_runner` fills this from
        :func:`default_cache_dir`; direct constructions default to no disk
        cache.
    chunk_size:
        When set, override each task's ``config.chunk_size`` so fast-engine
        sweep points run out-of-core through the chunked kernel (the CLI's
        ``--chunk-size``).  Results are bit-identical to monolithic runs
        (the differential harness's chunked axis enforces it), so the
        fingerprint still salts on the config — a chunked sweep and a
        monolithic sweep are distinct cache entries by design.
    verbose:
        Print :meth:`SweepStats.summary_line` after every ``run()`` (the
        CLI's ``--verbose``).

    Each ``run()`` resets :attr:`stats` and appends a finished snapshot
    (with per-task :class:`TaskProfile` records) to :attr:`history`; with
    a ``cache_dir`` it also writes a JSON run manifest — fingerprints,
    seeds, :data:`RESULT_SCHEMA_VERSION`, timings — under
    ``cache_dir/manifests/`` (path kept on :attr:`last_manifest`).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        engine: Optional[str] = None,
        cache_dir: Union[None, str, Path] = None,
        chunk_size: Optional[int] = None,
        verbose: bool = False,
    ) -> None:
        if engine is not None and engine not in ("event", "fast"):
            raise ConfigError(
                f"engine must be 'event' or 'fast', got {engine!r}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(
                f"chunk_size must be a positive integer, got {chunk_size!r}"
            )
        self.max_workers = _resolve_workers(max_workers)
        self.engine = engine
        self.chunk_size = chunk_size
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.verbose = bool(verbose)
        self._memory: Dict[str, SimulationResult] = {}
        self.stats = SweepStats()
        self.history: List[SweepStats] = []
        self.last_manifest: Optional[Path] = None

    # -- engine + cache plumbing ---------------------------------------------

    def _with_engine(self, task: SimTask) -> SimTask:
        overrides: Dict[str, Any] = {}
        if (
            self.chunk_size is not None
            and task.config.chunk_size != self.chunk_size
        ):
            overrides["chunk_size"] = self.chunk_size
        if self.engine is not None and task.config.engine != self.engine:
            apply_engine = True
            if self.engine == "fast":
                # Every known workload spec materializes an array-backed
                # stream — the only thing the fast kernel still cannot
                # express (writes and shared caches are covered since the
                # global-merge pass).  Leave unknown future specs alone
                # rather than risk a mid-sweep ConfigError.
                apply_engine = isinstance(
                    task.workload,
                    (SyntheticWorkloadParams, NerscTraceParams, InlineWorkload),
                )
            if apply_engine:
                overrides["engine"] = self.engine
        if not overrides:
            return task
        return dataclasses.replace(
            task, config=task.config.with_overrides(**overrides)
        )

    def _cache_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.pkl"

    def _lookup(self, key: str) -> Optional[SimulationResult]:
        hit = self._memory.get(key)
        if hit is not None:
            self.stats.memory_hits += 1
            return hit
        path = self._cache_path(key)
        if path is not None and path.exists():
            try:
                with path.open("rb") as fh:
                    result = pickle.load(fh)
            except Exception:
                # A truncated/corrupt entry (e.g. a crashed writer) is a
                # miss, not a fatal error; it will be rewritten below.
                return None
            self._memory[key] = result
            self.stats.disk_hits += 1
            return result
        return None

    def _store(self, key: str, result: SimulationResult) -> None:
        self._memory[key] = result
        path = self._cache_path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Unique temp name per writer: concurrent sessions sharing the
            # cache_dir must not interleave bytes in one temp file.  The
            # atomic replace makes the last complete writer win.
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:16]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh, protocol=4)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

    # -- execution -------------------------------------------------------------

    def run(self, tasks: Sequence[SimTask]) -> List[SimulationResult]:
        """Execute (or fetch) every task; results in task order."""
        self.stats.reset()
        t_sweep = time.time()
        tasks = [self._with_engine(t) for t in tasks]
        keys = [task_fingerprint(t) for t in tasks]
        results: List[Optional[SimulationResult]] = [None] * len(tasks)

        fresh: List[Tuple[str, SimTask]] = []
        seen: Dict[str, int] = {}
        for i, (task, key) in enumerate(zip(tasks, keys)):
            cached = self._lookup(key)
            if cached is not None:
                results[i] = cached
                self.stats.cached += 1
            elif key in seen:
                self.stats.deduplicated += 1
            else:
                seen[key] = i
                fresh.append((key, task))

        if fresh:
            workers = min(self.max_workers, len(fresh))
            if workers <= 1:
                outputs = [_execute_task_profiled(task) for _, task in fresh]
            else:
                # Ship each distinct inline workload once per worker (via
                # the pool initializer) and submit lightweight digest refs
                # instead of re-pickling the arrays into every task.
                shared: Dict[str, InlineWorkload] = {}
                submit: List[SimTask] = []
                for _, task in fresh:
                    workload = task.workload
                    if isinstance(workload, InlineWorkload):
                        digest = workload.content_digest()
                        shared[digest] = workload
                        task = dataclasses.replace(
                            task, workload=_SharedWorkloadRef(digest)
                        )
                    submit.append(task)
                pool_kwargs: Dict[str, Any] = {"max_workers": workers}
                if shared:
                    pool_kwargs["initializer"] = _install_shared_workloads
                    pool_kwargs["initargs"] = (shared,)
                with ProcessPoolExecutor(**pool_kwargs) as pool:
                    outputs = list(pool.map(_execute_task_profiled, submit))
            for (key, task), (result, (t0, t1, pid)) in zip(fresh, outputs):
                self._store(key, result)
                self.stats.executed += 1
                self.stats.profiles.append(
                    TaskProfile(
                        label=task.label,
                        fingerprint=key,
                        started=max(0.0, t0 - t_sweep),
                        wall=t1 - t0,
                        pid=pid,
                    )
                )

        for i, key in enumerate(keys):
            if results[i] is None:
                results[i] = self._memory[key]
        self.stats.elapsed = time.time() - t_sweep
        self.history.append(dataclasses.replace(
            self.stats, profiles=list(self.stats.profiles)
        ))
        self._write_manifest(tasks, keys)
        if self.verbose:
            print(self.stats.summary_line())
        return results  # type: ignore[return-value]

    def run_map(
        self, tasks: Sequence[SimTask]
    ) -> Dict[Hashable, SimulationResult]:
        """Like :meth:`run`, keyed by each task's ``key`` (index fallback).

        Duplicate keys collapse to one entry (the last task wins); a
        :class:`RuntimeWarning` flags the dropped results rather than
        losing them silently.
        """
        results = self.run(tasks)
        by_key: Dict[Hashable, SimulationResult] = {}
        dupes: List[Hashable] = []
        for i, (task, result) in enumerate(zip(tasks, results)):
            key = task.key if task.key is not None else i
            if key in by_key:
                dupes.append(key)
            by_key[key] = result
        if dupes:
            warnings.warn(
                f"run_map: {len(dupes)} duplicate task key(s) "
                f"(e.g. {dupes[0]!r}) — earlier results were overwritten; "
                "give grid points distinct keys to keep every result",
                RuntimeWarning,
                stacklevel=2,
            )
        return by_key

    # -- observability exports ---------------------------------------------------

    def _write_manifest(
        self, tasks: Sequence[SimTask], keys: Sequence[str]
    ) -> None:
        """Persist the sweep's run manifest next to the result cache.

        One JSON file per distinct grid (named by a digest of the task
        fingerprints) recording what was run, from which inputs, under
        which schema version, and how long it took — enough to audit a
        figure's provenance without re-running anything.  Skipped when
        the runner has no ``cache_dir`` (nothing persists anyway).
        """
        self.last_manifest = None
        if self.cache_dir is None or not tasks:
            return
        digest = hashlib.sha256("\n".join(keys).encode()).hexdigest()[:16]
        path = self.cache_dir / "manifests" / f"sweep-{digest}.json"
        payload = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "created_unix": time.time(),
            "elapsed_s": self.stats.elapsed,
            "workers": self.max_workers,
            "engine": self.engine,
            "chunk_size": self.chunk_size,
            "stats": self.stats.as_dict(),
            "tasks": [
                {
                    "label": task.label,
                    "fingerprint": key,
                    "seed": getattr(task.workload, "seed", None),
                }
                for task, key in zip(tasks, keys)
            ],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".sweep-{digest}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2, default=str)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.last_manifest = path

    def write_trace(self, path: Union[str, Path]) -> Path:
        """Export all recorded task profiles as a Chrome trace (wall clock).

        One ``X`` (complete) event per executed task, grouped by worker
        pid — load in Perfetto/``chrome://tracing`` to see the sweep's
        worker occupancy timeline.
        """
        from repro.obs.trace import sweep_chrome_trace, write_trace

        profiles = [p for stats in self.history for p in stats.profiles]
        return write_trace(sweep_chrome_trace(profiles), path)

    def write_metrics(self, path: Union[str, Path]) -> Path:
        """Export the per-run sweep stats as plain JSON."""
        path = Path(path)
        totals = SweepStats()
        for stats in self.history:
            totals.executed += stats.executed
            totals.cached += stats.cached
            totals.deduplicated += stats.deduplicated
            totals.memory_hits += stats.memory_hits
            totals.disk_hits += stats.disk_hits
            totals.elapsed += stats.elapsed
        payload = {
            "version": 1,
            "runs": [stats.as_dict() for stats in self.history],
            "totals": {
                k: v
                for k, v in totals.as_dict().items()
                if k != "profiles"
            },
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            json.dump(payload, fh, indent=2)
        return path

    def profile_report(self) -> str:
        """Human-readable per-task wall times and worker occupancy."""
        lines: List[str] = []
        for n, stats in enumerate(self.history):
            lines.append(f"run {n}: {stats.summary_line()}")
            for profile in sorted(
                stats.profiles, key=lambda p: p.wall, reverse=True
            ):
                lines.append(
                    f"  {profile.wall:8.3f}s  pid {profile.pid}  "
                    f"+{profile.started:.3f}s  {profile.label}"
                )
            occupancy = stats.worker_occupancy()
            if occupancy and stats.elapsed > 0:
                busy = ", ".join(
                    f"pid {pid}: {seconds / stats.elapsed:.0%}"
                    for pid, seconds in sorted(occupancy.items())
                )
                lines.append(f"  occupancy: {busy}")
        return "\n".join(lines) if lines else "no sweeps recorded"


_DEFAULT: Optional[SweepRunner] = None

#: Sentinel for :func:`configure`'s ``cache_dir``: resolve via
#: :func:`default_cache_dir` (env override, else ``~/.cache/repro/sweeps``).
#: A unique object, not a string, so a real directory literally named
#: ``auto`` cannot collide with it.
AUTO_CACHE: object = object()


def default_runner() -> SweepRunner:
    """The process-wide runner the experiment harnesses share.

    Created lazily with the disk-backed :func:`default_cache_dir`, so CLI
    runs of the same grid reuse each other's points across sessions.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SweepRunner(cache_dir=default_cache_dir())
    return _DEFAULT


def configure(
    max_workers: Optional[int] = None,
    engine: Optional[str] = None,
    cache_dir: Union[None, str, Path, object] = AUTO_CACHE,
    chunk_size: Optional[int] = None,
    verbose: bool = False,
) -> SweepRunner:
    """Replace the shared runner (used by the CLI's ``--workers``,
    ``--engine``, ``--sweep-cache``, ``--chunk-size`` and ``--verbose``
    flags).

    ``cache_dir`` accepts a directory, ``None`` (no disk cache), or the
    default :data:`AUTO_CACHE` sentinel (resolve via
    :func:`default_cache_dir`).
    """
    global _DEFAULT
    if cache_dir is AUTO_CACHE:
        cache_dir = default_cache_dir()
    _DEFAULT = SweepRunner(
        max_workers=max_workers,
        engine=engine,
        cache_dir=cache_dir,
        chunk_size=chunk_size,
        verbose=verbose,
    )
    return _DEFAULT
