"""SLO frontier: online DPM policies vs. static thresholds across load.

The paper sweeps the idleness threshold *offline* and reads the trade-off
from the resulting curves; a real system has to pick its operating point
**online**, against a response-time service-level objective.  This
experiment maps that decision surface: for every load level it runs

* a grid of **static thresholds** (the paper's policy at several fixed
  operating points, ``dpm_policy="fixed"``),
* the **adaptive** policies (``adaptive_timeout``,
  ``exponential_predictive``) that steer per-disk thresholds from
  observed idle gaps, and
* the **SLO-feedback controller** (``slo_feedback``) at several p95
  targets — tightening thresholds to save power whenever the running P²
  percentile estimate shows slack, relaxing them on violation,

and reports each run's (power saving, p95 response) point: the frontier
a threshold controller navigates at run time.

``--dpm-ladder NAME`` adds a **multi-state ladder axis** (presets in
:data:`repro.disk.dpm.DPM_LADDERS`: ``two_state``, ``nap``, ``drpm4``):
every grid cell is re-run with ``StorageConfig(dpm_ladder=NAME)`` — the
static thresholds scale the ladder's descent schedule, the adaptive and
SLO-feedback policies steer it online — and the report compares the
ladder frontier against the two-state one.  The headline ladder check:
at least one ladder cell *beats the best two-state static threshold at
equal-or-better p95* (intermediate rungs buy power saving on
medium-length gaps that a single threshold must either idle through or
pay a full spin-up for).

``--scheduler NAME`` adds a **request-scheduler axis** (registry in
:mod:`repro.system.scheduling`: ``slack_defer``, ``batch_release``,
``spinup_coalesce``): every cell of the two-state grid is re-run with
``StorageConfig(scheduler=NAME)``, so arrivals are held back to lengthen
idle gaps and coalesce wake-ups.  ``slack_defer`` composes with the
feedback controller — it reads the controller's live percentile estimate
and stops deferring under SLO stress, and on the feedback cells it
inherits the cell's ``slo_target`` (without an explicit ``target`` param
it rides *only* on those cells).  The headline scheduler check: some
scheduled cell — the acceptance pair is ``slack_defer`` +
``slo_feedback`` — saves strictly more power than the best
scheduler-less cell at equal-or-better p95.

The workload deliberately spreads load (round-robin placement, small
files): under the paper's packed allocations the threshold is nearly
free — hot disks never idle, cold disks never wake (Figures 2-6 show
exactly that) — whereas spread traffic puts a real price on every
threshold choice, which is the regime where online control earns its
keep.  The headline check, reported in the notes: for at least one
(load, target) cell the feedback controller *meets* a p95 target that
every static threshold at equal-or-better power saving *misses* — the
static grid quantizes the frontier, the controller lands between its
points.

Every grid point dispatches through the shared
:class:`~repro.experiments.orchestrator.SweepRunner` (``--workers``,
``--engine fast`` and the cross-session disk cache apply; fingerprints
are salted with the DPM fields via the config dataclass).  Run from the
CLI with::

    python -m repro run slo-frontier --scale 0.25 --workers 4 --engine fast
    python -m repro run slo-frontier --dpm-policy slo_feedback --slo-target 18
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.disk.dpm import dpm_ladder_names
from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult, Stopwatch, scaled_duration
from repro.experiments.orchestrator import (
    InlineWorkload,
    SimTask,
    default_runner,
)
from repro.reporting.ascii_plot import ascii_plot
from repro.reporting.series import SeriesBundle
from repro.reporting.table import format_table
from repro.system.config import StorageConfig
from repro.system.runner import allocate
from repro.system.scheduling import (
    normalize_scheduler_params,
    request_scheduler_names,
)
from repro.units import MB
from repro.workload.generator import SyntheticWorkloadParams, generate_workload

__all__ = ["build_tasks", "run"]

#: Static thresholds swept (seconds): deliberately coarse — bracketing the
#: spec's ~53 s break-even without hitting it — so the quantization cost
#: of a static grid is visible next to the online controller.
DEFAULT_STATIC_THRESHOLDS = (15.0, 60.0, 240.0)

#: Arrival rates swept (req/s over the whole array).  Low rates over the
#: spread placement give every disk sparse traffic — the regime where the
#: threshold choice prices real power against real tail latency.
DEFAULT_RATES = (0.5, 1.0)

#: p95 response-time targets (seconds) handed to the feedback controller.
#: Chosen inside the contested band: above the no-spin-down tail, below
#: the spin-up-dominated tail of an aggressive threshold.
DEFAULT_SLO_TARGETS = (12.0, 18.0, 24.0)

#: Adaptive (target-free) policies included once per load level.
DEFAULT_DYNAMIC_POLICIES = ("adaptive_timeout", "exponential_predictive")


def build_tasks(
    scale: float,
    seed: int,
    rates: Sequence[float],
    static_thresholds: Sequence[float],
    slo_targets: Sequence[float],
    dynamic_policies: Sequence[str],
    num_disks: int,
    load_constraint: float,
    dpm_ladder: Optional[str] = None,
    scheduler: Optional[str] = None,
    scheduler_params=(),
):
    """The grid as :class:`SimTask` descriptions (shared with the bench).

    One workload per rate (shipped to pool workers once as an
    :class:`InlineWorkload`), mapped round-robin across the full pool;
    grid keys are ``(policy, rate, threshold_or_None, target_or_None,
    ladder_or_None, scheduler_or_None)``.  With ``dpm_ladder`` set, every
    cell is duplicated on the ladder axis (plus a ladder cell at the
    ladder's *native* descent schedule, ``threshold=None``).  With
    ``scheduler`` set, the *two-state* cells are duplicated on the
    request-scheduler axis (``slack_defer`` without an explicit
    ``target`` param rides only on the feedback cells, which feed it
    their ``slo_target``).
    """
    duration = scaled_duration(4_000.0, scale)
    # Decide ~10 times per run regardless of scale, with a floor so tiny
    # smoke runs still cross at least a few control boundaries.
    control_interval = max(50.0, duration / 10.0)
    base_cfg = StorageConfig(
        num_disks=num_disks,
        load_constraint=load_constraint,
        control_interval=control_interval,
    )

    tasks = []
    ladders: Sequence[Optional[str]] = (
        (None,) if dpm_ladder is None else (None, dpm_ladder)
    )
    # slack_defer needs a response-time target; without an explicit
    # `target` param only the feedback cells (whose slo_target feeds it
    # at reset) can carry it.
    sched_needs_target = scheduler == "slack_defer" and "target" not in dict(
        normalize_scheduler_params(scheduler_params)
    )
    for rate in rates:
        wl = generate_workload(
            SyntheticWorkloadParams(
                n_files=max(2_000, int(20_000 * scale)),
                arrival_rate=rate,
                duration=duration,
                seed=seed,
                s_max=500 * MB,
                s_min=20 * MB,
            )
        )
        mapping = allocate(
            wl.catalog, "round_robin", base_cfg, rate, num_disks=num_disks
        ).mapping(wl.catalog.n)
        workload = InlineWorkload(
            sizes=wl.catalog.sizes,
            popularities=wl.catalog.popularities,
            times=wl.stream.times,
            file_ids=wl.stream.file_ids,
            duration=wl.stream.duration,
        )

        def add(label, config, key):
            tasks.append(
                SimTask(
                    label=label,
                    workload=workload,
                    config=config,
                    mapping=mapping,
                    num_disks=num_disks,
                    key=key,
                )
            )

        for ladder in ladders:
            # The scheduler axis rides only on the two-state grid — a
            # ladder x scheduler product would square the cell count for
            # a comparison neither headline check needs.
            scheds: Sequence[Optional[str]] = (
                (None,)
                if ladder is not None or scheduler is None
                else (None, scheduler)
            )
            cfg = (
                base_cfg if ladder is None
                else base_cfg.with_overrides(dpm_ladder=ladder)
            )
            tag = "" if ladder is None else f" [{ladder}]"
            for sched in scheds:
                if sched is None:
                    scfg, stag = cfg, tag
                else:
                    scfg = cfg.with_overrides(
                        scheduler=sched, scheduler_params=scheduler_params
                    )
                    stag = f"{tag} +{sched}"
                unfed = sched is not None and sched_needs_target
                if ladder is not None:
                    # The ladder's own envelope schedule, unscaled.
                    add(
                        f"fixed native{stag} R={rate:g}",
                        scfg,
                        ("fixed", rate, None, None, ladder, sched),
                    )
                if not unfed:
                    for threshold in static_thresholds:
                        add(
                            f"fixed th={threshold:g}{stag} R={rate:g}",
                            scfg.with_overrides(idleness_threshold=threshold),
                            ("fixed", rate, threshold, None, ladder, sched),
                        )
                    for policy in dynamic_policies:
                        add(
                            f"{policy}{stag} R={rate:g}",
                            scfg.with_overrides(dpm_policy=policy),
                            (policy, rate, None, None, ladder, sched),
                        )
                for target in slo_targets:
                    add(
                        f"slo_feedback p95<={target:g}s{stag} R={rate:g}",
                        scfg.with_overrides(
                            dpm_policy="slo_feedback",
                            slo_target=target,
                            slo_percentile=95.0,
                        ),
                        ("slo_feedback", rate, None, target, ladder, sched),
                    )
    return tasks


def _saving(result) -> float:
    return 1.0 - result.normalized_power_cost


def run(
    scale: float = 1.0,
    seed: int = 20090607,
    rates: Sequence[float] = DEFAULT_RATES,
    static_thresholds: Sequence[float] = DEFAULT_STATIC_THRESHOLDS,
    slo_targets: Sequence[float] = DEFAULT_SLO_TARGETS,
    dynamic_policies: Sequence[str] = DEFAULT_DYNAMIC_POLICIES,
    num_disks: int = 100,
    load_constraint: float = 0.6,
    dpm_policy: Optional[str] = None,
    slo_target: Optional[float] = None,
    dpm_ladder: Optional[str] = None,
    scheduler: Optional[str] = None,
    scheduler_params=(),
) -> ExperimentResult:
    """Sweep DPM policy x load x SLO target (x ladder); report the frontier.

    ``dpm_policy`` (the CLI's ``--dpm-policy``) restricts the dynamic
    policies to one name (``fixed`` keeps only the static grid);
    ``slo_target`` (``--slo-target``) restricts the feedback targets to
    one value; ``dpm_ladder`` (``--dpm-ladder``) duplicates the grid on a
    multi-state ladder axis and reports where the ladder beats the best
    two-state static threshold at equal-or-better p95; ``scheduler``
    (``--scheduler``) duplicates the two-state grid on a request-scheduler
    axis and reports where a scheduled cell strictly dominates the best
    scheduler-less cell at equal-or-better p95.
    """
    if dpm_ladder is not None and dpm_ladder not in dpm_ladder_names():
        raise ConfigError(
            f"unknown --dpm-ladder {dpm_ladder!r}; choose from "
            f"{dpm_ladder_names()}"
        )
    if scheduler is not None and scheduler not in request_scheduler_names():
        raise ConfigError(
            f"unknown --scheduler {scheduler!r}; choose from "
            f"{request_scheduler_names()}"
        )
    if scheduler == "fifo":
        # fifo is the baseline itself; a "+fifo" axis would duplicate
        # every cell bit-for-bit and report a vacuous comparison.
        raise ConfigError(
            "--scheduler fifo is the scheduler-less baseline; pick a "
            "deferring scheduler "
            f"{tuple(n for n in request_scheduler_names() if n != 'fifo')}"
        )
    if dpm_policy is not None:
        valid = ("fixed", "slo_feedback") + tuple(DEFAULT_DYNAMIC_POLICIES)
        if dpm_policy not in valid:
            raise ConfigError(
                f"unknown --dpm-policy {dpm_policy!r}; choose from {valid}"
            )
        if dpm_policy == "fixed":
            dynamic_policies, slo_targets = (), ()
        elif dpm_policy == "slo_feedback":
            dynamic_policies = ()
        else:
            dynamic_policies, slo_targets = (dpm_policy,), ()
    if slo_target is not None:
        if not slo_targets:
            raise ConfigError(
                "--slo-target only applies to the slo_feedback grid, "
                f"which --dpm-policy {dpm_policy!r} excludes"
            )
        slo_targets = (float(slo_target),)

    with Stopwatch() as timer:
        tasks = build_tasks(
            scale=scale,
            seed=seed,
            rates=rates,
            static_thresholds=static_thresholds,
            slo_targets=slo_targets,
            dynamic_policies=dynamic_policies,
            num_disks=num_disks,
            load_constraint=load_constraint,
            dpm_ladder=dpm_ladder,
            scheduler=scheduler,
            scheduler_params=scheduler_params,
        )
        by_key = default_runner().run_map(tasks)

        result = ExperimentResult(name="slo_frontier")
        demonstrations = []
        ladder_demonstrations = []
        scheduler_demonstrations = []
        for rate in rates:
            statics = {
                th: by_key[("fixed", rate, th, None, None, None)]
                for th in static_thresholds
            }

            bundle = SeriesBundle(
                title=f"SLO frontier at R={rate:g} (x=p95, y=power saving)",
                x_label="p95 response (s)",
                y_label="normalized power saving",
            )
            curves = {}
            rows = []

            #: (label, p95, saving) of scheduler-less two-state cells —
            #: the rival pool for the scheduler demonstration — and of
            #: the scheduled cells claiming to dominate them.
            plain_cells = []
            sched_cells = []

            def account(label, res, target=None, bucket=None):
                p95 = res.p95_response
                saving = _saving(res)
                if bucket is not None:
                    bucket.append((label, p95, saving))
                bundle.add(label, p95, saving)
                curves.setdefault(label.split(" ")[0], ([], []))
                xs, ys = curves[label.split(" ")[0]]
                xs.append(p95)
                ys.append(saving)
                met = "-" if target is None else (
                    "yes" if p95 <= target else "NO"
                )
                rows.append(
                    [
                        label,
                        f"{saving:.3f}",
                        f"{p95:.2f}",
                        f"{res.p99_response:.2f}",
                        f"{res.mean_response:.2f}",
                        res.spinups,
                        met,
                    ]
                )

            for th, res in statics.items():
                account(f"fixed th={th:g}", res, bucket=plain_cells)
            for policy in dynamic_policies:
                account(
                    policy,
                    by_key[(policy, rate, None, None, None, None)],
                    bucket=plain_cells,
                )
            ladder_cells = []
            if dpm_ladder is not None:
                for th in (None,) + tuple(static_thresholds):
                    res = by_key[("fixed", rate, th, None, dpm_ladder, None)]
                    label = (
                        f"fixed native [{dpm_ladder}]" if th is None
                        else f"fixed th={th:g} [{dpm_ladder}]"
                    )
                    account(label, res)
                    ladder_cells.append((label, res))
                for policy in dynamic_policies:
                    res = by_key[(policy, rate, None, None, dpm_ladder, None)]
                    account(f"{policy} [{dpm_ladder}]", res)
                    ladder_cells.append((f"{policy} [{dpm_ladder}]", res))
            if scheduler is not None:
                # Scheduled static/dynamic cells (absent when slack_defer
                # has no target to read outside the feedback cells).
                for th in static_thresholds:
                    res = by_key.get(
                        ("fixed", rate, th, None, None, scheduler)
                    )
                    if res is not None:
                        account(
                            f"fixed th={th:g} +{scheduler}",
                            res,
                            bucket=sched_cells,
                        )
                for policy in dynamic_policies:
                    res = by_key.get(
                        (policy, rate, None, None, None, scheduler)
                    )
                    if res is not None:
                        account(
                            f"{policy} +{scheduler}", res, bucket=sched_cells
                        )
            for target in slo_targets:
                fb = by_key[("slo_feedback", rate, None, target, None, None)]
                account(
                    f"slo_feedback p95<={target:g}",
                    fb,
                    target=target,
                    bucket=plain_cells,
                )
                if scheduler is not None:
                    sfb = by_key[
                        ("slo_feedback", rate, None, target, None, scheduler)
                    ]
                    account(
                        f"slo_feedback p95<={target:g} +{scheduler}",
                        sfb,
                        target=target,
                        bucket=sched_cells,
                    )

                # The headline comparison: does the controller meet a
                # target that every static threshold at equal-or-better
                # power saving misses?
                fb_saving = _saving(fb)
                met = fb.p95_response <= target
                rivals = [
                    (th, res)
                    for th, res in statics.items()
                    if _saving(res) >= fb_saving - 1e-12
                ]
                meeting = [
                    (_saving(res), th)
                    for th, res in statics.items()
                    if res.p95_response <= target
                ]
                best_static = max(meeting)[0] if meeting else math.nan
                if met and all(
                    res.p95_response > target for _, res in rivals
                ):
                    demonstrations.append(
                        f"R={rate:g}, p95<={target:g}s: slo_feedback meets "
                        f"the target at saving {fb_saving:.3f} while every "
                        f"static threshold with >= that saving misses it "
                        f"(best target-meeting static saves "
                        f"{best_static:.3f})"
                    )
                if dpm_ladder is not None:
                    lfb = by_key[
                        ("slo_feedback", rate, None, target, dpm_ladder, None)
                    ]
                    account(
                        f"slo_feedback p95<={target:g} [{dpm_ladder}]",
                        lfb,
                        target=target,
                    )

            # The ladder headline: a cell on the ladder frontier that
            # saves strictly more power than the *best* two-state static
            # threshold among those with equal-or-better p95 — the
            # intermediate rungs monetize the medium gaps a single
            # threshold cannot.
            if dpm_ladder is not None:
                for label, res in ladder_cells:
                    p95 = res.p95_response
                    saving = _saving(res)
                    rivals = [
                        (th, s)
                        for th, s in statics.items()
                        if s.p95_response <= p95 * 1.02 + 0.25
                    ]
                    if not rivals:
                        continue
                    best_th, best = max(
                        rivals, key=lambda pair: _saving(pair[1])
                    )
                    if saving > _saving(best) + 1e-9:
                        ladder_demonstrations.append(
                            f"R={rate:g}: {label} saves {saving:.3f} at "
                            f"p95={p95:.2f}s — beating the best two-state "
                            f"static at equal-or-better p95 (th={best_th:g}"
                            f", saving {_saving(best):.3f}, "
                            f"p95={best.p95_response:.2f}s)"
                        )

            # The scheduler headline: a scheduled cell that saves strictly
            # more power than the *best* scheduler-less cell among those
            # with equal-or-better p95 — held-back arrivals lengthen the
            # idle gaps and coalesce the wake-ups the baseline pays for
            # one at a time.
            if scheduler is not None:
                for label, p95, saving in sched_cells:
                    rivals = [
                        cell
                        for cell in plain_cells
                        if cell[1] <= p95 * 1.02 + 0.25
                    ]
                    if not rivals:
                        continue
                    best_label, best_p95, best_saving = max(
                        rivals, key=lambda cell: cell[2]
                    )
                    if saving > best_saving + 1e-9:
                        scheduler_demonstrations.append(
                            f"R={rate:g}: {label} saves {saving:.3f} at "
                            f"p95={p95:.2f}s — strictly dominating the best "
                            f"scheduler-less cell at equal-or-better p95 "
                            f"({best_label}, saving {best_saving:.3f}, "
                            f"p95={best_p95:.2f}s)"
                        )

            result.bundles[f"R_{rate:g}"] = bundle
            result.tables[f"R_{rate:g}"] = format_table(
                rows,
                headers=[
                    "policy", "saving", "p95", "p99", "mean", "spinups",
                    "SLO met",
                ],
                title=f"DPM policies at R={rate:g} req/s",
            )
            result.tables[f"R_{rate:g}_plot"] = ascii_plot(
                curves,
                title=f"power saving vs p95 at R={rate:g}",
                x_label="p95 response (s)",
                y_label="power saving",
                width=56,
                height=14,
            )

        if demonstrations:
            result.notes.append(
                "frontier demonstration: "
                + "; ".join(demonstrations)
            )
        elif slo_targets:
            result.notes.append(
                "no (rate, target) cell demonstrated the controller beating "
                "the static grid at this scale — try scale>=0.25"
            )
        if ladder_demonstrations:
            result.notes.append(
                "ladder frontier demonstration: "
                + "; ".join(ladder_demonstrations)
            )
        elif dpm_ladder is not None:
            result.notes.append(
                f"no cell showed the {dpm_ladder} ladder beating the best "
                "two-state static threshold at equal p95 at this scale — "
                "try scale>=0.25"
            )
        if scheduler_demonstrations:
            result.notes.append(
                "scheduler frontier demonstration: "
                + "; ".join(scheduler_demonstrations)
            )
        elif scheduler is not None:
            result.notes.append(
                f"no cell showed the {scheduler} scheduler dominating the "
                "best scheduler-less cell at equal-or-better p95 at this "
                "scale — try scale>=0.25"
            )
        result.notes.append(
            "spread (round_robin) placement on purpose: packed allocations "
            "make the threshold nearly free (Figs 2-6), spread traffic "
            "prices every choice — the regime where online DPM control "
            "matters"
        )
        result.notes.append(
            f"{len(tasks)} grid points dispatched through the shared "
            "SweepRunner (DPM-salted fingerprints, disk-cacheable); "
            "controlled runs carry per-interval threshold/percentile "
            "traces in result.extra['dpm']"
        )
    result.wall_seconds = timer.elapsed
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--dpm-policy", type=str, default=None)
    parser.add_argument("--slo-target", type=float, default=None)
    parser.add_argument("--dpm-ladder", type=str, default=None)
    parser.add_argument("--scheduler", type=str, default=None)
    args = parser.parse_args()
    print(
        run(
            scale=args.scale,
            dpm_policy=args.dpm_policy,
            slo_target=args.slo_target,
            dpm_ladder=args.dpm_ladder,
            scheduler=args.scheduler,
        ).to_text()
    )


if __name__ == "__main__":  # pragma: no cover
    main()
