"""Figure 5: power savings vs idleness threshold on the NERSC trace.

Paper's claims: Pack_Disk and Pack_Disk4 save ~85% of the always-spinning
cost *regardless of threshold* (their cold disks sleep through any
threshold), while RND's saving falls from ~90% at tiny thresholds to ~30%
at 2 h (its disks see just enough traffic that longer thresholds keep them
spinning).  The 16 GB LRU cache barely helps (hit ratio ~5.6%).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.trace_sweep import (
    CONFIG_NAMES,
    DEFAULT_THRESHOLD_HOURS,
    sweep_trace,
)
from repro.reporting.series import SeriesBundle

__all__ = ["run"]

PAPER_NOTE = (
    "paper: Pack_Disk(4) ~85% saving flat in threshold; RND falls from "
    "~90% to ~30% as the threshold grows; LRU adds little (Fig. 5)"
)


def run(
    scale: float = 1.0,
    seed: int = 20080531,
    threshold_hours: Sequence[float] = DEFAULT_THRESHOLD_HOURS,
    configs: Sequence[str] = CONFIG_NAMES,
) -> ExperimentResult:
    """Regenerate Figure 5's curves."""
    with Stopwatch() as timer:
        sweep = sweep_trace(threshold_hours, configs, scale, seed)
        bundle = SeriesBundle(
            title="Fig 5: power saving vs idleness threshold (NERSC trace)",
            x_label="idleness threshold (h)",
            y_label="power saving (fraction of always-spinning cost)",
        )
        for name in sweep.configs:
            for hours in sweep.threshold_hours:
                res = sweep.results[(name, hours)]
                bundle.add(name, hours, res.power_saving_normalized)

    result = ExperimentResult(
        name="fig5_idleness_power", wall_seconds=timer.elapsed
    )
    result.bundles["power_saving"] = bundle
    result.notes.append(PAPER_NOTE)
    result.notes.append(
        f"trace: {sweep.trace_stats['distinct_files']:.0f} files, "
        f"{sweep.trace_stats['requests']:.0f} requests, "
        f"{sweep.trace_stats['footprint_tb']:.1f} TB on "
        f"{sweep.num_disks} disks"
    )
    pack = bundle.series.get("Pack_Disk")
    rnd = bundle.series.get("RND")
    if pack and rnd:
        result.notes.append(
            f"measured: Pack_Disk saving spans "
            f"{min(pack.y):.2f}..{max(pack.y):.2f} (flat), RND spans "
            f"{min(rnd.y):.2f}..{max(rnd.y):.2f}"
        )
    cached = sweep.results.get(("Pack_Disk4+LRU", sweep.threshold_hours[0]))
    if cached is not None and cached.cache_stats is not None:
        result.notes.append(
            f"measured: LRU hit ratio {cached.cache_stats.hit_ratio:.3f} "
            "(paper: 0.056)"
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=20080531)
    args = parser.parse_args()
    print(run(scale=args.scale, seed=args.seed).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
