"""The shared NERSC-trace sweep behind Figures 5 and 6.

Five system configurations — RND, Pack_Disk, Pack_Disk4, RND+LRU,
Pack_Disk4+LRU — are replayed over the same synthesized 30-day trace for a
grid of idleness thresholds (0..2 h in the paper).  As in §5.1, the random
baseline packs into the *same number of disks* as Pack_Disks so the
comparison isolates placement quality, and power is normalized by the cost
of spinning all N disks with no power management.

Allocations are computed once up front (they are shared across thresholds);
the simulation grid itself runs through the shared
:class:`~repro.experiments.orchestrator.SweepRunner` for per-point caching
and optional multi-process fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.experiments.common import memoize_by_key
from repro.experiments.orchestrator import (
    InlineWorkload,
    SimTask,
    default_runner,
)
from repro.system.config import StorageConfig
from repro.system.metrics import SimulationResult
from repro.system.runner import allocate
from repro.units import GiB, HOUR
from repro.workload.nersc import NerscTraceParams, synthesize_nersc_trace

__all__ = ["TraceSweep", "sweep_trace", "DEFAULT_THRESHOLD_HOURS", "CONFIG_NAMES"]

DEFAULT_THRESHOLD_HOURS: Tuple[float, ...] = (0.05, 0.1, 0.25, 0.5, 1.0, 1.5, 2.0)

#: The five curves of Figures 5/6 (paper naming).
CONFIG_NAMES: Tuple[str, ...] = (
    "RND",
    "Pack_Disk",
    "Pack_Disk4",
    "RND+LRU",
    "Pack_Disk4+LRU",
)

_POLICY_OF = {
    "RND": ("random", None),
    "Pack_Disk": ("pack", None),
    "Pack_Disk4": ("pack_v4", None),
    "RND+LRU": ("random", "lru"),
    "Pack_Disk4+LRU": ("pack_v4", "lru"),
}


@dataclass
class TraceSweep:
    """Results of the five-config threshold grid over one trace."""

    threshold_hours: Tuple[float, ...]
    configs: Tuple[str, ...]
    results: Dict[Tuple[str, float], SimulationResult]
    num_disks: int
    trace_stats: Dict[str, float]


@memoize_by_key
def _sweep(
    memo_key, threshold_hours, configs, scale, seed, load_constraint,
    cache_bytes,
) -> TraceSweep:
    from repro.workload.nersc import nersc_statistics

    params = NerscTraceParams(seed=seed)
    if scale < 1.0:
        params = params.scaled(scale)
    trace = synthesize_nersc_trace(params)
    base_cfg = StorageConfig(load_constraint=load_constraint)
    rate = trace.mean_request_rate()

    # §5.1: random packs into the same number of disks as Pack_Disks.  The
    # grouped variant can need a disk or two more at small scales, so the
    # shared pool is the max over the packing family.
    by_policy = {}
    for name in configs:
        policy, _ = _POLICY_OF[name]
        if policy != "random" and policy not in by_policy:
            by_policy[policy] = allocate(trace.catalog, policy, base_cfg, rate)
    if "pack" not in by_policy:
        by_policy["pack"] = allocate(trace.catalog, "pack", base_cfg, rate)
    num_disks = max(a.num_disks for a in by_policy.values())
    if any(_POLICY_OF[name][0] == "random" for name in configs):
        by_policy["random"] = allocate(
            trace.catalog, "random", base_cfg, rate,
            rng=seed, num_disks=num_disks,
        )
    allocations = {name: by_policy[_POLICY_OF[name][0]] for name in configs}

    # One shared trace shipped inline; workers simulate prebuilt mappings so
    # every config sees the identical pool and placement (§5.1 comparison).
    inline = InlineWorkload(
        sizes=trace.catalog.sizes,
        popularities=trace.catalog.popularities,
        times=trace.stream.times,
        file_ids=trace.stream.file_ids,
        duration=trace.stream.duration,
    )
    # One dense mapping per config name, shared by every threshold's task
    # (mapping() walks all files in Python — build it once, not per point).
    mappings = {
        name: allocations[name].mapping(trace.catalog.n) for name in configs
    }
    tasks = []
    for hours in threshold_hours:
        for name in configs:
            _, cache = _POLICY_OF[name]
            cfg = base_cfg.with_overrides(
                num_disks=num_disks,
                idleness_threshold=hours * HOUR,
                cache_policy=cache,
                cache_capacity=cache_bytes,
            )
            tasks.append(
                SimTask(
                    label=f"{name} thr={hours:g}h",
                    workload=inline,
                    config=cfg,
                    mapping=mappings[name],
                    num_disks=num_disks,
                    key=(name, hours),
                )
            )
    results: Dict[Tuple[str, float], SimulationResult] = default_runner().run_map(
        tasks
    )
    return TraceSweep(
        threshold_hours=tuple(threshold_hours),
        configs=tuple(configs),
        results=results,
        num_disks=num_disks,
        trace_stats=nersc_statistics(trace),
    )


def sweep_trace(
    threshold_hours: Sequence[float] = DEFAULT_THRESHOLD_HOURS,
    configs: Sequence[str] = CONFIG_NAMES,
    scale: float = 1.0,
    seed: int = 20080531,
    load_constraint: float = 0.8,
    cache_bytes: float = 16 * GiB,
) -> TraceSweep:
    """Run (or fetch the memoized) trace sweep."""
    threshold_hours = tuple(float(h) for h in threshold_hours)
    configs = tuple(configs)
    for name in configs:
        if name not in _POLICY_OF:
            raise KeyError(f"unknown config {name!r}; choose from {CONFIG_NAMES}")
    key = (
        threshold_hours, configs, float(scale), int(seed),
        float(load_constraint), float(cache_bytes),
    )
    return _sweep(
        key, threshold_hours, configs, scale, seed, load_constraint,
        cache_bytes,
    )
