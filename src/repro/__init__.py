"""repro — reproduction of *Analysis of Trade-Off Between Power Saving and
Response Time in Disk Storage Systems* (Otoo, Rotem & Tsao, 2009).

The library has three layers:

* **core** (:mod:`repro.core`) — the paper's contribution: the
  ``Pack_Disks`` O(n log n) 2DVPP file-allocation algorithm, its grouped
  variant, the quadratic reference, baselines and bounds;
* **substrates** — a discrete-event simulation kernel (:mod:`repro.sim`),
  a disk power/performance model (:mod:`repro.disk`), workload generators
  and traces (:mod:`repro.workload`), and caches (:mod:`repro.cache`);
* **system & analysis** — the glued storage simulator
  (:mod:`repro.system`) and closed-form models (:mod:`repro.analysis`),
  plus experiment harnesses (:mod:`repro.experiments`) regenerating every
  figure and table of the paper.

Quickstart::

    from repro import (
        StorageConfig, SyntheticWorkloadParams, generate_workload, run_policy,
    )
    wl = generate_workload(SyntheticWorkloadParams(n_files=2000, arrival_rate=4))
    cfg = StorageConfig(num_disks=20, load_constraint=0.7)
    packed = run_policy(wl.catalog, wl.stream, "pack", cfg, arrival_rate=4)
    random_ = run_policy(wl.catalog, wl.stream, "random", cfg, arrival_rate=4)
    print(f"power saving: {packed.power_saving_vs(random_):.0%}")
"""

from repro.core import (
    Allocation,
    PackItem,
    PackedDisk,
    make_items,
    pack_disks,
    pack_disks_grouped,
    pack_disks_quadratic,
    random_allocation,
    rho_of,
)
from repro.disk import (
    DiskArray,
    DiskDrive,
    DiskSpec,
    DiskState,
    PowerModel,
    ST3500630AS,
    ServiceModel,
)
from repro.errors import (
    CapacityError,
    ConfigError,
    PackingError,
    ReproError,
    SimulationError,
    TraceFormatError,
)
from repro.sim import Environment
from repro.system import (
    ReorganizingRunner,
    SimulationResult,
    StorageConfig,
    StorageSystem,
    allocate,
    build_items,
    run_policy,
    simulate,
)
from repro.workload import (
    FileCatalog,
    NerscTraceParams,
    RequestStream,
    SyntheticWorkloadParams,
    Trace,
    generate_workload,
    synthesize_nersc_trace,
)

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "CapacityError",
    "ConfigError",
    "DiskArray",
    "DiskDrive",
    "DiskSpec",
    "DiskState",
    "Environment",
    "FileCatalog",
    "NerscTraceParams",
    "PackItem",
    "PackedDisk",
    "PackingError",
    "PowerModel",
    "ReorganizingRunner",
    "ReproError",
    "RequestStream",
    "ST3500630AS",
    "ServiceModel",
    "SimulationError",
    "SimulationResult",
    "StorageConfig",
    "StorageSystem",
    "SyntheticWorkloadParams",
    "Trace",
    "TraceFormatError",
    "allocate",
    "build_items",
    "generate_workload",
    "make_items",
    "pack_disks",
    "pack_disks_grouped",
    "pack_disks_quadratic",
    "random_allocation",
    "rho_of",
    "run_policy",
    "simulate",
    "synthesize_nersc_trace",
    "__version__",
]
