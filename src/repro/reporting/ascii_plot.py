"""Minimal terminal line plots, so examples can show figure shapes offline."""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    curves: Dict[str, Sequence],
    width: int = 64,
    height: int = 18,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``{label: (xs, ys)}`` as a character grid.

    Intended for quick shape inspection (monotonicity, crossovers) in the
    examples — not a plotting library.
    """
    points = []
    for idx, (label, (xs, ys)) in enumerate(curves.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in zip(xs, ys):
            if x == x and y == y and not math.isinf(y):
                points.append((float(x), float(y), marker))
    if not points:
        return "(no finite data)"

    x_min = min(p[0] for p in points)
    x_max = max(p[0] for p in points)
    y_min = min(p[1] for p in points)
    y_max = max(p[1] for p in points)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int((x - x_min) / (x_max - x_min) * (width - 1))
        row = int((y - y_min) / (y_max - y_min) * (height - 1))
        grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={label}"
        for i, label in enumerate(curves)
    )
    lines.append(f"{y_label} (top={y_max:.3g}, bottom={y_min:.3g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.3g} .. {x_max:.3g}")
    lines.append(f" {legend}")
    return "\n".join(lines)
