"""Named data series (one per plotted curve) with CSV export."""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.errors import ConfigError

__all__ = ["Series", "SeriesBundle"]


@dataclass
class Series:
    """One curve: y values over shared x values, like a gnuplot column."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def as_arrays(self) -> tuple:
        return np.asarray(self.x), np.asarray(self.y)

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class SeriesBundle:
    """All curves of one figure, exportable as a single CSV."""

    title: str
    x_label: str
    y_label: str
    series: Dict[str, Series] = field(default_factory=dict)

    def curve(self, label: str) -> Series:
        """Get (creating on first use) the named curve."""
        if label not in self.series:
            self.series[label] = Series(label)
        return self.series[label]

    def add(self, label: str, x: float, y: float) -> None:
        self.curve(label).add(x, y)

    def x_values(self) -> List[float]:
        """Union of all x values across curves, sorted."""
        xs = sorted({x for s in self.series.values() for x in s.x})
        return xs

    def rows(self) -> List[List[object]]:
        """Tabular view: one row per x, one column per curve."""
        labels = list(self.series)
        lookup = {
            label: dict(zip(s.x, s.y)) for label, s in self.series.items()
        }
        out: List[List[object]] = []
        for x in self.x_values():
            row: List[object] = [x]
            for label in labels:
                row.append(lookup[label].get(x, float("nan")))
            out.append(row)
        return out

    def headers(self) -> List[str]:
        return [self.x_label] + list(self.series)

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the tabular view to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow([f"# {self.title}"])
            writer.writerow(self.headers())
            writer.writerows(self.rows())

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "SeriesBundle":
        """Read back a bundle written by :meth:`to_csv`."""
        path = Path(path)
        with path.open("r", newline="") as fh:
            reader = csv.reader(fh)
            rows = list(reader)
        if len(rows) < 2 or not rows[0] or not rows[0][0].startswith("# "):
            raise ConfigError(f"{path} is not a SeriesBundle CSV")
        title = rows[0][0][2:]
        headers = rows[1]
        bundle = cls(title=title, x_label=headers[0], y_label="")
        for row in rows[2:]:
            if not row:
                continue
            x = float(row[0])
            for label, cell in zip(headers[1:], row[1:]):
                y = float(cell)
                if y == y:  # skip holes
                    bundle.add(label, x, y)
        return bundle
