"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["format_table"]


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Sequence[Any]],
    headers: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned ASCII table.

    >>> print(format_table([[1, 2.5]], headers=["a", "b"]))
    a | b
    --+----
    1 | 2.5
    """
    str_rows: List[List[str]] = [[_render(v) for v in row] for row in rows]
    if headers is not None:
        widths = [len(h) for h in headers]
    elif str_rows:
        widths = [0] * len(str_rows[0])
    else:
        widths = []
    for row in str_rows:
        for i, cell in enumerate(row):
            if i >= len(widths):
                widths.extend([0] * (i + 1 - len(widths)))
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    if headers is not None:
        lines.append(fmt_row(list(headers)))
        lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
