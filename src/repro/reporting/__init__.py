"""Result presentation: ASCII tables, data series with CSV export, and
terminal line plots used by the experiment harness and examples."""

from repro.reporting.ascii_plot import ascii_plot
from repro.reporting.series import Series, SeriesBundle
from repro.reporting.table import format_table

__all__ = ["Series", "SeriesBundle", "ascii_plot", "format_table"]
