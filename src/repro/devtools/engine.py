"""The ``reprolint`` engine: rule interfaces, suppressions, and the runner.

Two rule shapes exist:

* :class:`FileRule` — an AST pass over one file.  ``applies(ctx)`` scopes
  the rule by project-relative path (e.g. R004 only looks at simulation
  code) and ``check(ctx)`` yields :class:`Violation` objects.
* :class:`ProjectRule` — a whole-project invariant (the salt manifest,
  registry/test-grid parity) that runs **once** per invocation against
  the project root, regardless of which files were targeted.  Project
  rules must degrade gracefully: when an anchor file is absent (a test
  sandbox, a vendored subtree) the rule silently skips what it cannot
  see rather than erroring.

Suppressions are inline comments::

    np.random.seed(0)  # reprolint: disable=R001
    # reprolint: disable-file=R004   (anywhere in the file, whole file)

Multiple rule ids separate with commas.  Suppressions are parsed with
:mod:`tokenize`, so the marker inside a string literal does not count.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = [
    "FileContext",
    "FileRule",
    "Linter",
    "ProjectRule",
    "Suppressions",
    "Violation",
]

#: Pseudo-rule id attached to files the engine cannot parse at all.
PARSE_ERROR_ID = "E999"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(?P<file>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line: RULE-ID message``."""

    path: Path
    line: int
    rule_id: str
    message: str

    def render(self, base: Optional[Path] = None) -> str:
        path = self.path
        if base is not None:
            try:
                path = path.relative_to(base)
            except ValueError:
                pass
        return f"{path.as_posix()}:{self.line}: {self.rule_id} {self.message}"


class Suppressions:
    """Per-file ``# reprolint: disable[-file]=...`` markers."""

    def __init__(
        self,
        file_rules: Set[str],
        line_rules: Dict[int, Set[str]],
    ) -> None:
        self.file_rules = file_rules
        self.line_rules = line_rules

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        file_rules: Set[str] = set()
        line_rules: Dict[int, Set[str]] = {}
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Unparseable files surface as E999 elsewhere; no suppression
            # info is better than crashing the linter on them.
            return cls(set(), {})
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            rules.discard("")
            if match.group("file"):
                file_rules |= rules
            else:
                line_rules.setdefault(tok.start[0], set()).update(rules)
        return cls(file_rules, line_rules)

    def active(self, rule_id: str, line: int) -> bool:
        """Is ``rule_id`` suppressed at ``line``?"""
        if rule_id in self.file_rules:
            return True
        return rule_id in self.line_rules.get(line, set())


@dataclass
class FileContext:
    """Everything a :class:`FileRule` may consult about one file."""

    #: Absolute path on disk.
    path: Path
    #: Path relative to the project root (posix separators), or ``None``
    #: when the file lives outside the root — scoped rules then skip it.
    rel: Optional[str]
    tree: ast.AST
    source: str


class FileRule:
    """One AST pass over a single file."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError


class ProjectRule:
    """A whole-project invariant, run once per lint invocation."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, root: Path) -> Iterator[Violation]:
        raise NotImplementedError


def _iter_python_files(target: Path) -> Iterator[Path]:
    if target.is_dir():
        for path in sorted(target.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            yield path
    else:
        yield target


def dotted_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; ``None`` if the root isn't a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def maximal_attribute_chains(
    tree: ast.AST,
) -> Iterator["tuple[ast.Attribute, List[str]]"]:
    """Every outermost ``a.b.c`` attribute chain rooted at a plain name.

    "Maximal" means the node is not itself the ``.value`` of an enclosing
    attribute access, so ``np.random.default_rng`` yields one chain of
    three parts instead of also yielding the inner ``np.random``.
    """
    inner: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Attribute
        ):
            inner.add(id(node.value))
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and id(node) not in inner:
            chain = dotted_chain(node)
            if chain is not None:
                yield node, chain


class Linter:
    """Runs file rules over targets and project rules over the root."""

    def __init__(
        self,
        root: Path,
        file_rules: Optional[Sequence[FileRule]] = None,
        project_rules: Optional[Sequence[ProjectRule]] = None,
    ) -> None:
        # Imported lazily so engine.py stays importable from rules.py
        # without a circular import.
        from repro.devtools.rules import (
            default_file_rules,
            default_project_rules,
        )

        self.root = root.resolve()
        self.file_rules: List[FileRule] = list(
            default_file_rules() if file_rules is None else file_rules
        )
        self.project_rules: List[ProjectRule] = list(
            default_project_rules() if project_rules is None else project_rules
        )

    def select(self, rule_ids: Iterable[str]) -> "Linter":
        """Restrict to a subset of rule ids (the CLI's ``--select``)."""
        wanted = set(rule_ids)
        self.file_rules = [r for r in self.file_rules if r.rule_id in wanted]
        self.project_rules = [
            r for r in self.project_rules if r.rule_id in wanted
        ]
        return self

    def _relative(self, path: Path) -> Optional[str]:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return None

    def lint_file(self, path: Path) -> List[Violation]:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                Violation(
                    path=path.resolve(),
                    line=exc.lineno or 1,
                    rule_id=PARSE_ERROR_ID,
                    message=f"syntax error: {exc.msg}",
                )
            ]
        ctx = FileContext(
            path=path.resolve(),
            rel=self._relative(path),
            tree=tree,
            source=source,
        )
        found: List[Violation] = []
        for rule in self.file_rules:
            if rule.applies(ctx):
                found.extend(rule.check(ctx))
        return self._apply_suppressions(found, {ctx.path: source})

    def run(self, targets: Sequence[Path]) -> List[Violation]:
        """Lint every ``.py`` under the targets + project-wide invariants."""
        found: List[Violation] = []
        sources: Dict[Path, str] = {}
        for target in targets:
            for path in _iter_python_files(target):
                file_found = self.lint_file(path)
                found.extend(file_found)
        for rule in self.project_rules:
            found.extend(self._apply_suppressions(list(rule.check(self.root)), sources))
        found.sort(key=lambda v: (str(v.path), v.line, v.rule_id))
        return found

    def _apply_suppressions(
        self, found: List[Violation], sources: Dict[Path, str]
    ) -> List[Violation]:
        kept: List[Violation] = []
        cache: Dict[Path, Suppressions] = {}
        for violation in found:
            path = violation.path
            if path not in cache:
                source = sources.get(path)
                if source is None:
                    try:
                        source = path.read_text(encoding="utf-8")
                    except (OSError, UnicodeDecodeError):
                        source = ""
                if path.suffix == ".py":
                    cache[path] = Suppressions.scan(source)
                else:
                    cache[path] = Suppressions(set(), {})
            if not cache[path].active(violation.rule_id, violation.line):
                kept.append(violation)
        return kept
