"""``python -m repro.devtools.lint`` — run reprolint over files/dirs.

Usage::

    python -m repro.devtools.lint src/repro            # whole source tree
    python -m repro.devtools.lint src/repro/sim/engine.py
    python -m repro.devtools.lint --select R002 --root . src/repro
    python -m repro.devtools.lint --list-rules

Output is one ``path:line: RULE-ID message`` per finding, sorted; the
exit status is 0 when clean, 1 when anything fired.  The project root
(where the project-wide rules anchor: the salt manifest, the registries,
the test corpus) is discovered by walking up from the first target until
a ``pyproject.toml`` is found; ``--root`` overrides that, which is how
the fixture tests point the linter at sandbox trees.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.devtools.engine import Linter
from repro.devtools.rules import default_file_rules, default_project_rules


def discover_root(start: Path) -> Path:
    """Walk up from ``start`` to the nearest dir with a pyproject.toml."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return node


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "Project-specific static analysis: determinism, cache "
            "salting, cross-engine parity, chunked-view discipline."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        type=Path,
        help="files or directories to lint (directories recurse)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help=(
            "project root for the project-wide rules (default: walk up "
            "from the first target to the nearest pyproject.toml)"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE-ID",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def list_rules() -> str:
    lines: List[str] = []
    for rule in (*default_file_rules(), *default_project_rules()):
        lines.append(f"{rule.rule_id} {rule.name}: {rule.summary}")
    lines.sort()
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return 0

    if not args.targets:
        parser.error("no targets given (try: src/repro)")

    for target in args.targets:
        if not target.exists():
            parser.error(f"no such file or directory: {target}")

    root = (
        args.root.resolve()
        if args.root is not None
        else discover_root(args.targets[0])
    )

    linter = Linter(root)
    if args.select:
        selected = {
            rule_id.strip()
            for entry in args.select
            for rule_id in entry.split(",")
            if rule_id.strip()
        }
        linter.select(selected)

    violations = linter.run(args.targets)
    cwd = Path.cwd().resolve()
    for violation in violations:
        print(violation.render(base=cwd))
    if violations:
        count = len(violations)
        plural = "" if count == 1 else "s"
        print(f"reprolint: {count} finding{plural}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
