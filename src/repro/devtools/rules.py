"""The ``reprolint`` rule catalog (R001–R007).

Each rule encodes a contract this repo has already been burned by (see
the module docstring of :mod:`repro.devtools`): determinism (R001,
R004), fingerprint salting (R002), cross-engine parity (R003),
chunked-view discipline (R005), merged-percentile hygiene (R006), and
observer-protocol discipline (R007).

Rules are AST-only — nothing here imports simulator modules, so the
linter runs on trees that do not import (sandboxes, broken branches).
The one import beyond the engine is :mod:`repro.obs.hooks` (R007's
protocol vocabulary), which is dependency-free by design.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.engine import (
    FileContext,
    FileRule,
    ProjectRule,
    Violation,
    dotted_chain,
    maximal_attribute_chains,
)
from repro.obs.hooks import RunObserver

__all__ = [
    "NoUnseededRng",
    "FingerprintSaltCompleteness",
    "RegistryParityCoverage",
    "NoWallclockOrEnvInSim",
    "ChunkedViewDiscipline",
    "MergedPercentileGuard",
    "ObserverProtocolDiscipline",
    "default_file_rules",
    "default_project_rules",
]

#: The checked-in manifest R002 compares ``StorageConfig`` against.
SALT_MANIFEST = "src/repro/devtools/salt_manifest.json"

#: Where ``StorageConfig`` and ``RESULT_SCHEMA_VERSION`` live.
CONFIG_MODULE = "src/repro/system/config.py"
ORCHESTRATOR_MODULE = "src/repro/experiments/orchestrator.py"


def _in_tree(rel: Optional[str], prefixes: Sequence[str]) -> bool:
    if rel is None:
        return False
    return any(
        rel == p or rel.startswith(p.rstrip("/") + "/") for p in prefixes
    )


def _import_aliases(tree: ast.AST, module: str) -> Set[str]:
    """Local names bound to ``module`` via ``import``/``import .. as``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    names.add(alias.asname or module.split(".")[0])
    return names


def _from_import_aliases(
    tree: ast.AST, module: str, symbol: str
) -> Set[str]:
    """Local names bound via ``from module import symbol [as alias]``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module != module:
                continue
            for alias in node.names:
                if alias.name == symbol:
                    names.add(alias.asname or symbol)
    return names


class NoUnseededRng(FileRule):
    """R001: all randomness flows through seeded Generator streams.

    The differential harness (event vs fast at 1e-9) and the sweep cache
    both assume a config + seed pins the result bit-for-bit.  The stdlib
    ``random`` module and numpy's *global* RNG (``np.random.seed``,
    ``np.random.rand``, ...) are process-wide mutable state that breaks
    that.  Only the stream-constructor API is allowed: ``default_rng``,
    ``Generator``, ``SeedSequence``, and named bit generators.
    :mod:`repro.sim.rng` is the sanctioned wrapper and is exempt.
    """

    rule_id = "R001"
    name = "no-unseeded-rng"
    summary = (
        "bare `random` module or numpy global-state RNG outside "
        "repro.sim.rng"
    )

    #: ``np.random.<attr>`` accesses that are stream/constructor API, not
    #: global state.
    ALLOWED_NP_RANDOM = {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }

    EXEMPT = ("src/repro/sim/rng.py", "src/repro/devtools/")

    def applies(self, ctx: FileContext) -> bool:
        return _in_tree(ctx.rel, ["src/repro"]) and not _in_tree(
            ctx.rel, self.EXEMPT
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        tree = ctx.tree
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield Violation(
                            ctx.path,
                            node.lineno,
                            self.rule_id,
                            "stdlib `random` is process-global state; use "
                            "a seeded np.random.Generator "
                            "(repro.sim.rng)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield Violation(
                        ctx.path,
                        node.lineno,
                        self.rule_id,
                        "stdlib `random` is process-global state; use a "
                        "seeded np.random.Generator (repro.sim.rng)",
                    )

        numpy_names = _import_aliases(tree, "numpy")
        npr_names = _import_aliases(tree, "numpy.random")
        npr_names |= _from_import_aliases(tree, "numpy", "random")
        for node, chain in maximal_attribute_chains(tree):
            attr: Optional[str] = None
            if (
                len(chain) >= 3
                and chain[0] in numpy_names
                and chain[1] == "random"
            ):
                attr = chain[2]
            elif len(chain) >= 2 and chain[0] in npr_names:
                attr = chain[1]
            elif (
                len(chain) == 2
                and chain[0] in numpy_names
                and chain[1] == "random"
            ):
                # A bare ``np.random`` reference (passed around as the
                # global-state module object).
                attr = ""
            if attr is None or attr in self.ALLOWED_NP_RANDOM:
                continue
            shown = f"np.random.{attr}" if attr else "np.random"
            yield Violation(
                ctx.path,
                node.lineno,
                self.rule_id,
                f"`{shown}` touches numpy's global RNG state; use a "
                "seeded np.random.Generator (repro.sim.rng)",
            )


def _storage_config_fields(tree: ast.AST) -> List[Tuple[str, int]]:
    """``(field, lineno)`` for each annotated field of StorageConfig."""
    fields: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "StorageConfig":
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.append((stmt.target.id, stmt.lineno))
    return fields


def _result_schema_version(tree: ast.AST) -> Optional[Tuple[int, int]]:
    """``(value, lineno)`` of the RESULT_SCHEMA_VERSION assignment."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "RESULT_SCHEMA_VERSION"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    return node.value.value, node.lineno
    return None


class FingerprintSaltCompleteness(ProjectRule):
    """R002: every ``StorageConfig`` field is pinned in the salt manifest.

    ``task_fingerprint`` pickles the whole config dataclass, so a *new*
    field does enter the digest — but whether that was intended has to be
    an explicit, reviewable act.  The manifest (`salt_manifest.json`)
    records the blessed field set and the ``RESULT_SCHEMA_VERSION`` it
    was blessed at; adding a field without updating both is exactly the
    stale-cache hazard PRs 4/6/7 handled by hand.
    """

    rule_id = "R002"
    name = "fingerprint-salt-completeness"
    summary = (
        "StorageConfig fields must match the salt manifest, and the "
        "manifest must pin the current RESULT_SCHEMA_VERSION"
    )

    def check(self, root: Path) -> Iterator[Violation]:
        config_path = root / CONFIG_MODULE
        manifest_path = root / SALT_MANIFEST
        orch_path = root / ORCHESTRATOR_MODULE
        if not config_path.is_file() or not manifest_path.is_file():
            # Sandbox / partial tree: nothing to anchor the check to.
            return
        try:
            config_tree = ast.parse(
                config_path.read_text(encoding="utf-8")
            )
        except SyntaxError:
            return
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            yield Violation(
                manifest_path,
                1,
                self.rule_id,
                "salt manifest is not valid JSON",
            )
            return
        manifest_fields = list(manifest.get("fields", []))
        fields = _storage_config_fields(config_tree)
        field_names = {name for name, _ in fields}
        for name, lineno in fields:
            if name not in manifest_fields:
                yield Violation(
                    config_path,
                    lineno,
                    self.rule_id,
                    f"StorageConfig.{name} is not listed in "
                    f"{SALT_MANIFEST}; new fields change task "
                    "fingerprints — add the field to the manifest and "
                    "bump RESULT_SCHEMA_VERSION",
                )
        for name in manifest_fields:
            if name not in field_names:
                yield Violation(
                    manifest_path,
                    1,
                    self.rule_id,
                    f"manifest lists {name!r} but StorageConfig has no "
                    "such field; remove the stale entry and bump "
                    "RESULT_SCHEMA_VERSION",
                )
        if orch_path.is_file():
            try:
                orch_tree = ast.parse(orch_path.read_text(encoding="utf-8"))
            except SyntaxError:
                return
            found = _result_schema_version(orch_tree)
            if found is not None:
                version, lineno = found
                pinned = manifest.get("schema_version")
                if pinned != version:
                    yield Violation(
                        orch_path,
                        lineno,
                        self.rule_id,
                        f"RESULT_SCHEMA_VERSION is {version} but "
                        f"{SALT_MANIFEST} pins schema_version="
                        f"{pinned!r}; re-bless the manifest when the "
                        "schema version moves",
                    )


#: (registry file, how names are declared, iterator function) per registry.
_REGISTRIES: Tuple[Tuple[str, str, str, str], ...] = (
    # (label, path, mode, iterator-fn). mode "decorated-class" collects
    # ``name = "..."`` class attrs from classes decorated with the
    # register_* decorator named in the file; mode "dict" collects string
    # keys of the module-level dict literal named by label.
    ("placement", "src/repro/system/placement.py", "decorated-class",
     "placement_policy_names"),
    ("scheduling", "src/repro/system/scheduling.py", "decorated-class",
     "request_scheduler_names"),
    ("dpm-policy", "src/repro/control/policies.py", "decorated-class",
     "dpm_policy_names"),
    ("DPM_LADDERS", "src/repro/disk/dpm.py", "dict",
     "dpm_ladder_names"),
    ("FLEETS", "src/repro/disk/fleet.py", "dict",
     "fleet_names"),
)

#: The test files/directories whose contents count as "covered by the
#: cross-engine grids".
_COVERAGE_CORPUS: Tuple[str, ...] = (
    "tests/differential",
    "tests/experiments/test_engine_smoke.py",
    "tests/control",
)


def _registered_names(
    tree: ast.AST, mode: str, label: str
) -> List[Tuple[str, int]]:
    names: List[Tuple[str, int]] = []
    if mode == "decorated-class":
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorated = any(
                (isinstance(d, ast.Name) and d.id.startswith("register_"))
                or (
                    isinstance(d, ast.Attribute)
                    and d.attr.startswith("register_")
                )
                for d in node.decorator_list
            )
            if not decorated:
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "name"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                    and stmt.value.value
                ):
                    names.append((stmt.value.value, stmt.lineno))
    elif mode == "dict":
        for node in ast.walk(tree):
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                if not (
                    len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == label
                ):
                    continue
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                if not (
                    isinstance(node.target, ast.Name)
                    and node.target.id == label
                ):
                    continue
                value = node.value
            if isinstance(value, ast.Dict):
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        names.append((key.value, key.lineno))
    return names


class RegistryParityCoverage(ProjectRule):
    """R003: every registered name is exercised by the parity grids.

    A placement policy, DPM policy, ladder preset, or fleet preset that
    is registered but never named in the cross-engine smoke/differential
    corpus ships without the event-vs-fast equivalence guarantee the rest
    of the registry enjoys.  A name counts as covered when its literal
    string appears in the corpus, or when the corpus calls the registry's
    iterator (``*_names()``) — the grids that iterate a whole registry
    cover every member by construction.
    """

    rule_id = "R003"
    name = "registry-parity-coverage"
    summary = (
        "registered placement/DPM/ladder/fleet names must appear in the "
        "cross-engine smoke/differential test grids"
    )

    def _corpus_tokens(self, root: Path) -> Tuple[Set[str], Set[str]]:
        """(string literals, referenced identifiers) across the corpus."""
        literals: Set[str] = set()
        identifiers: Set[str] = set()
        for entry in _COVERAGE_CORPUS:
            target = root / entry
            if target.is_dir():
                paths = sorted(target.rglob("*.py"))
            elif target.is_file():
                paths = [target]
            else:
                continue
            for path in paths:
                try:
                    tree = ast.parse(path.read_text(encoding="utf-8"))
                except (SyntaxError, UnicodeDecodeError, OSError):
                    continue
                for node in ast.walk(tree):
                    if isinstance(node, ast.Constant) and isinstance(
                        node.value, str
                    ):
                        literals.add(node.value)
                    elif isinstance(node, ast.Name):
                        identifiers.add(node.id)
                    elif isinstance(node, ast.Attribute):
                        identifiers.add(node.attr)
                    elif isinstance(node, ast.ImportFrom):
                        identifiers.update(
                            a.asname or a.name for a in node.names
                        )
        return literals, identifiers

    def check(self, root: Path) -> Iterator[Violation]:
        registry_paths = [
            (label, root / rel, mode, iterator)
            for label, rel, mode, iterator in _REGISTRIES
        ]
        if not any(path.is_file() for _, path, _, _ in registry_paths):
            return
        literals, identifiers = self._corpus_tokens(root)
        for label, path, mode, iterator in registry_paths:
            if not path.is_file():
                continue
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except SyntaxError:
                continue
            iterated = iterator in identifiers
            for name, lineno in _registered_names(tree, mode, label):
                if iterated or name in literals:
                    continue
                yield Violation(
                    path,
                    lineno,
                    self.rule_id,
                    f"{label} registry entry {name!r} never appears in "
                    "the cross-engine smoke/differential grids "
                    f"({', '.join(_COVERAGE_CORPUS)}); add it to a grid "
                    f"or iterate {iterator}() there",
                )


class NoWallclockOrEnvInSim(FileRule):
    """R004: simulation code reads neither wall clocks nor the environment.

    ``repro.sim`` / ``repro.disk`` / ``repro.system`` must be pure
    functions of (config, workload, seed) — a ``time.time()`` or
    ``os.environ`` read in a hot path silently couples results to the
    machine running them and invalidates both the differential harness
    and the sweep cache.  Benchmarks and the orchestrator (which *time*
    things and read env knobs deliberately) are outside this scope.
    """

    rule_id = "R004"
    name = "no-wallclock-or-env-in-sim"
    summary = (
        "time.time/datetime.now/os.environ reads inside "
        "repro.sim/repro.disk/repro.system"
    )

    SCOPE = ("src/repro/sim/", "src/repro/disk/", "src/repro/system/")

    #: Banned dotted accesses (first two components after alias
    #: resolution).
    BANNED_CHAINS = {
        ("time", "time"): "time.time()",
        ("time", "time_ns"): "time.time_ns()",
        ("time", "monotonic"): "time.monotonic()",
        ("time", "perf_counter"): "time.perf_counter()",
        ("datetime", "now"): "datetime.now()",
        ("datetime", "utcnow"): "datetime.utcnow()",
        ("datetime", "today"): "datetime.today()",
        ("os", "environ"): "os.environ",
        ("os", "getenv"): "os.getenv()",
    }

    def applies(self, ctx: FileContext) -> bool:
        return _in_tree(ctx.rel, self.SCOPE)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        tree = ctx.tree
        # Alias maps: local name -> canonical module key used in
        # BANNED_CHAINS.
        module_alias: Dict[str, str] = {}
        for module in ("time", "os", "datetime"):
            for alias in _import_aliases(tree, module):
                module_alias[alias] = module
        # ``from datetime import datetime`` makes the *class* available
        # under a local name; ``datetime.now`` etc. on it is banned.
        for alias in _from_import_aliases(tree, "datetime", "datetime"):
            module_alias[alias] = "datetime"

        # Direct ``from X import y`` of a banned symbol.
        from_imports: Dict[str, str] = {}
        for (module, symbol), shown in self.BANNED_CHAINS.items():
            if module == "datetime":
                continue  # `from datetime import now` is not a thing
            for alias in _from_import_aliases(tree, module, symbol):
                from_imports[alias] = shown

        for node, chain in maximal_attribute_chains(tree):
            if len(chain) < 2:
                continue
            module = module_alias.get(chain[0])
            if module is None:
                continue
            # datetime.datetime.now -> ("datetime", "now")
            parts = [p for p in chain[1:] if p != "datetime"]
            if not parts:
                continue
            shown = self.BANNED_CHAINS.get((module, parts[0]))
            if shown is not None:
                yield Violation(
                    ctx.path,
                    node.lineno,
                    self.rule_id,
                    f"`{shown}` in simulation code couples results to "
                    "the host; thread simulated time / explicit config "
                    "through instead",
                )
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and node.id in from_imports:
                if isinstance(node.ctx, ast.Load):
                    yield Violation(
                        ctx.path,
                        node.lineno,
                        self.rule_id,
                        f"`{from_imports[node.id]}` in simulation code "
                        "couples results to the host; thread simulated "
                        "time / explicit config through instead",
                    )


class _ChunkedUseVisitor(ast.NodeVisitor):
    """Per-function tracker for R005 (see ChunkedViewDiscipline)."""

    BANNED_ATTRS = ("times", "file_ids")

    def __init__(self, path: Path, rule_id: str) -> None:
        self.path = path
        self.rule_id = rule_id
        self.violations: List[Violation] = []

    # -- entry point ---------------------------------------------------
    def run(self, func: ast.AST) -> List[Violation]:
        body = getattr(func, "body", [])
        self._scan_block(body, set())
        return self.violations

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _hasattr_guard(test: ast.expr) -> Optional[Tuple[str, str, bool]]:
        """Decompose ``[not] hasattr(x, "attr")`` -> (x, attr, negated)."""
        negated = False
        node = test
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            negated = True
            node = node.operand
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hasattr"
            and len(node.args) == 2
            and isinstance(node.args[0], ast.Name)
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            return node.args[0].id, node.args[1].value, negated
        return None

    def _flag_reads(self, node: ast.AST, chunked: Set[str]) -> None:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Attribute)
                and sub.attr in self.BANNED_ATTRS
                and isinstance(sub.value, ast.Name)
                and sub.value.id in chunked
            ):
                self.violations.append(
                    Violation(
                        self.path,
                        sub.lineno,
                        self.rule_id,
                        f"`.{sub.attr}` read on `{sub.value.id}`, which "
                        "this scope established is a chunked stream; "
                        "consume it via iter_chunks() — chunked views "
                        "deliberately hide dense arrays",
                    )
                )

    def _track_assign(self, stmt: ast.stmt, chunked: Set[str]) -> None:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            return
        is_chunked_value = (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("chunks", "iter_chunks")
        )
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if is_chunked_value:
                chunked.add(target.id)
            else:
                # Rebinding a tracked name to something else clears it.
                chunked.discard(target.id)

    def _scan_block(self, body: List[ast.stmt], chunked: Set[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.If):
                guard = self._hasattr_guard(stmt.test)
                self._flag_reads(stmt.test, chunked)
                body_set = set(chunked)
                else_set = set(chunked)
                if guard is not None:
                    var, attr, negated = guard
                    if attr == "iter_chunks":
                        (else_set if negated else body_set).add(var)
                    elif attr in self.BANNED_ATTRS:
                        # ``hasattr(x, "times")`` means dense in the body
                        # and chunked in the orelse (and vice versa).
                        (body_set if negated else else_set).add(var)
                self._scan_block(stmt.body, body_set)
                self._scan_block(stmt.orelse, else_set)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._flag_reads(stmt, chunked)
                self._track_assign(stmt, chunked)
            elif isinstance(
                stmt, (ast.For, ast.While, ast.With, ast.Try)
            ):
                if isinstance(stmt, ast.While):
                    self._flag_reads(stmt.test, chunked)
                elif isinstance(stmt, ast.For):
                    self._flag_reads(stmt.iter, chunked)
                for sub_body in (
                    getattr(stmt, "body", []),
                    getattr(stmt, "orelse", []),
                    getattr(stmt, "finalbody", []),
                ):
                    self._scan_block(sub_body, chunked)
                for handler in getattr(stmt, "handlers", []):
                    self._scan_block(handler.body, chunked)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # Nested scopes are visited independently by the rule.
                continue
            else:
                self._flag_reads(stmt, chunked)


class ChunkedViewDiscipline(FileRule):
    """R005: no dense-array access on values known to be chunked streams.

    ``ChunkedStreamView`` deliberately has no ``.times`` / ``.file_ids``
    — an out-of-core stream cannot materialize them.  Engine code that
    guards ``hasattr(stream, "iter_chunks")`` (or takes the
    ``not hasattr(stream, "times")`` branch, or calls ``.chunks(...)``)
    and *then* reaches for the dense arrays would only blow up on a
    10^8-request run; this catches it at lint time.
    """

    rule_id = "R005"
    name = "chunked-view-discipline"
    summary = (
        "no .times/.file_ids access on values guarded as chunked "
        "streams in engine code"
    )

    SCOPE = ("src/repro/sim/", "src/repro/system/")

    def applies(self, ctx: FileContext) -> bool:
        return _in_tree(ctx.rel, self.SCOPE)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visitor = _ChunkedUseVisitor(ctx.path, self.rule_id)
                yield from visitor.run(node)


class MergedPercentileGuard(FileRule):
    """R006: merged ResponseStats percentiles are read only behind the marker.

    ``ResponseStats.merge`` cannot merge P² estimators, so it returns
    NaN percentiles and sets ``percentiles_lost``.  Experiment code that
    reads ``.p50/.p95/.p99`` (or calls ``.percentile(...)``) off a value
    it just merged, in a function that never consults
    ``percentiles_lost``, is publishing NaNs.
    """

    rule_id = "R006"
    name = "merged-percentile-guard"
    summary = (
        "p50/p95/p99 reads on ResponseStats.merge() results must check "
        "percentiles_lost"
    )

    PERCENTILE_ATTRS = ("p50", "p95", "p99")

    def applies(self, ctx: FileContext) -> bool:
        return _in_tree(ctx.rel, ["src/repro"]) and not _in_tree(
            ctx.rel,
            ["src/repro/system/metrics.py", "src/repro/devtools/"],
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            checks_marker = any(
                isinstance(node, ast.Attribute)
                and node.attr == "percentiles_lost"
                for node in ast.walk(func)
            )
            if checks_marker:
                continue
            merged: Set[str] = set()
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "merge"
                ):
                    chain = dotted_chain(node.value.func)
                    # Only *Stats.merge(...) / stats-ish merges; a generic
                    # dict merge should not trip the rule.
                    if chain is not None and not any(
                        "stats" in part.lower() or "Stats" in part
                        for part in chain
                    ):
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            merged.add(target.id)
            if not merged:
                continue
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in merged
                ):
                    if node.attr in self.PERCENTILE_ATTRS or (
                        node.attr == "percentile"
                    ):
                        yield Violation(
                            ctx.path,
                            node.lineno,
                            self.rule_id,
                            f"`.{node.attr}` read on merged ResponseStats "
                            f"`{node.value.id}` without checking "
                            "`percentiles_lost`; merged p50/p95/p99 are "
                            "NaN by contract",
                        )


class ObserverProtocolDiscipline(FileRule):
    """R007: sim-tree observability goes through ``repro.obs.hooks``.

    The simulation trees report what happened through exactly one
    channel: a :class:`~repro.obs.hooks.RunObserver` carrying *simulated*
    timestamps.  Three drift modes are caught here:

    * a ``print(...)`` call or a ``logging`` import in simulation code —
      ad-hoc console output bypasses the observer (and tempts wall-clock
      timestamps, which R004 bans for sim/disk/system and this rule's
      ``time`` check extends to control/cache);
    * an ``obs.on_*``/``observer.on_*`` call whose method is not part of
      the :class:`RunObserver` protocol — an emission the default no-op
      observer would crash on and the trace exporter would never see
      (the vocabulary is read off the class, so extending the protocol
      in ``hooks.py`` updates the rule automatically);
    * a wall-clock read (``time.time`` etc.) in the control/cache trees,
      which sit outside R004's scope but feed observer timestamps.
    """

    rule_id = "R007"
    name = "observer-protocol-discipline"
    summary = (
        "sim-tree observability must flow through repro.obs.hooks "
        "(no print/logging, no off-protocol on_* emissions, no "
        "wallclock timestamps)"
    )

    SCOPE = (
        "src/repro/sim/",
        "src/repro/disk/",
        "src/repro/system/",
        "src/repro/control/",
        "src/repro/cache/",
    )

    #: Trees R004 already polices for wall-clock reads; the ``time``
    #: check here only covers the remainder (control/cache).
    R004_SCOPE = ("src/repro/sim/", "src/repro/disk/", "src/repro/system/")

    #: The observer protocol, read off the class so hooks.py stays the
    #: single source of truth.
    PROTOCOL = frozenset(
        attr for attr in dir(RunObserver) if attr.startswith("on_")
    )

    #: Receiver names treated as observers when an ``on_*`` method is
    #: called on them (``obs.on_x``, ``self.observer.on_x``, ...).
    OBSERVER_NAMES = ("obs", "observer")

    WALLCLOCK_ATTRS = ("time", "time_ns", "monotonic", "perf_counter")

    def applies(self, ctx: FileContext) -> bool:
        return _in_tree(ctx.rel, self.SCOPE)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        tree = ctx.tree
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "logging" or alias.name.startswith(
                        "logging."
                    ):
                        yield Violation(
                            ctx.path,
                            node.lineno,
                            self.rule_id,
                            "`logging` in simulation code bypasses the "
                            "observer protocol; emit through a "
                            "repro.obs.hooks.RunObserver instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "logging" or (
                    node.module or ""
                ).startswith("logging."):
                    yield Violation(
                        ctx.path,
                        node.lineno,
                        self.rule_id,
                        "`logging` in simulation code bypasses the "
                        "observer protocol; emit through a "
                        "repro.obs.hooks.RunObserver instead",
                    )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                ):
                    yield Violation(
                        ctx.path,
                        node.lineno,
                        self.rule_id,
                        "`print(...)` in simulation code is ad-hoc "
                        "observability; emit through a "
                        "repro.obs.hooks.RunObserver instead",
                    )
                elif isinstance(node.func, ast.Attribute):
                    method = node.func.attr
                    if not method.startswith("on_"):
                        continue
                    chain = dotted_chain(node.func)
                    if chain is None or len(chain) < 2:
                        continue
                    receiver = chain[-2]
                    if (
                        receiver in self.OBSERVER_NAMES
                        and method not in self.PROTOCOL
                    ):
                        known = ", ".join(sorted(self.PROTOCOL))
                        yield Violation(
                            ctx.path,
                            node.lineno,
                            self.rule_id,
                            f"`.{method}(...)` is not part of the "
                            "RunObserver protocol (known hooks: "
                            f"{known}); extend repro.obs.hooks instead "
                            "of inventing emission methods",
                        )
        if not _in_tree(ctx.rel, self.R004_SCOPE):
            time_names = _import_aliases(tree, "time")
            for node, chain in maximal_attribute_chains(tree):
                if (
                    len(chain) >= 2
                    and chain[0] in time_names
                    and chain[1] in self.WALLCLOCK_ATTRS
                ):
                    yield Violation(
                        ctx.path,
                        node.lineno,
                        self.rule_id,
                        f"`time.{chain[1]}()` in simulation code: "
                        "observer events carry *simulated* timestamps; "
                        "wall-clock reads belong in the orchestrator "
                        "layer",
                    )


def default_file_rules() -> List[FileRule]:
    return [
        NoUnseededRng(),
        NoWallclockOrEnvInSim(),
        ChunkedViewDiscipline(),
        MergedPercentileGuard(),
        ObserverProtocolDiscipline(),
    ]


def default_project_rules() -> List[ProjectRule]:
    return [
        FingerprintSaltCompleteness(),
        RegistryParityCoverage(),
    ]
