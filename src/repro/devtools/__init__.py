"""Project-specific static analysis (``reprolint``).

The repo's correctness story rests on contracts that are invisible to a
generic linter but statically checkable:

* **determinism** — every stochastic draw flows through seeded
  :class:`numpy.random.Generator` streams (:mod:`repro.sim.rng`), never
  global RNG state, and simulation code never consults wall clocks or
  process environment;
* **cache salting** — every :class:`~repro.system.config.StorageConfig`
  field shapes :func:`~repro.experiments.orchestrator.task_fingerprint`,
  so each field must be listed in the checked-in salt manifest
  (``salt_manifest.json``) and semantic changes must bump
  ``RESULT_SCHEMA_VERSION``;
* **cross-engine parity** — everything registered (placement policies,
  DPM policies, ladder presets, fleet presets) must be exercised by the
  cross-engine differential/smoke grids;
* **chunked-view discipline** — engine code never reaches for dense
  ``.times``/``.file_ids`` arrays on a value it already knows is a
  chunked stream.

``python -m repro.devtools.lint src/repro`` runs the whole rule set (see
:mod:`repro.devtools.rules` for the rule catalog and
:mod:`repro.devtools.engine` for the AST-visitor machinery, inline
``# reprolint: disable=RULE-ID`` suppressions included).
"""

from repro.devtools.engine import (
    FileRule,
    Linter,
    ProjectRule,
    Suppressions,
    Violation,
)
from repro.devtools.rules import default_file_rules, default_project_rules

__all__ = [
    "FileRule",
    "Linter",
    "ProjectRule",
    "Suppressions",
    "Violation",
    "default_file_rules",
    "default_project_rules",
]
