"""Trace container and CSV persistence.

A trace bundles a :class:`~repro.workload.catalog.FileCatalog` with a
:class:`~repro.workload.arrivals.RequestStream` so real workload logs (like
the NERSC log the paper uses) can be fed to the simulator.  The on-disk
format is a single CSV with two sections::

    # trace: <name>
    # duration: <seconds>
    # files
    file_id,size_bytes
    0,188000000
    ...
    # requests
    time,file_id
    12.5,17
    ...

Popularities are reconstructed from empirical request counts (files never
requested get a uniform share of a tiny epsilon mass so the catalog stays a
valid distribution).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import TraceFormatError
from repro.workload.arrivals import RequestStream
from repro.workload.catalog import FileCatalog

__all__ = ["Trace", "load_trace_csv", "save_trace_csv"]


@dataclass
class Trace:
    """A named, replayable workload trace."""

    name: str
    catalog: FileCatalog
    stream: RequestStream

    def __post_init__(self) -> None:
        if self.stream.file_ids.size and (
            self.stream.file_ids.min() < 0
            or self.stream.file_ids.max() >= self.catalog.n
        ):
            raise TraceFormatError(
                "trace references file ids outside the catalog"
            )

    @property
    def n_files(self) -> int:
        return self.catalog.n

    @property
    def n_requests(self) -> int:
        return len(self.stream)

    def mean_request_rate(self) -> float:
        """Average arrivals per second over the trace horizon."""
        return self.stream.mean_rate

    @classmethod
    def from_requests(
        cls,
        name: str,
        sizes: np.ndarray,
        times: np.ndarray,
        file_ids: np.ndarray,
        duration: float,
    ) -> "Trace":
        """Build a trace from raw arrays, deriving popularities empirically."""
        sizes = np.asarray(sizes, dtype=float)
        file_ids = np.asarray(file_ids, dtype=np.int64)
        counts = np.bincount(file_ids, minlength=sizes.shape[0]).astype(float)
        if counts.shape[0] > sizes.shape[0]:
            raise TraceFormatError(
                "requests reference file ids outside the catalog"
            )
        total = counts.sum()
        if total <= 0:
            # Degenerate empty trace: uniform popularities.
            pops = np.full(sizes.shape[0], 1.0 / sizes.shape[0])
        else:
            # Give never-requested files a vanishing share to keep a valid
            # probability vector (they still occupy space when packing).
            eps = 1e-12
            pops = (counts + eps) / (total + eps * sizes.shape[0])
        catalog = FileCatalog(sizes=sizes, popularities=pops)
        stream = RequestStream(
            times=np.asarray(times, dtype=float),
            file_ids=file_ids,
            duration=float(duration),
        )
        return cls(name=name, catalog=catalog, stream=stream)


def save_trace_csv(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to the sectioned CSV format described above."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        fh.write(f"# trace: {trace.name}\n")
        fh.write(f"# duration: {trace.stream.duration!r}\n")
        fh.write("# files\n")
        writer = csv.writer(fh)
        writer.writerow(["file_id", "size_bytes"])
        for i, size in enumerate(trace.catalog.sizes):
            writer.writerow([i, repr(float(size))])
        fh.write("# requests\n")
        writer.writerow(["time", "file_id"])
        for t, f in zip(trace.stream.times, trace.stream.file_ids):
            writer.writerow([repr(float(t)), int(f)])


def load_trace_csv(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace_csv`.

    Raises
    ------
    TraceFormatError
        On any structural problem (missing sections, bad ids, unsorted
        times are reported through RequestStream/Trace validation).
    """
    path = Path(path)
    name = path.stem
    duration = None
    section = None
    sizes = {}
    times = []
    ids = []
    try:
        with path.open("r", newline="") as fh:
            for raw in fh:
                line = raw.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    tag = line[1:].strip()
                    if tag.startswith("trace:"):
                        name = tag.split(":", 1)[1].strip()
                    elif tag.startswith("duration:"):
                        duration = float(tag.split(":", 1)[1])
                    elif tag == "files":
                        section = "files"
                    elif tag == "requests":
                        section = "requests"
                    else:
                        raise TraceFormatError(f"unknown section marker {line!r}")
                    continue
                fields = next(csv.reader([line]))
                if fields[0] in ("file_id", "time"):
                    continue  # header row
                if section == "files":
                    if len(fields) != 2:
                        raise TraceFormatError(f"bad file row {line!r}")
                    sizes[int(fields[0])] = float(fields[1])
                elif section == "requests":
                    if len(fields) != 2:
                        raise TraceFormatError(f"bad request row {line!r}")
                    times.append(float(fields[0]))
                    ids.append(int(fields[1]))
                else:
                    raise TraceFormatError(
                        f"data row {line!r} before any section marker"
                    )
    except (ValueError, StopIteration) as exc:
        raise TraceFormatError(f"malformed trace file {path}: {exc}") from exc

    if not sizes:
        raise TraceFormatError(f"{path} contains no files section")
    n = max(sizes) + 1
    if sorted(sizes) != list(range(n)):
        raise TraceFormatError(f"{path} file ids are not dense 0..{n - 1}")
    size_arr = np.array([sizes[i] for i in range(n)], dtype=float)
    times_arr = np.array(times, dtype=float)
    ids_arr = np.array(ids, dtype=np.int64)
    if duration is None:
        duration = float(times_arr[-1]) if times_arr.size else 0.0
    return Trace.from_requests(name, size_arr, times_arr, ids_arr, duration)
