"""Trace container and CSV persistence.

A trace bundles a :class:`~repro.workload.catalog.FileCatalog` with a
:class:`~repro.workload.arrivals.RequestStream` so real workload logs (like
the NERSC log the paper uses) can be fed to the simulator.  The on-disk
format is a single CSV with two sections::

    # trace: <name>
    # duration: <seconds>
    # files
    file_id,size_bytes
    0,188000000
    ...
    # requests
    time,file_id
    12.5,17
    ...

Popularities are reconstructed from empirical request counts (files never
requested get a uniform share of a tiny epsilon mass so the catalog stays a
valid distribution).

Two readers exist: :func:`load_trace_csv` materializes the whole trace
(fine for the paper-scale logs), and :class:`ChunkedTraceStream` streams
the requests section in bounded chunks — the natural on-disk source for
out-of-core runs (see :mod:`repro.workload.chunked`).  Both validate
timestamp monotonicity and report violations with a paste-able
``path:line`` location.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from repro.errors import TraceFormatError
from repro.workload.arrivals import RequestStream
from repro.workload.catalog import FileCatalog

__all__ = ["ChunkedTraceStream", "Trace", "load_trace_csv", "save_trace_csv"]


@dataclass
class Trace:
    """A named, replayable workload trace."""

    name: str
    catalog: FileCatalog
    stream: RequestStream

    def __post_init__(self) -> None:
        if self.stream.file_ids.size and (
            self.stream.file_ids.min() < 0
            or self.stream.file_ids.max() >= self.catalog.n
        ):
            raise TraceFormatError(
                "trace references file ids outside the catalog"
            )

    @property
    def n_files(self) -> int:
        return self.catalog.n

    @property
    def n_requests(self) -> int:
        return len(self.stream)

    def mean_request_rate(self) -> float:
        """Average arrivals per second over the trace horizon."""
        return self.stream.mean_rate

    @classmethod
    def from_requests(
        cls,
        name: str,
        sizes: np.ndarray,
        times: np.ndarray,
        file_ids: np.ndarray,
        duration: float,
    ) -> "Trace":
        """Build a trace from raw arrays, deriving popularities empirically."""
        sizes = np.asarray(sizes, dtype=float)
        file_ids = np.asarray(file_ids, dtype=np.int64)
        counts = np.bincount(file_ids, minlength=sizes.shape[0]).astype(float)
        if counts.shape[0] > sizes.shape[0]:
            raise TraceFormatError(
                "requests reference file ids outside the catalog"
            )
        total = counts.sum()
        if total <= 0:
            # Degenerate empty trace: uniform popularities.
            pops = np.full(sizes.shape[0], 1.0 / sizes.shape[0])
        else:
            # Give never-requested files a vanishing share to keep a valid
            # probability vector (they still occupy space when packing).
            eps = 1e-12
            pops = (counts + eps) / (total + eps * sizes.shape[0])
        catalog = FileCatalog(sizes=sizes, popularities=pops)
        stream = RequestStream(
            times=np.asarray(times, dtype=float),
            file_ids=file_ids,
            duration=float(duration),
        )
        return cls(name=name, catalog=catalog, stream=stream)


def save_trace_csv(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to the sectioned CSV format described above."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        fh.write(f"# trace: {trace.name}\n")
        fh.write(f"# duration: {trace.stream.duration!r}\n")
        fh.write("# files\n")
        writer = csv.writer(fh)
        writer.writerow(["file_id", "size_bytes"])
        for i, size in enumerate(trace.catalog.sizes):
            writer.writerow([i, repr(float(size))])
        fh.write("# requests\n")
        writer.writerow(["time", "file_id"])
        for t, f in zip(trace.stream.times, trace.stream.file_ids):
            writer.writerow([repr(float(t)), int(f)])


def _parse_trace_rows(path: Path) -> Iterator[tuple]:
    """Line-by-line parse of the sectioned CSV.

    Yields ``("name", lineno, str)``, ``("duration", lineno, float)``,
    ``("file", lineno, file_id, size)`` and ``("request", lineno, time,
    file_id)`` events; every structural error carries a paste-able
    ``path:line`` location.
    """
    section = None
    with path.open("r", newline="") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                tag = line[1:].strip()
                if tag.startswith("trace:"):
                    yield ("name", lineno, tag.split(":", 1)[1].strip())
                elif tag.startswith("duration:"):
                    try:
                        yield ("duration", lineno, float(tag.split(":", 1)[1]))
                    except ValueError as exc:
                        raise TraceFormatError(
                            f"{path}:{lineno}: bad duration header {line!r}"
                        ) from exc
                elif tag == "files":
                    section = "files"
                elif tag == "requests":
                    section = "requests"
                else:
                    raise TraceFormatError(
                        f"{path}:{lineno}: unknown section marker {line!r}"
                    )
                continue
            try:
                fields = next(csv.reader([line]))
            except StopIteration as exc:  # pragma: no cover - csv quirk
                raise TraceFormatError(
                    f"{path}:{lineno}: unparseable row {line!r}"
                ) from exc
            if fields[0] in ("file_id", "time"):
                continue  # header row
            if section == "files":
                if len(fields) != 2:
                    raise TraceFormatError(
                        f"{path}:{lineno}: bad file row {line!r}"
                    )
                try:
                    yield ("file", lineno, int(fields[0]), float(fields[1]))
                except ValueError as exc:
                    raise TraceFormatError(
                        f"{path}:{lineno}: bad file row {line!r}: {exc}"
                    ) from exc
            elif section == "requests":
                if len(fields) != 2:
                    raise TraceFormatError(
                        f"{path}:{lineno}: bad request row {line!r}"
                    )
                try:
                    yield ("request", lineno, float(fields[0]), int(fields[1]))
                except ValueError as exc:
                    raise TraceFormatError(
                        f"{path}:{lineno}: bad request row {line!r}: {exc}"
                    ) from exc
            else:
                raise TraceFormatError(
                    f"{path}:{lineno}: data row {line!r} before any "
                    "section marker"
                )


def load_trace_csv(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace_csv`.

    Raises
    ------
    TraceFormatError
        On any structural problem — including non-monotonic request times,
        reported with the offending ``path:line`` so the row can be found
        directly.
    """
    path = Path(path)
    name = path.stem
    duration = None
    sizes = {}
    times = []
    ids = []
    prev_t = None
    for event in _parse_trace_rows(path):
        kind = event[0]
        if kind == "name":
            name = event[2]
        elif kind == "duration":
            duration = event[2]
        elif kind == "file":
            sizes[event[2]] = event[3]
        else:  # request
            _, lineno, t, fid = event
            if prev_t is not None and t < prev_t:
                raise TraceFormatError(
                    f"{path}:{lineno}: request time {t!r} precedes previous "
                    f"time {prev_t!r} (times must be non-decreasing)"
                )
            prev_t = t
            times.append(t)
            ids.append(fid)

    if not sizes:
        raise TraceFormatError(f"{path} contains no files section")
    n = max(sizes) + 1
    if sorted(sizes) != list(range(n)):
        raise TraceFormatError(f"{path} file ids are not dense 0..{n - 1}")
    size_arr = np.array([sizes[i] for i in range(n)], dtype=float)
    times_arr = np.array(times, dtype=float)
    ids_arr = np.array(ids, dtype=np.int64)
    if duration is None:
        duration = float(times_arr[-1]) if times_arr.size else 0.0
    return Trace.from_requests(name, size_arr, times_arr, ids_arr, duration)


class ChunkedTraceStream:
    """Bounded-memory reader of the sectioned trace CSV.

    Implements the ``ChunkedStream`` protocol of
    :mod:`repro.workload.chunked`: the file catalog (O(n_files)) is parsed
    eagerly — including a full validating pre-pass over the requests
    section to derive empirical popularities, the horizon and the request
    count — while ``iter_chunks()`` re-reads the requests section in
    batches of ``chunk_size`` rows, so the request axis never materializes.
    Monotonicity is validated per chunk (and across chunk boundaries) with
    the offending ``path:line`` in the error.
    """

    def __init__(
        self, path: Union[str, Path], chunk_size: int = 100_000
    ) -> None:
        if not isinstance(chunk_size, int) or chunk_size < 1:
            raise TraceFormatError(
                f"chunk_size must be a positive integer, got {chunk_size!r}"
            )
        self.path = Path(path)
        self.chunk_size = chunk_size
        self.name = self.path.stem
        duration = None
        sizes = {}
        counts = {}
        n_requests = 0
        prev_t = None
        last_t = 0.0
        for event in _parse_trace_rows(self.path):
            kind = event[0]
            if kind == "name":
                self.name = event[2]
            elif kind == "duration":
                duration = event[2]
            elif kind == "file":
                sizes[event[2]] = event[3]
            else:  # request
                _, lineno, t, fid = event
                if prev_t is not None and t < prev_t:
                    raise TraceFormatError(
                        f"{self.path}:{lineno}: request time {t!r} precedes "
                        f"previous time {prev_t!r} (times must be "
                        "non-decreasing)"
                    )
                prev_t = t
                last_t = t
                counts[fid] = counts.get(fid, 0) + 1
                n_requests += 1
        if not sizes:
            raise TraceFormatError(f"{self.path} contains no files section")
        n = max(sizes) + 1
        if sorted(sizes) != list(range(n)):
            raise TraceFormatError(
                f"{self.path} file ids are not dense 0..{n - 1}"
            )
        if counts and max(counts) >= n:
            raise TraceFormatError(
                "trace references file ids outside the catalog"
            )
        size_arr = np.array([sizes[i] for i in range(n)], dtype=float)
        count_arr = np.zeros(n, dtype=float)
        for fid, c in counts.items():
            count_arr[fid] = c
        total = count_arr.sum()
        if total <= 0:
            pops = np.full(n, 1.0 / n)
        else:
            eps = 1e-12  # same convention as Trace.from_requests
            pops = (count_arr + eps) / (total + eps * n)
        self.catalog = FileCatalog(sizes=size_arr, popularities=pops)
        self.n_requests = n_requests
        self.duration = float(
            duration if duration is not None else last_t
        )

    def __len__(self) -> int:
        return self.n_requests

    @property
    def mean_rate(self) -> float:
        if not self.n_requests:
            return 0.0
        return (
            self.n_requests / self.duration
            if self.duration > 0
            else float("nan")
        )

    def iter_chunks(self) -> Iterator:
        from repro.workload.chunked import StreamChunk

        times = []
        ids = []
        prev_t = None
        for event in _parse_trace_rows(self.path):
            if event[0] != "request":
                continue
            _, lineno, t, fid = event
            if prev_t is not None and t < prev_t:
                raise TraceFormatError(
                    f"{self.path}:{lineno}: request time {t!r} precedes "
                    f"previous time {prev_t!r} (times must be non-decreasing)"
                )
            prev_t = t
            times.append(t)
            ids.append(fid)
            if len(times) >= self.chunk_size:
                yield StreamChunk(
                    times=np.array(times, dtype=float),
                    file_ids=np.array(ids, dtype=np.int64),
                )
                times, ids = [], []
        if times:
            yield StreamChunk(
                times=np.array(times, dtype=float),
                file_ids=np.array(ids, dtype=np.int64),
            )

    def __iter__(self):
        for chunk in self.iter_chunks():
            for t, f in zip(chunk.times, chunk.file_ids):
                yield float(t), int(f)
