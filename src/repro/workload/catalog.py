"""The file catalog: sizes and access probabilities of every file."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.disk.service import ServiceModel
from repro.errors import ConfigError
from repro.sim.rng import rng_from_seed
from repro.workload.zipf import PAPER_THETA, inverse_zipf_sizes, zipf_popularities

__all__ = ["FileCatalog"]


@dataclass
class FileCatalog:
    """Sizes (bytes) and popularities (summing to 1) of ``n`` files.

    File ``i`` is identified by its index.  Popularities are the
    steady-state probability that a random request targets the file.
    """

    sizes: np.ndarray
    popularities: np.ndarray

    def __post_init__(self) -> None:
        self.sizes = np.asarray(self.sizes, dtype=float)
        self.popularities = np.asarray(self.popularities, dtype=float)
        if self.sizes.ndim != 1 or self.sizes.shape != self.popularities.shape:
            raise ConfigError(
                "sizes and popularities must be equal-length 1-D arrays"
            )
        if self.n == 0:
            raise ConfigError("catalog must contain at least one file")
        if np.any(self.sizes < 0):
            raise ConfigError("file sizes must be non-negative")
        if np.any(self.popularities < 0):
            raise ConfigError("popularities must be non-negative")
        total = self.popularities.sum()
        if not np.isclose(total, 1.0, rtol=1e-6):
            raise ConfigError(
                f"popularities must sum to 1 (got {total:.6f}); "
                "normalize before constructing the catalog"
            )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_zipf(
        cls,
        n: int,
        theta: float = PAPER_THETA,
        s_max: float = 20e9,
        s_min: Optional[float] = None,
        correlation: str = "inverse",
        rng=None,
    ) -> "FileCatalog":
        """Build the paper's Table 1 catalog.

        Parameters
        ----------
        n, theta, s_max, s_min:
            See :mod:`repro.workload.zipf`.
        correlation:
            ``"inverse"`` — hot files are small (the paper's synthetic
            assumption); ``"none"`` — sizes shuffled independently of
            popularity (what the paper observed in the NERSC logs);
            ``"direct"`` — hot files are large (adversarial case).
        rng:
            Seed/generator for the ``"none"`` shuffle.
        """
        pops = zipf_popularities(n, theta)
        sizes = inverse_zipf_sizes(n, theta, s_max, s_min)
        if correlation == "inverse":
            pass
        elif correlation == "none":
            sizes = rng_from_seed(rng).permutation(sizes)
        elif correlation == "direct":
            sizes = sizes[::-1].copy()
        else:
            raise ConfigError(
                f"unknown correlation {correlation!r}; choose "
                "'inverse', 'none' or 'direct'"
            )
        return cls(sizes=sizes, popularities=pops)

    # -- accessors ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of files."""
        return int(self.sizes.shape[0])

    @property
    def total_bytes(self) -> float:
        """Sum of all file sizes."""
        return float(self.sizes.sum())

    @property
    def mean_size(self) -> float:
        """Unweighted mean file size."""
        return float(self.sizes.mean())

    @property
    def request_weighted_mean_size(self) -> float:
        """Mean size of a *requested* file (popularity-weighted)."""
        return float(np.dot(self.popularities, self.sizes))

    def loads(self, arrival_rate: float, service: ServiceModel) -> np.ndarray:
        """Absolute per-file loads ``l_i = R p_i f(s_i)``."""
        return service.loads(self.sizes, self.popularities, arrival_rate)

    def total_load(self, arrival_rate: float, service: ServiceModel) -> float:
        """Aggregate disk-time demand per second (lower bound on spinning disks)."""
        return float(self.loads(arrival_rate, service).sum())

    def min_disks_for_space(self, capacity: float) -> int:
        """Minimum disk count by raw storage (ignores loads)."""
        if capacity <= 0:
            raise ConfigError("capacity must be positive")
        return int(np.ceil(self.total_bytes / capacity))

    def size_popularity_correlation(self) -> float:
        """Pearson correlation between size and popularity (diagnostic)."""
        if self.n < 2:
            return float("nan")
        return float(np.corrcoef(self.sizes, self.popularities)[0, 1])
