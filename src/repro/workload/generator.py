"""The synthetic workload of the paper's Table 1."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.disk.service import ServiceModel
from repro.disk.specs import ST3500630AS, DiskSpec
from repro.errors import ConfigError
from repro.sim.rng import rng_from_seed
from repro.units import GB, MB, TB
from repro.workload.arrivals import RequestStream
from repro.workload.catalog import FileCatalog
from repro.workload.zipf import PAPER_THETA

__all__ = [
    "SyntheticWorkload",
    "SyntheticWorkloadParams",
    "generate_workload",
    "table1_summary",
]


@dataclass(frozen=True)
class SyntheticWorkloadParams:
    """Knobs of the Table 1 workload (defaults are the paper's values)."""

    n_files: int = 40_000
    theta: float = PAPER_THETA
    s_max: float = 20 * GB
    s_min: Optional[float] = 188 * MB
    arrival_rate: float = 6.0
    duration: float = 4_000.0
    correlation: str = "inverse"
    seed: Optional[int] = 20090525

    def __post_init__(self) -> None:
        if self.n_files < 1:
            raise ConfigError("n_files must be >= 1")
        if self.duration <= 0:
            raise ConfigError("duration must be positive")
        if self.arrival_rate < 0:
            raise ConfigError("arrival_rate must be >= 0")

    def scaled(self, scale: float) -> "SyntheticWorkloadParams":
        """Shrink the instance (file count) while preserving shapes.

        Arrival rate, duration, size range and skew are untouched so loads
        per disk and idleness behaviour stay comparable; only the file
        population (and hence the storage footprint) shrinks.
        """
        if not 0 < scale <= 1:
            raise ConfigError(f"scale must be in (0, 1], got {scale}")
        return SyntheticWorkloadParams(
            n_files=max(1, int(self.n_files * scale)),
            theta=self.theta,
            s_max=self.s_max,
            s_min=self.s_min,
            arrival_rate=self.arrival_rate,
            duration=self.duration,
            correlation=self.correlation,
            seed=self.seed,
        )


@dataclass
class SyntheticWorkload:
    """A generated (catalog, request stream) pair plus its parameters."""

    params: SyntheticWorkloadParams
    catalog: FileCatalog
    stream: RequestStream


def generate_workload(params: SyntheticWorkloadParams) -> SyntheticWorkload:
    """Generate the Table 1 workload: Zipf catalog + Poisson request stream."""
    rng = rng_from_seed(params.seed)
    catalog = FileCatalog.from_zipf(
        n=params.n_files,
        theta=params.theta,
        s_max=params.s_max,
        s_min=params.s_min,
        correlation=params.correlation,
        rng=rng,
    )
    stream = RequestStream.poisson(
        catalog.popularities,
        rate=params.arrival_rate,
        duration=params.duration,
        rng=rng,
    )
    return SyntheticWorkload(params=params, catalog=catalog, stream=stream)


def table1_summary(
    workload: SyntheticWorkload,
    spec: DiskSpec = ST3500630AS,
    num_disks: int = 100,
) -> Dict[str, str]:
    """Regenerate the rows of the paper's Table 1 from a generated workload."""
    p = workload.params
    cat = workload.catalog
    service = ServiceModel(spec)
    return {
        "n = Number of files": f"n = {cat.n}",
        "R = Expected request rate": (
            f"Poisson, expected value R = {p.arrival_rate:g} per second"
        ),
        "p_i = Access frequency": (
            f"Zipf-like, p_i = c/rank^(1-theta), theta = {p.theta:.4f} "
            f"(= log0.6/log0.4), c = 1/H_n^(1-theta)"
        ),
        "s_i = File size": (
            f"Inverse Zipf-like; minimum {cat.sizes.min() / MB:.0f} MB, "
            f"maximum {cat.sizes.max() / GB:.0f} GB"
        ),
        "l_i = Disk load of a file": "l_i = r_i * f(s_i), r_i = p_i * R",
        "Number of disks": f"{num_disks}",
        "Simulated time": f"{p.duration:.0f} sec",
        "Space requirement": f"{cat.total_bytes / TB:.2f} TB",
        "Total load (disk-seconds/sec)": (
            f"{cat.total_load(p.arrival_rate, service):.2f}"
        ),
        "Generated requests": f"{len(workload.stream)}",
    }
