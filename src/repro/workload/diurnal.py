"""Nonhomogeneous Poisson arrivals (diurnal load cycles).

Scientific data centers see strong day/night and weekday cycles; the
paper's §6 plans "additional workloads".  This module generates arrivals
from a time-varying rate function by **thinning** (Lewis & Shedler): draw
a homogeneous process at the peak rate, keep each point with probability
``rate(t) / peak``.  A ready-made sinusoidal day profile is included.

The semi-dynamic reorganization runner
(:class:`repro.system.runner.ReorganizingRunner`) pairs naturally with
these streams: epoch popularity estimates track the cycle.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.sim.rng import rng_from_seed
from repro.units import DAY
from repro.workload.arrivals import RequestStream, sample_file_ids

__all__ = ["diurnal_rate", "nonhomogeneous_stream", "thinned_arrival_times"]


def diurnal_rate(
    mean_rate: float,
    amplitude: float = 0.8,
    peak_hour: float = 14.0,
    period: float = DAY,
) -> Callable[[float], float]:
    """A sinusoidal day/night rate profile.

    ``rate(t) = mean * (1 + amplitude * cos(2*pi*(t - peak)/period))`` —
    peaks at ``peak_hour`` (simulation time 0 = midnight), never negative
    for ``amplitude <= 1``.
    """
    if mean_rate < 0:
        raise ConfigError("mean_rate must be >= 0")
    if not 0 <= amplitude <= 1:
        raise ConfigError("amplitude must be in [0, 1]")
    if period <= 0:
        raise ConfigError("period must be positive")
    peak = peak_hour * 3_600.0

    def rate(t: float) -> float:
        return mean_rate * (
            1.0 + amplitude * math.cos(2 * math.pi * (t - peak) / period)
        )

    return rate


def thinned_arrival_times(
    rate_fn: Callable[[float], float],
    peak_rate: float,
    duration: float,
    rng=None,
) -> np.ndarray:
    """Arrival times of the nonhomogeneous process on ``[0, duration)``.

    Parameters
    ----------
    rate_fn:
        Instantaneous rate (must satisfy ``0 <= rate_fn(t) <= peak_rate``).
    peak_rate:
        Dominating constant for the thinning proposal.
    duration:
        Horizon in seconds.
    """
    if peak_rate <= 0:
        raise ConfigError("peak_rate must be positive")
    if duration < 0:
        raise ConfigError("duration must be >= 0")
    rng = rng_from_seed(rng)
    n = int(rng.poisson(peak_rate * duration))
    times = rng.uniform(0.0, duration, size=n)
    times.sort()
    rates = np.array([rate_fn(t) for t in times])
    if np.any(rates > peak_rate * (1 + 1e-9)):
        raise ConfigError("rate_fn exceeds peak_rate; thinning is biased")
    if np.any(rates < 0):
        raise ConfigError("rate_fn must be non-negative")
    keep = rng.uniform(0.0, peak_rate, size=n) < rates
    return times[keep]


def nonhomogeneous_stream(
    popularities: np.ndarray,
    rate_fn: Callable[[float], float],
    peak_rate: float,
    duration: float,
    rng=None,
) -> RequestStream:
    """A :class:`RequestStream` with time-varying arrival intensity."""
    rng = rng_from_seed(rng)
    times = thinned_arrival_times(rate_fn, peak_rate, duration, rng)
    ids = sample_file_ids(popularities, times.size, rng)
    return RequestStream(times=times, file_ids=ids, duration=float(duration))
