"""Read/write mixed workloads (paper §6: "various mixes of read and write
requests").

Writes follow the paper's §1.1 energy-friendly policy at the dispatcher:
they are steered to an already-spinning disk with space when possible, and
their placement can be improved at the next reorganization.  This module
generates streams where a configurable fraction of requests are writes —
re-writes of existing files and appends of brand-new files (which enter the
catalog with zero popularity and an unallocated mapping slot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.disk.drive import READ, WRITE
from repro.errors import ConfigError
from repro.sim.rng import rng_from_seed
from repro.workload.arrivals import RequestStream
from repro.workload.catalog import FileCatalog

__all__ = ["MixedRequestStream", "MixedWorkloadParams", "generate_mixed_workload"]


@dataclass
class MixedRequestStream:
    """A request stream whose items carry a read/write kind.

    Iterates as ``(time, file_id, kind)``; the dispatcher's
    :func:`~repro.system.dispatcher.drive_stream` accepts both 2- and
    3-tuples, so this is a drop-in replacement for
    :class:`~repro.workload.arrivals.RequestStream`.
    """

    times: np.ndarray
    file_ids: np.ndarray
    kinds: np.ndarray  # array of "read"/"write" strings
    duration: float

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.file_ids = np.asarray(self.file_ids, dtype=np.int64)
        self.kinds = np.asarray(self.kinds)
        if not (
            self.times.shape == self.file_ids.shape == self.kinds.shape
        ):
            raise ConfigError("times, file_ids and kinds must align")
        if self.times.size and np.any(np.diff(self.times) < 0):
            raise ConfigError("request times must be non-decreasing")

    def __len__(self) -> int:
        return int(self.times.shape[0])

    def __iter__(self) -> Iterator[Tuple[float, int, str]]:
        for t, f, k in zip(self.times, self.file_ids, self.kinds):
            yield float(t), int(f), str(k)

    def chunks(self, chunk_size: int):
        """A chunked view of this stream (kinds included) — see
        :meth:`repro.workload.arrivals.RequestStream.chunks`."""
        from repro.workload.chunked import ChunkedStreamView

        return ChunkedStreamView(self, chunk_size)

    @property
    def mean_rate(self) -> float:
        """Empirical rate; ``0.0`` for empty streams (never ``NaN``),
        matching :attr:`repro.workload.arrivals.RequestStream.mean_rate`."""
        if not len(self):
            return 0.0
        return len(self) / self.duration if self.duration > 0 else float("nan")

    @property
    def write_fraction(self) -> float:
        if not len(self):
            return float("nan")
        return float(np.mean(self.kinds == WRITE))

    def reads_only(self) -> RequestStream:
        """Project out the reads as a plain RequestStream."""
        mask = self.kinds == READ
        return RequestStream(
            times=self.times[mask],
            file_ids=self.file_ids[mask],
            duration=self.duration,
        )


@dataclass(frozen=True)
class MixedWorkloadParams:
    """Knobs of the mixed read/write stream."""

    #: Fraction of requests that are writes.
    write_fraction: float = 0.2
    #: Of the writes, the fraction creating brand-new files (the rest
    #: rewrite existing ones in place).
    new_file_fraction: float = 0.5
    #: Size of newly written files is drawn from the existing catalog.
    arrival_rate: float = 1.0
    duration: float = 1_000.0
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if not 0 <= self.write_fraction <= 1:
            raise ConfigError("write_fraction must be in [0, 1]")
        if not 0 <= self.new_file_fraction <= 1:
            raise ConfigError("new_file_fraction must be in [0, 1]")
        if self.arrival_rate < 0 or self.duration <= 0:
            raise ConfigError("rate must be >= 0 and duration positive")


def generate_mixed_workload(
    catalog: FileCatalog, params: MixedWorkloadParams
) -> Tuple[FileCatalog, MixedRequestStream]:
    """Build a read/write stream over ``catalog``.

    Returns ``(extended_catalog, stream)``: the catalog gains one entry per
    new-file write (zero popularity — they are only written during this
    horizon), and the stream's file ids index the extended catalog.  Feed
    the extended catalog and a mapping with ``-1`` for the new files to the
    storage system; the dispatcher allocates them on first write.
    """
    rng = rng_from_seed(params.seed)
    n_existing = catalog.n

    count = int(rng.poisson(params.arrival_rate * params.duration))
    times = np.sort(rng.uniform(0.0, params.duration, size=count))
    is_write = rng.uniform(size=count) < params.write_fraction
    is_new = is_write & (rng.uniform(size=count) < params.new_file_fraction)

    n_new = int(is_new.sum())
    # New files take sizes resembling the existing population.
    new_sizes = rng.choice(catalog.sizes, size=n_new, replace=True)

    file_ids = np.empty(count, dtype=np.int64)
    old_mask = ~is_new
    file_ids[old_mask] = rng.choice(
        n_existing,
        size=int(old_mask.sum()),
        p=catalog.popularities / catalog.popularities.sum(),
    )
    file_ids[is_new] = n_existing + np.arange(n_new)

    kinds = np.where(is_write, WRITE, READ)

    if n_new:
        # Extended catalog: new files carry (practically) zero popularity.
        eps = 1e-15
        sizes = np.concatenate([catalog.sizes, new_sizes])
        pops = np.concatenate(
            [catalog.popularities, np.full(n_new, eps)]
        )
        pops = pops / pops.sum()
        extended = FileCatalog(sizes=sizes, popularities=pops)
    else:
        extended = catalog

    stream = MixedRequestStream(
        times=times, file_ids=file_ids, kinds=kinds,
        duration=params.duration,
    )
    return extended, stream
