"""NERSC-like trace synthesizer (paper §5.1).

The paper replays a 30-day log of file read requests collected at NERSC
(May 31 - Jun 29, 2008).  The log itself is not public, so this module
synthesizes a trace matching every statistic the paper reports:

* 88,631 distinct files, all of them requested (that is how "distinct files
  involved" is counted), 115,832 read requests over 30 days
  (mean arrival rate 0.0447/s);
* mean requested-file size 544 MB  => ~48 TB footprint => ~95-disk minimum;
* the file-size histogram over 80 bins falls almost linearly in log-log
  scale (Zipf-like sizes), achieved with a bounded power-law size
  distribution calibrated to the target mean;
* **no** correlation between a file's size and its access frequency
  (unlike the synthetic Table 1 workload);
* users fetch *batches* of similar-size files at once — the bursty pattern
  that motivates ``Pack_Disks_v`` — modelled as sessions that pick one size
  bin and request several of its files seconds apart;
* a minority of hot files is re-requested shortly after a previous access,
  giving a small LRU hit ratio (the paper measured 5.6% with 16 GB).

Every draw comes from one seeded generator: traces are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigError
from repro.sim.rng import rng_from_seed
from repro.units import DAY, GB, MB, TB
from repro.workload.trace import Trace

__all__ = ["NerscTraceParams", "nersc_statistics", "synthesize_nersc_trace"]


@dataclass(frozen=True)
class NerscTraceParams:
    """Calibration knobs; defaults reproduce the paper's published statistics."""

    n_files: int = 88_631
    n_requests: int = 115_832
    duration: float = 30 * DAY
    mean_size: float = 544 * MB
    min_size: float = 1 * MB
    max_size: float = 20 * GB
    size_bins: int = 80
    #: Fraction of the one-request-per-file base that arrives inside
    #: same-size-bin batch sessions.
    batch_fraction: float = 0.5
    #: Mean files per batch session (geometric, >= 2).
    batch_mean: int = 6
    #: Mean gap between requests inside one session (s).
    batch_spacing: float = 2.0
    #: Fraction of the repeat requests re-issued shortly after the previous
    #: access of the same file (drives the LRU hit ratio).
    repeat_locality: float = 0.35
    #: Mean delay of a local repeat (s).
    repeat_delay: float = 300.0
    #: Zipf exponent of the repeat-request popularity skew.
    repeat_exponent: float = 0.9
    seed: Optional[int] = 20080531

    def __post_init__(self) -> None:
        if self.n_requests < self.n_files:
            raise ConfigError(
                "n_requests must be >= n_files (every file is requested "
                "at least once)"
            )
        if not 0 < self.min_size < self.max_size:
            raise ConfigError("need 0 < min_size < max_size")
        if not self.min_size < self.mean_size < self.max_size:
            raise ConfigError("mean_size must lie inside (min_size, max_size)")
        if not 0 <= self.batch_fraction <= 1:
            raise ConfigError("batch_fraction must be in [0, 1]")
        if self.batch_mean < 2:
            raise ConfigError("batch_mean must be >= 2")
        if not 0 <= self.repeat_locality <= 1:
            raise ConfigError("repeat_locality must be in [0, 1]")
        if self.duration <= 0:
            raise ConfigError("duration must be positive")

    def scaled(self, scale: float) -> "NerscTraceParams":
        """Shrink file and request counts proportionally.

        The duration (and therefore the arrival sparsity per disk, since
        the disk pool shrinks with the footprint) is preserved, so idleness
        statistics — the quantity Figures 5/6 depend on — are comparable
        across scales.
        """
        if not 0 < scale <= 1:
            raise ConfigError(f"scale must be in (0, 1], got {scale}")
        n_files = max(10, int(self.n_files * scale))
        extra = self.n_requests - self.n_files
        return NerscTraceParams(
            n_files=n_files,
            n_requests=n_files + max(0, int(extra * scale)),
            duration=self.duration,
            mean_size=self.mean_size,
            min_size=self.min_size,
            max_size=self.max_size,
            size_bins=self.size_bins,
            batch_fraction=self.batch_fraction,
            batch_mean=self.batch_mean,
            batch_spacing=self.batch_spacing,
            repeat_locality=self.repeat_locality,
            repeat_delay=self.repeat_delay,
            repeat_exponent=self.repeat_exponent,
            seed=self.seed,
        )


def _bounded_powerlaw_mean(beta: float, lo: float, hi: float) -> float:
    """Mean of the density ``f(s) ~ s^-beta`` truncated to ``[lo, hi]``."""
    if abs(beta - 1.0) < 1e-9:
        norm = math.log(hi / lo)
        return (hi - lo) / norm
    if abs(beta - 2.0) < 1e-9:
        norm = (lo ** (-1.0) - hi ** (-1.0))
        return math.log(hi / lo) / norm
    a = 1.0 - beta
    b = 2.0 - beta
    norm = (hi**a - lo**a) / a
    first = (hi**b - lo**b) / b
    return first / norm


def calibrate_size_exponent(
    mean_size: float, min_size: float, max_size: float
) -> float:
    """Find the power-law exponent whose truncated mean hits ``mean_size``.

    The mean of a bounded power law is monotone decreasing in the exponent,
    so plain bisection converges.
    """
    lo_beta, hi_beta = 0.01, 5.0
    if not (
        _bounded_powerlaw_mean(hi_beta, min_size, max_size)
        <= mean_size
        <= _bounded_powerlaw_mean(lo_beta, min_size, max_size)
    ):
        raise ConfigError(
            f"target mean {mean_size:g} unreachable for size range "
            f"[{min_size:g}, {max_size:g}]"
        )
    for _ in range(200):
        mid = 0.5 * (lo_beta + hi_beta)
        if _bounded_powerlaw_mean(mid, min_size, max_size) > mean_size:
            lo_beta = mid
        else:
            hi_beta = mid
    return 0.5 * (lo_beta + hi_beta)


def _sample_bounded_powerlaw(
    beta: float, lo: float, hi: float, n: int, rng
) -> np.ndarray:
    """Inverse-CDF sampling of the truncated power law."""
    u = rng.uniform(size=n)
    if abs(beta - 1.0) < 1e-9:
        return lo * (hi / lo) ** u
    a = 1.0 - beta
    return (lo**a + u * (hi**a - lo**a)) ** (1.0 / a)


def _synthesize_base(
    params: NerscTraceParams, rng
) -> "tuple[np.ndarray, np.ndarray]":
    """The O(n_files) half of the synthesis: sizes + base arrival times.

    Returns ``(sizes, times)`` — one request per file, a
    ``batch_fraction`` of them inside same-size-bin batch sessions.
    Shared by :func:`synthesize_nersc_trace` and the chunked streaming
    variant (:class:`repro.workload.chunked.ChunkedNerscStream`); draw
    order is part of the contract (the monolithic trace is regression-
    pinned by seed).
    """
    n = params.n_files

    # --- file sizes: bounded power law hitting the target mean --------------
    beta = calibrate_size_exponent(
        params.mean_size, params.min_size, params.max_size
    )
    sizes = _sample_bounded_powerlaw(
        beta, params.min_size, params.max_size, n, rng
    )
    # The sample mean of a heavy-tailed draw is dominated by its largest
    # values and wanders several percent; rescale so the published mean
    # (and hence the ~95-disk footprint) is hit exactly.
    sizes *= params.mean_size / sizes.mean()

    # --- base requests: every file exactly once ------------------------------
    # A fraction arrives inside same-size-bin batch sessions, the rest at
    # independent uniform times.
    times = np.empty(n, dtype=float)
    in_session = np.zeros(n, dtype=bool)

    bin_edges = np.geomspace(params.min_size, params.max_size, params.size_bins + 1)
    bin_of = np.clip(
        np.searchsorted(bin_edges, sizes, side="right") - 1,
        0,
        params.size_bins - 1,
    )

    target_batch = int(params.batch_fraction * n)
    assigned = 0
    # Iterate bins in random order, carving sessions from each bin's files.
    order = rng.permutation(params.size_bins)
    for b in order:
        if assigned >= target_batch:
            break
        members = np.flatnonzero(bin_of == b)
        members = members[rng.permutation(members.size)]
        pos = 0
        while pos < members.size and assigned < target_batch:
            batch = 2 + rng.geometric(1.0 / max(1, params.batch_mean - 1))
            group = members[pos : pos + batch]
            pos += batch
            if group.size == 0:
                break
            start = rng.uniform(0.0, params.duration)
            gaps = rng.exponential(params.batch_spacing, size=group.size)
            t = np.minimum(start + np.cumsum(gaps), params.duration)
            times[group] = t
            in_session[group] = True
            assigned += group.size

    loose = ~in_session
    times[loose] = rng.uniform(0.0, params.duration, size=int(loose.sum()))
    return sizes, times


def synthesize_nersc_trace(params: NerscTraceParams = NerscTraceParams()) -> Trace:
    """Generate a NERSC-like trace per the module docstring."""
    rng = rng_from_seed(params.seed)
    n = params.n_files
    sizes, times = _synthesize_base(params, rng)

    # --- repeat requests: Zipf-skewed, partially temporally local ------------
    n_extra = params.n_requests - n
    ranks = rng.permutation(n) + 1  # random popularity order, size-independent
    weights = ranks.astype(float) ** (-params.repeat_exponent)
    weights /= weights.sum()
    extra_ids = rng.choice(n, size=n_extra, p=weights)
    local = rng.uniform(size=n_extra) < params.repeat_locality
    extra_times = np.where(
        local,
        np.minimum(
            times[extra_ids] + rng.exponential(params.repeat_delay, size=n_extra),
            params.duration,
        ),
        rng.uniform(0.0, params.duration, size=n_extra),
    )

    all_times = np.concatenate([times, extra_times])
    all_ids = np.concatenate([np.arange(n, dtype=np.int64), extra_ids])
    order = np.argsort(all_times, kind="stable")

    return Trace.from_requests(
        name="nersc-synthetic",
        sizes=sizes,
        times=all_times[order],
        file_ids=all_ids[order],
        duration=params.duration,
    )


def nersc_statistics(trace: Trace, disk_capacity: float = 500 * GB) -> Dict[str, float]:
    """Summary statistics in the units §5.1 reports them."""
    sizes = trace.catalog.sizes
    counts = np.bincount(trace.stream.file_ids, minlength=trace.catalog.n)
    return {
        "distinct_files": float(trace.n_files),
        "requests": float(trace.n_requests),
        "duration_days": trace.stream.duration / DAY,
        "mean_rate_per_sec": trace.mean_request_rate(),
        "mean_size_mb": float(sizes.mean() / MB),
        "footprint_tb": float(sizes.sum() / TB),
        "min_disks_for_space": float(
            math.ceil(sizes.sum() / disk_capacity)
        ),
        "max_requests_per_file": float(counts.max()),
        "size_frequency_correlation": float(
            np.corrcoef(sizes, counts)[0, 1]
        ),
    }
