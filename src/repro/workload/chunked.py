"""Chunked (out-of-core) workload streams.

The monolithic generators in this package materialize every arrival as one
NumPy array — fine for the paper's 10^5-10^7-request traces, impossible for
the datacenter-scale 10^8-10^9-request runs the roadmap targets.  This
module defines the **ChunkedStream protocol** the fast kernel streams over
in bounded memory, plus chunked constructors for each workload shape.

ChunkedStream protocol
----------------------
Any object with:

* ``duration`` — the simulation horizon in seconds (a plain float);
* ``iter_chunks()`` — an iterator of :class:`StreamChunk` batches whose
  ``times`` are sorted within each chunk and non-decreasing *across*
  chunks (the kernel validates both and reports violations).

Each ``iter_chunks()`` call must restart the stream from the beginning
(re-iterable): generators here re-seed a fresh RNG from a stored seed per
iteration, so the fast kernel, the event engine (which consumes the
per-request ``__iter__`` the classes also provide) and repeated runs all
see the identical request sequence.

Two kinds of chunked streams exist:

* :class:`ChunkedStreamView` — ``stream.chunks(n)`` on any array-backed
  :class:`~repro.workload.arrivals.RequestStream` /
  :class:`~repro.workload.mixed.MixedRequestStream`.  Slices of the same
  arrays: the chunked run is **bit-identical** to the monolithic one (the
  differential harness asserts this across chunk sizes).
* Windowed generators (:class:`ChunkedPoissonStream`,
  :class:`ChunkedDiurnalStream`, :class:`ChunkedNerscStream`,
  :class:`ChunkedMixedStream`) — the request process is synthesized one
  time-window at a time, so arbitrarily long horizons never materialize.
  These draw the *same process* as their monolithic counterparts (exact
  Poisson decompositions where possible, documented approximations for
  NERSC locality) but not the same sample path: seeds partition the
  horizon differently.

File sizes remain catalog-indexed: the simulator reads ``sizes[file_id]``
from the (in-memory, O(n_files)) catalog, so chunks carry sizes only as an
optional convenience (:meth:`StreamChunk.with_sizes`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

import numpy as np
import numpy.typing as npt

from repro.disk.drive import READ, WRITE
from repro.errors import ConfigError
from repro.workload.catalog import FileCatalog

if TYPE_CHECKING:
    from repro.workload.mixed import MixedWorkloadParams
    from repro.workload.nersc import NerscTraceParams

__all__ = [
    "ChunkedDiurnalStream",
    "ChunkedMixedStream",
    "ChunkedNerscStream",
    "ChunkedPoissonStream",
    "ChunkedStreamView",
    "StreamChunk",
    "generate_mixed_workload_chunked",
]

#: Default number of requests per generated chunk.
DEFAULT_CHUNK_SIZE = 262_144

#: Anything `np.random.SeedSequence` accepts as entropy.  A ready
#: `Generator` is rejected at runtime (see `_SeededStream`), so it appears
#: here only to give that check a precise error message.
SeedLike = Union[
    None, int, Sequence[int], "np.random.SeedSequence", "np.random.Generator"
]

#: One per-request tuple the event-engine adapter yields:
#: ``(time, file_id)`` or ``(time, file_id, kind)``.
RequestTuple = Union[Tuple[float, int], Tuple[float, int, str]]


class SupportsIterChunks(Protocol):
    """The ChunkedStream protocol's structural core (see module docstring)."""

    def iter_chunks(self) -> Iterator["StreamChunk"]: ...


class ArrayBackedStream(Protocol):
    """What :class:`ChunkedStreamView` needs from its parent stream."""

    duration: float

    @property
    def times(self) -> Any: ...

    @property
    def file_ids(self) -> Any: ...

    @property
    def mean_rate(self) -> float: ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[Any]: ...


@dataclass
class StreamChunk:
    """One sorted batch of arrivals: ``(timestamps, file_ids, sizes, kinds)``.

    ``kinds`` is ``None`` for read-only streams; ``sizes`` is optional
    (the kernel resolves sizes through the catalog — see module docstring).
    """

    times: npt.NDArray[np.float64]
    file_ids: npt.NDArray[np.int64]
    kinds: Optional[npt.NDArray[Any]] = None
    sizes: Optional[npt.NDArray[np.float64]] = None

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.file_ids = np.asarray(self.file_ids, dtype=np.int64)
        if self.times.ndim != 1 or self.times.shape != self.file_ids.shape:
            raise ConfigError("chunk times and file_ids must be equal-length 1-D")
        if self.kinds is not None:
            self.kinds = np.asarray(self.kinds)
            if self.kinds.shape != self.times.shape:
                raise ConfigError("chunk kinds must align with times")
        if self.sizes is not None:
            self.sizes = np.asarray(self.sizes, dtype=float)
            if self.sizes.shape != self.times.shape:
                raise ConfigError("chunk sizes must align with times")
        if self.times.size and np.any(np.diff(self.times) < 0):
            raise ConfigError("chunk times must be non-decreasing")

    def __len__(self) -> int:
        return int(self.times.shape[0])

    def with_sizes(self, catalog_sizes: npt.ArrayLike) -> "StreamChunk":
        """Copy of the chunk with ``sizes`` filled from a catalog array."""
        return replace(
            self, sizes=np.asarray(catalog_sizes, dtype=float)[self.file_ids]
        )


def _iter_requests(chunked: SupportsIterChunks) -> Iterator[RequestTuple]:
    """Per-request tuples from a chunked stream (event-engine adapter)."""
    for chunk in chunked.iter_chunks():
        if chunk.kinds is None:
            for t, f in zip(chunk.times, chunk.file_ids):
                yield float(t), int(f)
        else:
            for t, f, k in zip(chunk.times, chunk.file_ids, chunk.kinds):
                yield float(t), int(f), str(k)


def _check_chunk_size(chunk_size: "int | np.integer[Any]") -> int:
    if not isinstance(chunk_size, (int, np.integer)) or chunk_size < 1:
        raise ConfigError(
            f"chunk_size must be a positive integer, got {chunk_size!r}"
        )
    return int(chunk_size)


class _SeededStream:
    """Shared re-seeding machinery for the windowed generators."""

    def __init__(self, seed: SeedLike) -> None:
        if isinstance(seed, np.random.Generator):
            raise ConfigError(
                "chunked streams need a re-usable seed (int, SeedSequence or "
                "None), not a Generator: every iter_chunks() must replay the "
                "identical request sequence"
            )
        # Snapshot entropy now so seed=None is still deterministic across
        # repeated iterations of the *same* stream object.
        self._entropy = np.random.SeedSequence(seed).entropy

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(np.random.SeedSequence(self._entropy))

    def __iter__(self) -> Iterator[RequestTuple]:
        return _iter_requests(self)


class ChunkedStreamView:
    """Chunked view of an array-backed stream (``stream.chunks(n)``).

    Yields contiguous slices of the parent's arrays, so a chunked fast-kernel
    run over this view is bit-identical to the monolithic run over the
    parent.  Deliberately does **not** re-expose ``.times`` — that is how
    :meth:`repro.system.storage.StorageSystem.run` tells chunked streams
    apart from array-backed ones.
    """

    def __init__(self, stream: ArrayBackedStream, chunk_size: int) -> None:
        self.chunk_size = _check_chunk_size(chunk_size)
        self._stream = stream
        self.duration = float(stream.duration)

    def iter_chunks(self) -> Iterator[StreamChunk]:
        times = self._stream.times
        file_ids = self._stream.file_ids
        kinds = getattr(self._stream, "kinds", None)
        n = self.chunk_size
        for lo in range(0, int(times.shape[0]), n):
            yield StreamChunk(
                times=times[lo : lo + n],
                file_ids=file_ids[lo : lo + n],
                kinds=None if kinds is None else kinds[lo : lo + n],
            )

    def __len__(self) -> int:
        return len(self._stream)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._stream)

    @property
    def mean_rate(self) -> float:
        return self._stream.mean_rate


class ChunkedPoissonStream(_SeededStream):
    """Homogeneous Poisson arrivals synthesized window by window.

    Partitions ``[0, duration)`` into windows of ``~chunk_size`` expected
    arrivals and draws each window's count/placement independently — by the
    independent-increments property this *is* a Poisson process at ``rate``
    (not the same sample path as ``RequestStream.poisson``, which draws the
    whole horizon at once).  File ids are i.i.d. from ``popularities``.
    """

    def __init__(
        self,
        popularities: npt.ArrayLike,
        rate: float,
        duration: float,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if rate < 0:
            raise ConfigError(f"rate must be >= 0, got {rate}")
        if duration < 0:
            raise ConfigError(f"duration must be >= 0, got {duration}")
        self.chunk_size = _check_chunk_size(chunk_size)
        p = np.asarray(popularities, dtype=float)
        self._pop = p / p.sum()
        self.rate = float(rate)
        self.duration = float(duration)

    @property
    def mean_rate(self) -> float:
        return self.rate

    def _windows(self) -> Iterator[Tuple[float, float]]:
        if self.duration <= 0:
            return
        width = (
            self.chunk_size / self.rate if self.rate > 0 else self.duration
        )
        n_windows = max(1, int(math.ceil(self.duration / width)))
        edges = np.linspace(0.0, self.duration, n_windows + 1)
        for lo, hi in zip(edges[:-1], edges[1:]):
            yield float(lo), float(hi)

    def iter_chunks(self) -> Iterator[StreamChunk]:
        rng = self._rng()
        for lo, hi in self._windows():
            n = int(rng.poisson(self.rate * (hi - lo)))
            if not n:
                continue
            times = rng.uniform(lo, hi, size=n)
            times.sort()
            ids = rng.choice(self._pop.shape[0], size=n, p=self._pop)
            yield StreamChunk(times=times, file_ids=ids)


class ChunkedDiurnalStream(_SeededStream):
    """Nonhomogeneous (e.g. diurnal) Poisson arrivals, window by window.

    Windowed Lewis & Shedler thinning: each window draws a homogeneous
    proposal at ``peak_rate`` and keeps points with probability
    ``rate_fn(t)/peak_rate`` — again an exact decomposition of the
    nonhomogeneous process, so arbitrarily long diurnal horizons stream
    without ever materializing the proposal for the whole run.
    """

    def __init__(
        self,
        popularities: npt.ArrayLike,
        rate_fn: Callable[[float], float],
        peak_rate: float,
        duration: float,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if peak_rate <= 0:
            raise ConfigError("peak_rate must be positive")
        if duration < 0:
            raise ConfigError(f"duration must be >= 0, got {duration}")
        self.chunk_size = _check_chunk_size(chunk_size)
        p = np.asarray(popularities, dtype=float)
        self._pop = p / p.sum()
        self.rate_fn = rate_fn
        self.peak_rate = float(peak_rate)
        self.duration = float(duration)

    def iter_chunks(self) -> Iterator[StreamChunk]:
        rng = self._rng()
        if self.duration <= 0:
            return
        width = self.chunk_size / self.peak_rate
        n_windows = max(1, int(math.ceil(self.duration / width)))
        edges = np.linspace(0.0, self.duration, n_windows + 1)
        for lo, hi in zip(edges[:-1], edges[1:]):
            n = int(rng.poisson(self.peak_rate * (hi - lo)))
            if not n:
                continue
            times = rng.uniform(lo, hi, size=n)
            times.sort()
            rates = np.array([self.rate_fn(t) for t in times])
            if np.any(rates > self.peak_rate * (1 + 1e-9)):
                raise ConfigError("rate_fn exceeds peak_rate; thinning is biased")
            if np.any(rates < 0):
                raise ConfigError("rate_fn must be non-negative")
            keep = rng.uniform(0.0, self.peak_rate, size=n) < rates
            if not keep.any():
                continue
            times = times[keep]
            ids = rng.choice(self._pop.shape[0], size=times.size, p=self._pop)
            yield StreamChunk(times=times, file_ids=ids)


class ChunkedMixedStream(_SeededStream):
    """Windowed read/write mixed stream over a pre-planned extended catalog.

    Built by :func:`generate_mixed_workload_chunked`, which draws the
    new-file writes **up front** (their count, sizes and arrival times) so
    the extended catalog and the ``-1`` mapping slots exist before the
    simulation starts — first-touch allocation needs the catalog fixed.
    The remaining traffic (reads + rewrites of existing files) is an
    independent Poisson process by the splitting property, synthesized
    window by window and time-merged with the planned new-file writes.
    """

    def __init__(
        self,
        popularities: npt.ArrayLike,
        other_rate: float,
        rewrite_prob: float,
        new_times: npt.ArrayLike,
        first_new_id: int,
        duration: float,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        self.chunk_size = _check_chunk_size(chunk_size)
        p = np.asarray(popularities, dtype=float)
        self._pop = p / p.sum()
        self.other_rate = float(other_rate)
        self.rewrite_prob = float(rewrite_prob)
        self._new_times = np.asarray(new_times, dtype=float)
        self._first_new_id = int(first_new_id)
        self.duration = float(duration)

    @property
    def n_new_files(self) -> int:
        return int(self._new_times.size)

    def iter_chunks(self) -> Iterator[StreamChunk]:
        rng = self._rng()
        if self.duration <= 0:
            return
        total_rate = self.other_rate + self._new_times.size / max(
            self.duration, 1e-300
        )
        width = (
            self.chunk_size / total_rate if total_rate > 0 else self.duration
        )
        n_windows = max(1, int(math.ceil(self.duration / width)))
        edges = np.linspace(0.0, self.duration, n_windows + 1)
        for lo, hi in zip(edges[:-1], edges[1:]):
            n = int(rng.poisson(self.other_rate * (hi - lo)))
            times = rng.uniform(lo, hi, size=n)
            times.sort()
            ids = rng.choice(self._pop.shape[0], size=n, p=self._pop)
            kinds = np.where(
                rng.uniform(size=n) < self.rewrite_prob, WRITE, READ
            )
            # Merge the pre-planned new-file writes that land in this window.
            nlo = int(np.searchsorted(self._new_times, lo, side="left"))
            nhi = int(np.searchsorted(self._new_times, hi, side="left"))
            if nhi > nlo:
                new_t = self._new_times[nlo:nhi]
                new_ids = self._first_new_id + np.arange(
                    nlo, nhi, dtype=np.int64
                )
                times = np.concatenate([times, new_t])
                order = np.argsort(times, kind="stable")
                times = times[order]
                ids = np.concatenate([ids, new_ids])[order]
                kinds = np.concatenate(
                    [kinds, np.full(nhi - nlo, WRITE, dtype=kinds.dtype)]
                )[order]
            if times.size:
                yield StreamChunk(times=times, file_ids=ids, kinds=kinds)


def generate_mixed_workload_chunked(
    catalog: FileCatalog,
    params: "MixedWorkloadParams",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Tuple[FileCatalog, ChunkedMixedStream]:
    """Chunked analogue of
    :func:`repro.workload.mixed.generate_mixed_workload`.

    Returns ``(extended_catalog, stream)`` with the same contract: the
    catalog gains one (practically zero-popularity) entry per new-file
    write, and those files' mapping slots should start at ``-1`` so the
    write-placement policy allocates them on first touch.  The Poisson
    splitting is exact: new-file writes at rate ``R*wf*nf`` are drawn up
    front, everything else streams at rate ``R*(1-wf*nf)`` with rewrite
    probability ``wf*(1-nf)/(1-wf*nf)``.
    """
    from repro.sim.rng import rng_from_seed

    rng = rng_from_seed(params.seed)
    n_existing = catalog.n
    p_new = params.write_fraction * params.new_file_fraction
    n_new = int(rng.poisson(params.arrival_rate * p_new * params.duration))
    new_times = np.sort(rng.uniform(0.0, params.duration, size=n_new))
    new_sizes = rng.choice(catalog.sizes, size=n_new, replace=True)

    if n_new:
        eps = 1e-15
        sizes = np.concatenate([catalog.sizes, new_sizes])
        pops = np.concatenate([catalog.popularities, np.full(n_new, eps)])
        pops = pops / pops.sum()
        extended = FileCatalog(sizes=sizes, popularities=pops)
    else:
        extended = catalog

    other_rate = params.arrival_rate * (1.0 - p_new)
    rewrite_prob = (
        params.write_fraction * (1.0 - params.new_file_fraction) / (1.0 - p_new)
        if p_new < 1.0
        else 0.0
    )
    stream = ChunkedMixedStream(
        popularities=catalog.popularities,
        other_rate=other_rate,
        rewrite_prob=rewrite_prob,
        new_times=new_times,
        first_new_id=n_existing,
        duration=params.duration,
        chunk_size=chunk_size,
        seed=None if params.seed is None else params.seed + 1,
    )
    return extended, stream


class ChunkedNerscStream(_SeededStream):
    """Windowed streaming approximation of the NERSC-like trace.

    The monolithic synthesizer (:func:`repro.workload.nersc.synthesize_nersc_trace`)
    is inherently global — batch sessions are carved over the whole horizon
    and repeats reference base arrival times — but its memory is dominated
    by the *request* axis, not the file axis.  This class keeps the exact
    O(n_files) parts (the calibrated size catalog, the session-structured
    one-request-per-file base arrivals) in memory and streams the
    request-proportional part (the Zipf-skewed repeats) window by window.

    Approximation, documented: a "local" repeat re-requests its file at
    ``base_time + Exp(repeat_delay)`` only when that lands inside the
    current window; otherwise it degrades to a uniform in-window repeat.
    Aggregate statistics (size/popularity distributions, rate, session
    bursts) match the monolithic trace; the exact temporal-locality mass
    is slightly diluted for windows much shorter than ``repeat_delay``.
    """

    def __init__(
        self,
        params: "Optional[NerscTraceParams]" = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        from repro.workload.nersc import (
            NerscTraceParams,
            _synthesize_base,
        )

        params = params if params is not None else NerscTraceParams()
        super().__init__(params.seed)
        self.params = params
        self.chunk_size = _check_chunk_size(chunk_size)
        self.duration = float(params.duration)
        base_rng = np.random.default_rng(
            np.random.SeedSequence(self._entropy)
        )
        sizes, base_times = _synthesize_base(params, base_rng)
        order = np.argsort(base_times, kind="stable")
        self._base_times_sorted = base_times[order]
        self._base_ids_sorted = order.astype(np.int64)
        self._base_times_by_id = base_times
        ranks = base_rng.permutation(params.n_files) + 1
        weights = ranks.astype(float) ** (-params.repeat_exponent)
        self._repeat_weights = weights / weights.sum()
        expected = 1.0 + (
            params.n_requests - params.n_files
        ) * self._repeat_weights
        self.catalog = FileCatalog(
            sizes=sizes, popularities=expected / expected.sum()
        )

    def iter_chunks(self) -> Iterator[StreamChunk]:
        p = self.params
        # Independent stream for the per-window repeats (the base synthesis
        # consumed the head of the seed's stream in __init__).
        rng = np.random.default_rng(
            np.random.SeedSequence((self._entropy, 1))
        )
        n_extra = p.n_requests - p.n_files
        extra_rate = n_extra / self.duration if self.duration > 0 else 0.0
        total_rate = extra_rate + (
            p.n_files / self.duration if self.duration > 0 else 0.0
        )
        if self.duration <= 0:
            return
        width = (
            self.chunk_size / total_rate if total_rate > 0 else self.duration
        )
        n_windows = max(1, int(math.ceil(self.duration / width)))
        edges = np.linspace(0.0, self.duration, n_windows + 1)
        bt = self._base_times_sorted
        for lo, hi in zip(edges[:-1], edges[1:]):
            last = hi >= self.duration
            blo = int(np.searchsorted(bt, lo, side="left"))
            bhi = (
                bt.size if last else int(np.searchsorted(bt, hi, side="left"))
            )
            base_t = bt[blo:bhi]
            base_ids = self._base_ids_sorted[blo:bhi]
            n_rep = int(rng.poisson(extra_rate * (hi - lo)))
            rep_ids = rng.choice(
                p.n_files, size=n_rep, p=self._repeat_weights
            )
            rep_t = rng.uniform(lo, hi, size=n_rep)
            local = rng.uniform(size=n_rep) < p.repeat_locality
            if local.any():
                cand = self._base_times_by_id[rep_ids] + rng.exponential(
                    p.repeat_delay, size=n_rep
                )
                in_window = local & (cand >= lo) & (cand < hi)
                rep_t = np.where(in_window, cand, rep_t)
            times = np.concatenate([base_t, rep_t])
            ids = np.concatenate([base_ids, rep_ids])
            order = np.argsort(times, kind="stable")
            if times.size:
                yield StreamChunk(times=times[order], file_ids=ids[order])

    @property
    def mean_rate(self) -> float:
        return (
            self.params.n_requests / self.duration
            if self.duration > 0
            else 0.0
        )
