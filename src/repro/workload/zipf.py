"""Zipf-like distributions exactly as parameterized in the paper's Table 1.

Access frequency of the file with popularity rank ``r`` (1 = hottest):

.. math:: p_r = c \\, / \\, r^{1-\\theta}, \\qquad c = 1/H_n^{(1-\\theta)},
          \\qquad \\theta = \\log 0.6 / \\log 0.4

(``H_n^{(1-\\theta)}`` is the generalized harmonic number; the paper's
``c = 1 - H...`` is a typo — normalization requires the reciprocal).
``theta = log0.6/log0.4`` encodes a "60/40" skew: roughly 60% of accesses
target the most popular 40% of files.

File sizes follow the *inverse* Zipf-like distribution: the k-th *largest*
file has size ``s_max / k^{1-theta}``, and size rank is the reverse of
popularity rank (hot files are small).  With Table 1's n=40000 and
s_max=20 GB this makes the smallest (and hottest) file
``20 GB / 40000^{1-theta}`` ≈ 188 MB — Table 1's minimum — and the total
footprint ≈ 13 TB (the paper reports 12.86 TB).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "PAPER_THETA",
    "generalized_harmonic",
    "inverse_zipf_sizes",
    "zipf_popularities",
]

#: Table 1's theta = log 0.6 / log 0.4 (~0.5575).
PAPER_THETA = math.log(0.6) / math.log(0.4)


def generalized_harmonic(n: int, exponent: float) -> float:
    """``H_n^(exponent) = sum_{k=1..n} k^-exponent``."""
    if n < 0:
        raise ConfigError(f"n must be >= 0, got {n}")
    if n == 0:
        return 0.0
    return float(np.sum(np.arange(1, n + 1, dtype=float) ** (-exponent)))


def zipf_popularities(n: int, theta: float = PAPER_THETA) -> np.ndarray:
    """Access probabilities by popularity rank: ``p_r = c / r^(1-theta)``.

    Returns an array of length ``n`` summing to 1, descending.
    """
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    if not 0.0 <= theta < 1.0:
        raise ConfigError(f"theta must be in [0, 1), got {theta}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (theta - 1.0)
    return weights / weights.sum()


def inverse_zipf_sizes(
    n: int,
    theta: float = PAPER_THETA,
    s_max: float = 20e9,
    s_min: Optional[float] = None,
) -> np.ndarray:
    """File sizes by *popularity rank* under the inverse Zipf-like law.

    The popularity-rank-r file is the ``(n+1-r)``-th largest:
    ``size_r = s_max / (n+1-r)^(1-theta)``, so the hottest file is the
    smallest.  If ``s_min`` is given, sizes are clamped from below (Table 1
    lists a 188 MB minimum, which is the natural value for the default
    parameters anyway).

    Returns an array of length ``n`` aligned with
    :func:`zipf_popularities` (ascending sizes).
    """
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    if s_max <= 0:
        raise ConfigError(f"s_max must be positive, got {s_max}")
    if not 0.0 <= theta < 1.0:
        raise ConfigError(f"theta must be in [0, 1), got {theta}")
    size_rank = np.arange(n, 0, -1, dtype=float)  # rank r -> n+1-r
    sizes = s_max * size_rank ** (theta - 1.0)
    if s_min is not None:
        if s_min <= 0 or s_min > s_max:
            raise ConfigError(
                f"s_min must be in (0, s_max], got {s_min}"
            )
        np.maximum(sizes, s_min, out=sizes)
    return sizes
