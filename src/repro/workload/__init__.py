"""Workload substrate: Zipf-like distributions, file catalogs, Poisson
request streams, trace files, and the NERSC-like trace synthesizer.

The paper's synthetic workload (Table 1) has file access frequencies
following a Zipf-like distribution ``p_i = c / rank_i^(1-theta)`` with
``theta = log 0.6 / log 0.4`` (a 60/40 skew), file sizes following the
*inverse* Zipf-like distribution between 188 MB and 20 GB (the most popular
files are the smallest), and Poisson request arrivals at rate ``R``.
"""

from repro.workload.arrivals import RequestStream, poisson_arrival_times, sample_file_ids
from repro.workload.catalog import FileCatalog
from repro.workload.chunked import (
    ChunkedDiurnalStream,
    ChunkedMixedStream,
    ChunkedNerscStream,
    ChunkedPoissonStream,
    ChunkedStreamView,
    StreamChunk,
    generate_mixed_workload_chunked,
)
from repro.workload.generator import (
    SyntheticWorkload,
    SyntheticWorkloadParams,
    generate_workload,
    table1_summary,
)
from repro.workload.diurnal import (
    diurnal_rate,
    nonhomogeneous_stream,
    thinned_arrival_times,
)
from repro.workload.mixed import (
    MixedRequestStream,
    MixedWorkloadParams,
    generate_mixed_workload,
)
from repro.workload.nersc import NerscTraceParams, nersc_statistics, synthesize_nersc_trace
from repro.workload.trace import (
    ChunkedTraceStream,
    Trace,
    load_trace_csv,
    save_trace_csv,
)
from repro.workload.zipf import (
    PAPER_THETA,
    generalized_harmonic,
    inverse_zipf_sizes,
    zipf_popularities,
)

__all__ = [
    "ChunkedDiurnalStream",
    "ChunkedTraceStream",
    "ChunkedMixedStream",
    "ChunkedNerscStream",
    "ChunkedPoissonStream",
    "ChunkedStreamView",
    "StreamChunk",
    "generate_mixed_workload_chunked",
    "FileCatalog",
    "MixedRequestStream",
    "MixedWorkloadParams",
    "NerscTraceParams",
    "generate_mixed_workload",
    "PAPER_THETA",
    "RequestStream",
    "diurnal_rate",
    "nonhomogeneous_stream",
    "thinned_arrival_times",
    "SyntheticWorkload",
    "SyntheticWorkloadParams",
    "Trace",
    "generalized_harmonic",
    "generate_workload",
    "inverse_zipf_sizes",
    "load_trace_csv",
    "nersc_statistics",
    "poisson_arrival_times",
    "sample_file_ids",
    "save_trace_csv",
    "synthesize_nersc_trace",
    "table1_summary",
    "zipf_popularities",
]
