"""Request arrival processes and the request-stream container.

Arrivals are synthesized vectorized (single ``rng`` draws for the whole
stream) per the hpc-parallel guidance: no per-request Python-level RNG calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.sim.rng import rng_from_seed

__all__ = ["RequestStream", "poisson_arrival_times", "sample_file_ids"]


def poisson_arrival_times(rate: float, duration: float, rng=None) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on ``[0, duration)``.

    Draws ``N ~ Poisson(rate * duration)`` then places the N points
    uniformly (exactly equivalent to exponential gaps, but vectorized).
    """
    if rate < 0:
        raise ConfigError(f"rate must be >= 0, got {rate}")
    if duration < 0:
        raise ConfigError(f"duration must be >= 0, got {duration}")
    rng = rng_from_seed(rng)
    n = int(rng.poisson(rate * duration))
    times = rng.uniform(0.0, duration, size=n)
    times.sort()
    return times


def sample_file_ids(popularities: np.ndarray, count: int, rng=None) -> np.ndarray:
    """Draw ``count`` file indices i.i.d. from the popularity distribution."""
    if count < 0:
        raise ConfigError(f"count must be >= 0, got {count}")
    rng = rng_from_seed(rng)
    p = np.asarray(popularities, dtype=float)
    p = p / p.sum()
    return rng.choice(p.shape[0], size=count, p=p)


@dataclass
class RequestStream:
    """A time-ordered sequence of file requests.

    Attributes
    ----------
    times:
        Non-decreasing arrival times (s).
    file_ids:
        Requested file index per arrival.
    duration:
        Nominal stream horizon (>= last arrival); simulations run at least
        this long so trailing idleness is accounted.
    """

    times: np.ndarray
    file_ids: np.ndarray
    duration: float
    #: Fraction of the parent stream kept by :meth:`scaled` (``None`` for
    #: streams that were not produced by thinning).
    thinning_factor: Optional[float] = None

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.file_ids = np.asarray(self.file_ids, dtype=np.int64)
        if self.times.ndim != 1 or self.times.shape != self.file_ids.shape:
            raise ConfigError("times and file_ids must be equal-length 1-D arrays")
        if self.times.size and np.any(np.diff(self.times) < 0):
            raise ConfigError("request times must be non-decreasing")
        if self.times.size and self.times[0] < 0:
            raise ConfigError("request times must be non-negative")
        if self.duration < (self.times[-1] if self.times.size else 0.0):
            raise ConfigError(
                "stream duration must cover the last arrival "
                f"({self.duration} < {self.times[-1]})"
            )

    @classmethod
    def poisson(
        cls,
        popularities: np.ndarray,
        rate: float,
        duration: float,
        rng=None,
    ) -> "RequestStream":
        """Poisson arrivals at ``rate`` with i.i.d. Zipf file choice."""
        rng = rng_from_seed(rng)
        times = poisson_arrival_times(rate, duration, rng)
        ids = sample_file_ids(popularities, times.size, rng)
        return cls(times=times, file_ids=ids, duration=float(duration))

    @classmethod
    def merge(cls, streams: list) -> "RequestStream":
        """Merge several streams into one time-ordered stream.

        The result's ``thinning_factor`` is explicitly ``None``: inputs may
        carry different factors (or none), and a merged stream is no longer
        a thinning of any single parent, so the factor is cleared rather
        than propagated from an arbitrary input.
        """
        if not streams:
            raise ConfigError("cannot merge zero streams")
        times = np.concatenate([s.times for s in streams])
        ids = np.concatenate([s.file_ids for s in streams])
        order = np.argsort(times, kind="stable")
        duration = max(s.duration for s in streams)
        return cls(
            times=times[order],
            file_ids=ids[order],
            duration=duration,
            thinning_factor=None,
        )

    def __len__(self) -> int:
        return int(self.times.shape[0])

    def __iter__(self) -> Iterator[Tuple[float, int]]:
        for t, f in zip(self.times, self.file_ids):
            yield float(t), int(f)

    def chunks(self, chunk_size: int):
        """A chunked view of this stream (the ``ChunkedStream`` protocol).

        Slices of the same arrays, so a chunked fast-kernel run is
        bit-identical to the monolithic one.  See
        :mod:`repro.workload.chunked`.
        """
        # Local import: chunked builds on this module.
        from repro.workload.chunked import ChunkedStreamView

        return ChunkedStreamView(self, chunk_size)

    @property
    def mean_rate(self) -> float:
        """Empirical arrival rate over the stream horizon.

        An empty stream has rate ``0.0`` — even at ``duration == 0`` —
        so downstream ``allocate(rate=...)`` callers never see ``NaN``.
        A *non-empty* zero-duration stream (every arrival at t=0) has no
        finite empirical rate and stays ``nan``.
        """
        if len(self) == 0:
            return 0.0
        return len(self) / self.duration if self.duration > 0 else float("nan")

    def scaled(self, factor: float) -> "RequestStream":
        """Subsample a fraction ``factor`` of requests (horizon unchanged).

        Deterministic index-based thinning: ``round(len(self) * factor)``
        requests are kept at evenly spaced positions, so arbitrary factors
        are honored exactly (not just reciprocals of integers — ``0.4``
        keeps 40%, not the 50% a naive every-k-th step would).  The achieved
        fraction is recorded on the result as ``thinning_factor``; a factor
        too small to keep even one request raises
        :class:`~repro.errors.ConfigError`.

        Always returns a *fresh* stream with copied arrays — including at
        ``factor == 1.0``, which used to alias ``self`` and made mutations
        of the "scaled" stream silently corrupt the parent.
        """
        if not 0 < factor <= 1:
            raise ConfigError(f"factor must be in (0, 1], got {factor}")
        if factor == 1.0 or len(self) == 0:
            # Defensive copy, never self: callers may mutate the result.
            # A kept-everything stream records the factor it achieved
            # (1.0 — trivially exact for the empty stream too).
            return RequestStream(
                times=self.times.copy(),
                file_ids=self.file_ids.copy(),
                duration=self.duration,
                thinning_factor=1.0,
            )
        keep = int(round(len(self) * factor))
        if keep == 0:
            raise ConfigError(
                f"factor {factor} would keep zero of {len(self)} requests"
            )
        idx = np.floor(
            np.linspace(0.0, len(self), keep, endpoint=False)
        ).astype(np.int64)
        return RequestStream(
            times=self.times[idx].copy(),
            file_ids=self.file_ids[idx].copy(),
            duration=self.duration,
            thinning_factor=keep / len(self),
        )
