"""Command-line entry point: ``python -m repro``.

Subcommands::

    python -m repro list                       # available experiments
    python -m repro run fig2 --scale 0.25      # regenerate one figure/table
    python -m repro run all --scale 0.1        # everything, quickly
    python -m repro info                       # library + paper summary

Results are printed as the ASCII tables the paper's figures plot; pass
``--csv-dir DIR`` to also export every curve as CSV.  Sweep-backed
experiments accept ``--workers N`` (process-parallel grid points via the
orchestrator), ``--engine fast`` (the batched simulation kernel — covers
read/write mixes and shared caches), ``--chunk-size N`` (out-of-core
execution: fast-engine points stream through the chunked kernel N
requests at a time, bit-identical to the monolithic runs) and
``--sweep-cache DIR|off`` (where sweep results persist across sessions;
defaults to ``REPRO_SWEEP_CACHE`` or ``~/.cache/repro/sweeps``).  The ``placement``
ablation additionally accepts ``--write-policy NAME`` to restrict the
swept write-placement registry to one policy; the ``slo-frontier``
experiment (online DPM control: static thresholds vs adaptive policies vs
the SLO-feedback controller, per load level) accepts ``--dpm-policy NAME``
and ``--slo-target SECONDS`` to restrict its grid, and ``--dpm-ladder
NAME`` (``two_state``, ``nap``, ``drpm4`` — see ``repro.disk.dpm``) to add
a multi-state power-ladder axis: every cell re-runs with the ladder, whose
intermediate low-power rungs both engines simulate identically, and the
report shows where the ladder beats the best two-state static threshold
at equal p95, plus ``--scheduler NAME`` (``slack_defer``,
``batch_release``, ``spinup_coalesce`` — see ``repro.system.scheduling``)
to add a slack-aware request-scheduler axis: two-state cells re-run with
arrivals held back to lengthen idle gaps, and the report shows where a
scheduled cell strictly dominates the best scheduler-less cell at
equal-or-better p95.  The ``hetero-fleet`` experiment (fleet mix x placement x
DPM policy over heterogeneous pools — see ``repro.disk.fleet``) accepts
``--fleet NAME`` (``uniform`` or a preset like ``mixed_generation``) to
restrict its fleet axis.

Observability (see the README's "Observability" section): ``--verbose``
prints a one-line summary per sweep, ``--profile`` a per-task wall-time
and worker-occupancy report, ``--trace-out PATH`` exports the sweeps'
task profiles as Chrome trace-event JSON (Perfetto-loadable) and
``--metrics-out PATH`` the per-run sweep stats as JSON; with a sweep
cache enabled each grid also writes a JSON run manifest under
``<cache>/manifests/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro import __version__

__all__ = ["main"]


def _experiment_registry() -> Dict[str, Callable]:
    from repro.experiments import (
        ablations,
        fig2_power_saving,
        fig3_response_ratio,
        fig4_tradeoff,
        fig5_idleness_power,
        fig6_idleness_response,
        groupsize_sweep,
        hetero_fleet,
        placement_sweep,
        sensitivity,
        slo_frontier,
        table1_workload,
        table2_disk,
    )

    return {
        "table1": table1_workload.run,
        "table2": table2_disk.run,
        "fig2": fig2_power_saving.run,
        "fig3": fig3_response_ratio.run,
        "fig4": fig4_tradeoff.run,
        "fig5": fig5_idleness_power.run,
        "fig6": fig6_idleness_response.run,
        "groupsize": groupsize_sweep.run,
        "placement": placement_sweep.run,
        "slo-frontier": slo_frontier.run,
        "hetero-fleet": hetero_fleet.run,
        "complexity": ablations.run_complexity,
        "quality": ablations.run_quality,
        "correlation": ablations.run_correlation,
        "cache-policies": ablations.run_cache_policies,
        "segregation": ablations.run_segregation,
        "sensitivity-threshold": sensitivity.run_threshold,
        "sensitivity-service": sensitivity.run_service_mode,
    }


def _cmd_list(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    print("Available experiments (see DESIGN.md for the paper mapping):")
    for name in registry:
        print(f"  {name}")
    print("\nRun one with: python -m repro run <name> [--scale S] [--seed N]")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__}")
    print(
        "Reproduction of: Otoo, Rotem & Tsao, 'Analysis of Trade-Off "
        "Between Power Saving\nand Response Time in Disk Storage Systems' "
        "(LBNL, 2009)."
    )
    print(
        "\nCore: Pack_Disks O(n log n) 2DVPP file allocation with the "
        "C*/(1-rho)+1 bound.\nSubstrates: DES kernel, Table-2 disk power "
        "model, Zipf/NERSC workloads, caches.\nDocs: README.md, DESIGN.md, "
        "EXPERIMENTS.md."
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    if (
        args.workers is not None
        or args.engine is not None
        or args.sweep_cache is not None
        or args.chunk_size is not None
        or args.verbose
    ):
        from repro.experiments import orchestrator

        kwargs = {}
        if args.sweep_cache is not None:
            kwargs["cache_dir"] = orchestrator.resolve_cache_dir(
                args.sweep_cache
            )
        orchestrator.configure(
            max_workers=args.workers,
            engine=args.engine,
            chunk_size=args.chunk_size,
            verbose=args.verbose,
            **kwargs,
        )
    names = list(registry) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            "see 'python -m repro list'",
            file=sys.stderr,
        )
        return 2
    # Experiment-specific pass-through flags: forwarded when the target
    # experiment's run() accepts the keyword, an error when it does not
    # (unless sweeping 'all', where inapplicable flags are just skipped).
    passthrough = {
        "write_policy": (args.write_policy, "the 'placement' sweep"),
        "dpm_policy": (args.dpm_policy, "the 'slo-frontier' experiment"),
        "slo_target": (args.slo_target, "the 'slo-frontier' experiment"),
        "dpm_ladder": (args.dpm_ladder, "the 'slo-frontier' experiment"),
        "scheduler": (args.scheduler, "the 'slo-frontier' experiment"),
        "fleet": (args.fleet, "the 'hetero-fleet' experiment"),
    }
    for name in names:
        kwargs = {"scale": args.scale}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        for key, (value, owner) in passthrough.items():
            if value is None:
                continue
            import inspect

            if key in inspect.signature(registry[name]).parameters:
                kwargs[key] = value
            elif args.experiment != "all":
                print(
                    f"--{key.replace('_', '-')} is not applicable to "
                    f"{name!r} (only {owner} accepts it)",
                    file=sys.stderr,
                )
                return 2
        result = registry[name](**kwargs)
        print(result.to_text())
        print()
        if args.csv_dir:
            for path in result.save_csv(args.csv_dir):
                print(f"wrote {path}")
    if args.profile or args.trace_out or args.metrics_out:
        from repro.experiments import orchestrator

        runner = orchestrator.default_runner()
        if args.profile:
            print(runner.profile_report())
        if args.trace_out:
            print(f"wrote {runner.write_trace(args.trace_out)}")
        if args.metrics_out:
            print(f"wrote {runner.write_metrics(args.metrics_out)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("info", help="library and paper summary").set_defaults(
        func=_cmd_info
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment name, or 'all'")
    run.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="workload scale factor, 1.0 = full paper scale (default 0.25)",
    )
    run.add_argument("--seed", type=int, default=None, help="override the seed")
    run.add_argument(
        "--csv-dir", type=str, default=None, help="export curves as CSV here"
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep worker processes (default: REPRO_SWEEP_WORKERS or serial)",
    )
    run.add_argument(
        "--engine",
        choices=("event", "fast"),
        default=None,
        help="force a simulation kernel for sweep points that support it",
    )
    run.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run fast-engine sweep points out-of-core, feeding the kernel "
            "N requests at a time (bit-identical to monolithic runs; pair "
            "with StorageConfig(metrics_mode='streaming') for bounded "
            "memory)"
        ),
    )
    run.add_argument(
        "--write-policy",
        type=str,
        default=None,
        metavar="POLICY",
        help=(
            "restrict the 'placement' sweep to one write-placement policy "
            "from the registry (see repro.system.placement)"
        ),
    )
    run.add_argument(
        "--dpm-policy",
        type=str,
        default=None,
        metavar="POLICY",
        help=(
            "restrict the 'slo-frontier' grid to one DPM policy ('fixed', "
            "'adaptive_timeout', 'exponential_predictive' or "
            "'slo_feedback'; see repro.control.policies)"
        ),
    )
    run.add_argument(
        "--slo-target",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "restrict the 'slo-frontier' grid to one p95 response-time "
            "target for the slo_feedback controller"
        ),
    )
    run.add_argument(
        "--dpm-ladder",
        type=str,
        default=None,
        metavar="LADDER",
        help=(
            "add a multi-state DPM ladder axis to the 'slo-frontier' grid "
            "('two_state', 'nap' or 'drpm4'; see repro.disk.dpm) — every "
            "cell re-runs with StorageConfig(dpm_ladder=LADDER)"
        ),
    )
    run.add_argument(
        "--scheduler",
        type=str,
        default=None,
        metavar="SCHEDULER",
        help=(
            "add a slack-aware request-scheduler axis to the "
            "'slo-frontier' grid ('slack_defer', 'batch_release' or "
            "'spinup_coalesce'; see repro.system.scheduling) — two-state "
            "cells re-run with StorageConfig(scheduler=SCHEDULER), holding "
            "requests back to lengthen idle gaps and coalesce wake-ups"
        ),
    )
    run.add_argument(
        "--fleet",
        type=str,
        default=None,
        metavar="FLEET",
        help=(
            "restrict the 'hetero-fleet' grid to one fleet: 'uniform' "
            "(the paper's homogeneous Table 2 pool) or a preset from "
            "repro.disk.fleet such as 'mixed_generation' (alternating "
            "old/new-generation drives with per-disk capacities, "
            "break-evens and power tables)"
        ),
    )
    run.add_argument(
        "--sweep-cache",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "directory for cross-session sweep result caching, or 'off' to "
            "disable (default: REPRO_SWEEP_CACHE or ~/.cache/repro/sweeps)"
        ),
    )
    run.add_argument(
        "--verbose",
        action="store_true",
        help=(
            "print a one-line summary per sweep "
            "(executed/cached/deduplicated/elapsed)"
        ),
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help=(
            "after the run, print per-task wall times and worker "
            "occupancy for every sweep"
        ),
    )
    run.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "export the sweeps' task profiles as a Chrome trace-event "
            "JSON (load in Perfetto / chrome://tracing)"
        ),
    )
    run.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="PATH",
        help="export the sweeps' stats (per run + totals) as JSON",
    )
    run.set_defaults(func=_cmd_run)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
