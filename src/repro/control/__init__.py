"""Online dynamic-power-management control (the decision half of the
trade-off).

The paper's subject is the *trade-off* between power saving and response
time, yet a fixed idleness threshold hard-codes one point on it.  This
package supplies the online control loop real systems use to navigate the
curve: pluggable DPM policies (:mod:`repro.control.policies`) that adjust
per-disk spin-down thresholds each control interval from streaming
telemetry (:mod:`repro.control.telemetry`), orchestrated by a shared
:class:`~repro.control.controller.ThresholdController` that both
simulation engines drive with byte-identical observations.

Select a policy per run via ``StorageConfig(dpm_policy=...)`` (plus
``control_interval``, ``slo_target`` and ``slo_percentile``); the
``slo_frontier`` experiment sweeps the registry against static thresholds
across load and SLO-target grids.
"""

from repro.control.controller import (
    EventControlLoop,
    ThresholdController,
    controller_from,
)
from repro.control.policies import (
    DEFAULT_DPM_POLICY,
    DPM_POLICIES,
    DPMPolicy,
    dpm_policy_names,
    make_dpm_policy,
    register_dpm_policy,
)
from repro.control.telemetry import IntervalRecord, IntervalTelemetry, P2Quantile

__all__ = [
    "DEFAULT_DPM_POLICY",
    "DPM_POLICIES",
    "DPMPolicy",
    "EventControlLoop",
    "IntervalRecord",
    "IntervalTelemetry",
    "P2Quantile",
    "ThresholdController",
    "controller_from",
    "dpm_policy_names",
    "make_dpm_policy",
    "register_dpm_policy",
]
