"""The control loop shared by both simulation engines.

:class:`ThresholdController` owns one policy instance plus the streaming
telemetry (P² percentile estimators, per-interval trace records) and is
the single source of threshold decisions for a run:

* the **event engine** drives it through :class:`EventControlLoop`, a
  simulation process that wakes at every control boundary, harvests the
  interval's observations from the live drives/dispatcher and applies the
  policy's new thresholds to each drive (affecting *future* idleness-timer
  armings only — a gap already underway keeps the threshold it drained
  under);
* the **fast kernel** calls :meth:`ThresholdController.advance` directly
  between its interval-segmented recursion passes
  (:mod:`repro.sim.fastkernel`), with byte-identical telemetry.

Because both engines feed the controller the same observations in the
same order, the per-interval threshold vectors — and hence the simulated
trajectories — agree to the kernels' ~1 ulp float drift; the grid in
``tests/control/test_dpm_equivalence.py`` enforces ~1e-9 agreement for
every registered policy.

The same scalar-per-disk protocol steers **multi-state DPM ladders**
(``StorageConfig(dpm_ladder=...)``): the controller's threshold is the
ladder's first-descent time, and each drive maps it onto per-rung descent
times via :meth:`repro.disk.dpm.DpmLadder.scaled_entries` at the gap's
drain instant — so ``adaptive_timeout``/``slo_feedback`` move the whole
descent schedule without policy-side changes, identically in both engines
(the randomized harness in ``tests/differential/`` covers the
ladder x policy product).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.control.policies import DPMPolicy, make_dpm_policy
from repro.control.telemetry import (
    IntervalRecord,
    IntervalTelemetry,
    P2Quantile,
)
from repro.errors import ConfigError, SimulationError

__all__ = ["EventControlLoop", "ThresholdController", "controller_from"]


class ThresholdController:
    """Telemetry accumulation + policy invocation for one simulation run.

    Parameters
    ----------
    policy:
        Registry name or ready :class:`~repro.control.policies.DPMPolicy`
        instance (a fresh instance per run; stateful policies must not be
        shared between concurrent simulations).
    interval:
        Control-interval length in seconds.
    num_disks:
        Pool size (threshold vectors have this length).
    base_threshold:
        The configured static threshold seeding the policy — a scalar
        for uniform pools or a per-disk vector for heterogeneous fleets.
    spec:
        The :class:`~repro.disk.specs.DiskSpec` (break-even time etc.),
        or one spec per disk for heterogeneous fleets.
    slo_target, slo_percentile:
        The response-time target (seconds at the given percentile) for
        SLO-constrained policies; ``slo_target=None`` when unused.
    """

    def __init__(
        self,
        policy: Union[str, DPMPolicy, None],
        interval: float,
        num_disks: int,
        base_threshold: float,
        spec,
        slo_target: Optional[float] = None,
        slo_percentile: float = 95.0,
    ) -> None:
        interval = float(interval)
        if not interval > 0:
            raise ConfigError("control interval must be positive")
        self.policy = make_dpm_policy(policy)
        self.interval = interval
        self.num_disks = int(num_disks)
        self.policy.reset(
            num_disks=self.num_disks,
            base_threshold=base_threshold,
            spec=spec,
            slo_target=slo_target,
            slo_percentile=slo_percentile,
        )
        self.thresholds = np.array(
            self.policy.initial_thresholds(), dtype=float
        )
        if self.thresholds.shape != (self.num_disks,):
            raise SimulationError(
                "policy initial_thresholds must be one value per disk"
            )
        self.p95 = P2Quantile(95.0)
        self.p99 = P2Quantile(99.0)
        slo_percentile = float(slo_percentile)
        if slo_percentile == 95.0:
            self._slo_estimator = self.p95
        elif slo_percentile == 99.0:
            self._slo_estimator = self.p99
        else:
            self._slo_estimator = P2Quantile(slo_percentile)
        self.records: List[IntervalRecord] = []

    @property
    def slo_estimate(self) -> float:
        """The running SLO-percentile estimate (NaN before warm-up).

        Interval-constant: the underlying P² estimator is only fed at
        control boundaries, so between boundaries this value is frozen —
        which is what lets request schedulers
        (:mod:`repro.system.scheduling`) read it at arrival instants on
        the event engine and in interval batches on the fast kernel and
        still see byte-identical telemetry.
        """
        return self._slo_estimator.value

    # -- the per-boundary protocol ----------------------------------------------

    def _observe(
        self,
        t_start: float,
        t_end: float,
        responses: np.ndarray,
        gaps: Sequence[Sequence],
        queue_depth: np.ndarray,
        power: Optional[np.ndarray],
    ) -> IntervalTelemetry:
        responses = np.asarray(responses, dtype=float)
        dedicated = self._slo_estimator not in (self.p95, self.p99)
        for r in responses:
            self.p95.add(r)
            self.p99.add(r)
            if dedicated:
                self._slo_estimator.add(r)
        queue_depth = np.asarray(queue_depth, dtype=float)
        index = len(self.records)
        telemetry = IntervalTelemetry(
            index=index,
            t_start=float(t_start),
            t_end=float(t_end),
            responses=responses,
            gaps=gaps,
            queue_depth=queue_depth,
            thresholds=self.thresholds,
            p95_running=self.p95.value,
            p99_running=self.p99.value,
            slo_estimate=self._slo_estimator.value,
        )
        self.records.append(
            IntervalRecord(
                index=index,
                t_start=telemetry.t_start,
                t_end=telemetry.t_end,
                thresholds=self.thresholds.copy(),
                completions=int(responses.size),
                interval_p95=(
                    float(np.percentile(responses, 95.0))
                    if responses.size
                    else math.nan
                ),
                p95_running=telemetry.p95_running,
                p99_running=telemetry.p99_running,
                slo_estimate=telemetry.slo_estimate,
                mean_queue_depth=(
                    float(queue_depth.mean()) if queue_depth.size else 0.0
                ),
                power=None if power is None else np.asarray(power, float),
                gap_count=int(sum(len(g) for g in gaps)),
            )
        )
        return telemetry

    def advance(
        self,
        t_start: float,
        t_end: float,
        responses: np.ndarray,
        gaps: Sequence[Sequence],
        queue_depth: np.ndarray,
        power: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Record one finished interval and decide the next thresholds."""
        telemetry = self._observe(
            t_start, t_end, responses, gaps, queue_depth, power
        )
        new = np.asarray(self.policy.update(telemetry), dtype=float)
        if new.shape != (self.num_disks,):
            raise SimulationError(
                f"{self.policy.name} returned {new.shape} thresholds for "
                f"{self.num_disks} disks"
            )
        if np.any(new < 0):
            raise SimulationError(
                f"{self.policy.name} returned a negative threshold"
            )
        self.thresholds = new.copy()
        return self.thresholds

    def finalize(
        self,
        t_start: float,
        t_end: float,
        responses: np.ndarray,
        gaps: Sequence[Sequence],
        queue_depth: np.ndarray,
        power: Optional[np.ndarray] = None,
    ) -> None:
        """Record the final (possibly partial) interval without an update.

        The thresholds a boundary at or beyond the horizon would produce
        can never take effect, so the last interval is observed for the
        trace but triggers no policy decision — mirroring the event
        engine, where the measurement cutoff pre-empts a control firing
        at exactly the horizon.
        """
        self._observe(t_start, t_end, responses, gaps, queue_depth, power)

    # -- trace export -----------------------------------------------------------

    def attach_power(self, matrix: np.ndarray) -> None:
        """Fill per-interval per-disk mean power into the records.

        The fast kernel computes the power trace after the run (from its
        logged state episodes); the event engine fills it online instead.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (len(self.records), self.num_disks):
            raise SimulationError(
                f"power matrix {matrix.shape} does not match "
                f"{len(self.records)} intervals x {self.num_disks} disks"
            )
        for record, row in zip(self.records, matrix):
            record.power = row

    def extra(self) -> dict:
        """The per-interval traces for ``SimulationResult.extra['dpm']``."""
        records = self.records
        have_power = records and all(r.power is not None for r in records)
        return {
            "policy": self.policy.name,
            "interval": self.interval,
            "t_start": [r.t_start for r in records],
            "t_end": [r.t_end for r in records],
            "thresholds": [r.thresholds.tolist() for r in records],
            "completions": [r.completions for r in records],
            "interval_p95": [r.interval_p95 for r in records],
            "p95_running": [r.p95_running for r in records],
            "p99_running": [r.p99_running for r in records],
            "slo_estimate": [r.slo_estimate for r in records],
            "mean_queue_depth": [r.mean_queue_depth for r in records],
            "power": (
                [r.power.tolist() for r in records] if have_power else None
            ),
        }


def controller_from(
    policy: Union[str, DPMPolicy, None],
    interval: float,
    num_disks: int,
    base_threshold: float,
    spec,
    slo_target: Optional[float] = None,
    slo_percentile: float = 95.0,
) -> Optional[ThresholdController]:
    """A fresh controller, or ``None`` when the policy is static.

    Static policies (``fixed``) take the uncontrolled code path in both
    engines — no control process, no interval segmentation — so their
    runs are byte-identical to the pre-control simulator.
    """
    policy = make_dpm_policy(policy)
    if policy.static:
        return None
    return ThresholdController(
        policy,
        interval,
        num_disks,
        base_threshold,
        spec,
        slo_target=slo_target,
        slo_percentile=slo_percentile,
    )


class EventControlLoop:
    """The event engine's control-boundary process.

    Wakes at every multiple of the control interval (strictly before the
    horizon — the measurement cutoff pre-empts a firing at exactly the
    horizon, matching the fast kernel's no-update-at-``T`` rule), harvests
    the interval's telemetry from the live drives and dispatcher, and
    applies the policy's new thresholds to each drive.  Threshold writes
    affect future idleness-timer armings only; a drive already idling
    keeps the timer it armed at drain, which is exactly the gap semantics
    the fast kernel replays.

    Construction applies the controller's initial thresholds to the
    drives (before any simulation event has run).
    """

    def __init__(self, env, drives, dispatcher, controller, horizon,
                 observer=None):
        self.env = env
        self.drives = list(drives)
        self.dispatcher = dispatcher
        self.controller = controller
        self.horizon = float(horizon)
        # Optional repro.obs observer: receives each applied threshold
        # vector at its boundary instant (same emission points as the
        # fast kernel's controlled driver).
        self.observer = observer
        self._consumed_responses = 0
        self._consumed_gaps = [0] * len(self.drives)
        self._last_energy = np.array(
            [d.energy() for d in self.drives], dtype=float
        )
        self._t_start = float(env.now)
        for drive, th in zip(self.drives, controller.thresholds):
            drive.threshold = float(th)
            drive.log_gaps = True  # gap telemetry is consumed per interval

    def _collect(self, t_end: float):
        responses = np.asarray(
            self.dispatcher.response_times[self._consumed_responses:],
            dtype=float,
        )
        self._consumed_responses += int(responses.size)
        gaps = []
        for i, drive in enumerate(self.drives):
            log = drive.gap_log
            gaps.append(log[self._consumed_gaps[i]:])
            self._consumed_gaps[i] = len(log)
        queue_depth = np.array(
            [d.queue_depth for d in self.drives], dtype=float
        )
        energy = np.array([d.energy() for d in self.drives], dtype=float)
        window = t_end - self._t_start
        power = (energy - self._last_energy) / window
        self._last_energy = energy
        return responses, gaps, queue_depth, power

    def run(self):
        """Generator process: fire at every boundary before the horizon."""
        k = 0
        while True:
            t_next = (k + 1) * self.controller.interval
            if t_next >= self.horizon:
                return
            yield self.env.timeout(t_next - self.env.now)
            thresholds = self.controller.advance(
                self._t_start, t_next, *self._collect(t_next)
            )
            if self.observer is not None:
                self.observer.on_thresholds(t_next, thresholds)
            for drive, th in zip(self.drives, thresholds):
                drive.threshold = float(th)
            self._t_start = t_next
            k += 1

    def finalize(self) -> None:
        """Fold the final partial interval into the trace (post-run)."""
        t_end = float(self.env.now)
        if t_end > self._t_start:
            self.controller.finalize(
                self._t_start, t_end, *self._collect(t_end)
            )
