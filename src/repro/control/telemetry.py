"""Streaming control-loop telemetry: percentile estimation and windows.

The online DPM policies (:mod:`repro.control.policies`) make one decision
per *control interval* from what the system observed during it.  This
module provides the observation substrate shared by both simulation
engines:

* :class:`P2Quantile` — the Jain & Chlamtac P² streaming percentile
  estimator (five markers, O(1) memory), used for the running p95/p99
  response-time estimates the ``slo_feedback`` controller steers by;
* :class:`IntervalTelemetry` — everything a policy may consult at one
  control boundary: the interval's completed response times (completion
  order), the per-disk idle gaps closed during the interval, per-disk
  queue depth at the boundary, and the running percentile estimates;
* :class:`IntervalRecord` — the per-interval trace row (thresholds in
  effect, percentile estimates, per-disk mean power when available)
  surfaced through ``SimulationResult.extra["dpm"]``.

Both engines feed these objects the **same observations in the same
order** (responses in completion order, gaps in per-disk close order), so
a policy's threshold decisions — and hence the simulated trajectories —
agree across engines to the kernels' ~1 ulp float drift.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError

__all__ = ["IntervalRecord", "IntervalTelemetry", "P2Quantile"]

#: Dense float vector (the dtype every telemetry array is coerced to).
FloatArray = npt.NDArray[np.float64]


class P2Quantile:
    """Streaming percentile estimate without storing observations (P²).

    The classic five-marker algorithm (Jain & Chlamtac, CACM 1985): marker
    heights track the running min, max, the target percentile and the two
    flanking percentiles; marker positions are nudged toward their desired
    positions with a piecewise-parabolic height update.  Until five
    observations have arrived the estimate is the exact linear-interpolated
    empirical percentile (same convention as ``np.percentile``).

    The recursion is deterministic in the observation order, which is why
    both simulation engines must feed completions in the same order.

    Parameters
    ----------
    percentile:
        Target percentile in (0, 100), e.g. ``95.0``.
    """

    __slots__ = ("percentile", "count", "_p", "_dn", "_q", "_n", "_np", "_initial")

    def __init__(self, percentile: float) -> None:
        percentile = float(percentile)
        if not 0.0 < percentile < 100.0:
            raise ConfigError(
                f"percentile must be in (0, 100), got {percentile}"
            )
        self.percentile = percentile
        self.count = 0
        p = percentile / 100.0
        self._p = p
        self._dn: Tuple[float, float, float, float, float] = (
            0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0,
        )
        self._q: Optional[List[float]] = None  # marker heights
        self._n: Optional[List[int]] = None  # marker positions
        self._np: Optional[List[float]] = None  # desired positions
        self._initial: List[float] = []

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        x = float(x)
        self.count += 1
        if self._q is None:
            insort(self._initial, x)
            if len(self._initial) == 5:
                p = self._p
                self._q = list(self._initial)
                self._n = [0, 1, 2, 3, 4]
                self._np = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]
            return
        q, n, npos = self._q, self._n, self._np
        assert n is not None and npos is not None
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            npos[i] += self._dn[i]
        for i in (1, 2, 3):
            d = npos[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1) or (
                d <= -1.0 and n[i - 1] - n[i] < -1
            ):
                step = 1 if d > 0 else -1
                candidate = self._parabolic(i, step)
                if not (q[i - 1] < candidate < q[i + 1]):
                    candidate = self._linear(i, step)
                q[i] = candidate
                n[i] += step

    def add_many(self, xs: Sequence[float]) -> None:
        """Fold a batch of observations, bit-identically to repeated :meth:`add`.

        The batched update hoists the marker lists into scalar locals and
        inlines the parabolic/linear adjustment, cutting the per-observation
        cost ~4x — the difference between the streaming results layer
        keeping up with the fast kernel and throttling it.  The arithmetic
        (operation order included) is exactly :meth:`add`'s, so estimates
        are independent of how a stream is batched.
        """
        xs = list(xs)
        start = 0
        if self._q is None:
            # Initial phase: exact empirical percentile until 5 observations.
            while start < len(xs) and self._q is None:
                self.add(xs[start])
                start += 1
            if start == len(xs):
                return
        q = self._q
        n = self._n
        npos = self._np
        assert q is not None and n is not None and npos is not None
        q0, q1, q2, q3, q4 = q
        n1, n2, n3, n4 = n[1], n[2], n[3], n[4]  # n[0] is pinned at 0
        np0, np1, np2, np3, np4 = npos
        d0, d1, d2, d3, d4 = self._dn
        count = self.count
        for x in xs[start:]:
            x = float(x)
            count += 1
            if x < q0:
                q0 = x
                n1 += 1
                n2 += 1
                n3 += 1
                n4 += 1
            elif x >= q4:
                q4 = x
                n4 += 1
            elif x >= q3:
                n4 += 1
            elif x >= q2:
                n3 += 1
                n4 += 1
            elif x >= q1:
                n2 += 1
                n3 += 1
                n4 += 1
            else:
                n1 += 1
                n2 += 1
                n3 += 1
                n4 += 1
            np0 += d0
            np1 += d1
            np2 += d2
            np3 += d3
            np4 += d4
            # Marker 1 (neighbors: 0 at position 0 and 2).
            d = np1 - n1
            if (d >= 1.0 and n2 - n1 > 1) or (d <= -1.0 and -n1 < -1):
                step = 1 if d > 0 else -1
                cand = q1 + step / (n2 - 0) * (
                    (n1 - 0 + step) * (q2 - q1) / (n2 - n1)
                    + (n2 - n1 - step) * (q1 - q0) / (n1 - 0)
                )
                if not (q0 < cand < q2):
                    if step == 1:
                        cand = q1 + (q2 - q1) / (n2 - n1)
                    else:
                        cand = q1 - (q0 - q1) / (0 - n1)
                q1 = cand
                n1 += step
            # Marker 2 (neighbors: 1 and 3).
            d = np2 - n2
            if (d >= 1.0 and n3 - n2 > 1) or (d <= -1.0 and n1 - n2 < -1):
                step = 1 if d > 0 else -1
                cand = q2 + step / (n3 - n1) * (
                    (n2 - n1 + step) * (q3 - q2) / (n3 - n2)
                    + (n3 - n2 - step) * (q2 - q1) / (n2 - n1)
                )
                if not (q1 < cand < q3):
                    if step == 1:
                        cand = q2 + (q3 - q2) / (n3 - n2)
                    else:
                        cand = q2 - (q1 - q2) / (n1 - n2)
                q2 = cand
                n2 += step
            # Marker 3 (neighbors: 2 and 4).
            d = np3 - n3
            if (d >= 1.0 and n4 - n3 > 1) or (d <= -1.0 and n2 - n3 < -1):
                step = 1 if d > 0 else -1
                cand = q3 + step / (n4 - n2) * (
                    (n3 - n2 + step) * (q4 - q3) / (n4 - n3)
                    + (n4 - n3 - step) * (q3 - q2) / (n3 - n2)
                )
                if not (q2 < cand < q4):
                    if step == 1:
                        cand = q3 + (q4 - q3) / (n4 - n3)
                    else:
                        cand = q3 - (q2 - q3) / (n2 - n3)
                q3 = cand
                n3 += step
        self.count = count
        q[0], q[1], q[2], q[3], q[4] = q0, q1, q2, q3, q4
        n[1], n[2], n[3], n[4] = n1, n2, n3, n4
        npos[0], npos[1], npos[2], npos[3], npos[4] = np0, np1, np2, np3, np4

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        assert q is not None and n is not None
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        assert q is not None and n is not None
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    @property
    def value(self) -> float:
        """Current estimate (``nan`` before any observation)."""
        if self.count == 0:
            return math.nan
        if self._q is None:
            return float(np.percentile(self._initial, self.percentile))
        return self._q[2]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<P2Quantile p{self.percentile:g} n={self.count} "
            f"value={self.value:.4g}>"
        )


#: One closed idle gap: ``(gap_seconds, threshold_at_drain)``.  Whether the
#: disk spun down during the gap is derivable (``gap > threshold``, the
#: strict comparison both engines use), so it is not stored separately.
GapObservation = Tuple[float, float]


@dataclass
class IntervalTelemetry:
    """Everything a DPM policy may consult at one control boundary.

    Attributes
    ----------
    index:
        Zero-based control-interval index.
    t_start, t_end:
        The interval's bounds in simulation time (``t_end`` is the boundary
        at which the policy decides the *next* interval's thresholds).
    responses:
        Response times of requests completed during the interval, in
        completion order (cache hits included, horizon-censored requests
        excluded) — identical across engines.
    gaps:
        Per-disk idle gaps *closed* during the interval (the arrival that
        ended the gap fell inside it), each a
        ``(gap_seconds, threshold_at_drain)`` pair in close order.
    queue_depth:
        Per-disk requests dispatched but not yet in service at ``t_end``.
    thresholds:
        The per-disk idleness thresholds that were in effect *during* the
        interval.
    p95_running, p99_running:
        Streaming P² estimates over every response observed so far.
    slo_estimate:
        The running estimate at the configured SLO percentile (``nan``
        until the first completion).
    """

    index: int
    t_start: float
    t_end: float
    responses: FloatArray
    gaps: Sequence[Sequence[GapObservation]]
    queue_depth: FloatArray
    thresholds: FloatArray
    p95_running: float
    p99_running: float
    slo_estimate: float


@dataclass
class IntervalRecord:
    """One row of the per-run control trace (kept by the controller)."""

    index: int
    t_start: float
    t_end: float
    #: Thresholds in effect during the interval (per disk).
    thresholds: FloatArray
    completions: int
    #: Exact percentile of this interval's responses alone (``nan`` when
    #: the interval completed nothing).
    interval_p95: float
    p95_running: float
    p99_running: float
    slo_estimate: float
    mean_queue_depth: float
    #: Per-disk mean draw over the interval (W); filled by the event
    #: engine online and by the fast kernel's post-run span binning.
    power: Optional[FloatArray] = None
    gap_count: int = 0


def bin_spans(
    disks: npt.ArrayLike,
    starts: npt.ArrayLike,
    ends: npt.ArrayLike,
    edges: "Sequence[float] | npt.NDArray[Any]",
    num_disks: int,
) -> FloatArray:
    """Overlap seconds of ``[start, end)`` spans with contiguous windows.

    ``edges`` are the ``K+1`` ascending boundaries of ``K`` contiguous
    windows (``[edges[k], edges[k+1])`` — exactly the control-interval
    grid).  Returns a ``(K, num_disks)`` matrix; used by the fast kernel
    to reconstruct the per-interval per-disk power trace from its logged
    state episodes (the event engine diffs drive energies online
    instead).

    O(N log K + K·D): each span's first and last partial windows are
    scattered directly, and the windows a span covers *fully* are
    accumulated through a difference array over the window axis — no
    per-window rescans of the span list, so long controlled runs (many
    intervals) cost the same per span as short ones.
    """
    edges = np.asarray(edges, dtype=float)
    n_windows = int(edges.size) - 1
    out: FloatArray = np.zeros((max(n_windows, 0), num_disks), dtype=float)
    d = np.asarray(disks, dtype=np.int64)
    if not d.size or n_windows <= 0:
        return out
    s = np.clip(np.asarray(starts, dtype=float), edges[0], edges[-1])
    e = np.clip(np.asarray(ends, dtype=float), edges[0], edges[-1])
    keep = e > s
    d, s, e = d[keep], s[keep], e[keep]
    if not d.size:
        return out
    i_s = np.clip(
        np.searchsorted(edges, s, side="right") - 1, 0, n_windows - 1
    )
    i_e = np.clip(
        np.searchsorted(edges, e, side="right") - 1, 0, n_windows - 1
    )
    same = i_s == i_e
    np.add.at(out, (i_s[same], d[same]), e[same] - s[same])
    cross = ~same
    if cross.any():
        dc, sc, ec = d[cross], s[cross], e[cross]
        lo_w, hi_w = i_s[cross], i_e[cross]
        np.add.at(out, (lo_w, dc), edges[lo_w + 1] - sc)
        # A span ending exactly on an edge contributes 0 here — harmless.
        np.add.at(out, (hi_w, dc), ec - edges[hi_w])
        # Fully covered windows (lo_w < k < hi_w): +1/-1 difference
        # markers cumsum'd along the window axis, times window widths.
        cover = np.zeros((n_windows + 1, num_disks), dtype=float)
        np.add.at(cover, (lo_w + 1, dc), 1.0)
        np.add.at(cover, (hi_w, dc), -1.0)
        out += np.cumsum(cover[:-1], axis=0) * np.diff(edges)[:, None]
    return out
