"""Pluggable online dynamic-power-management (DPM) policies.

Every run in the repo used to fix the spin-down idleness threshold up
front; this registry supplies the *online* half of the paper's trade-off —
policies that adjust the per-disk threshold from observed behavior, the
way real systems navigate power vs. response time (TimeTrader exploits
latency slack subject to a tail-latency target; adaptive spin-down
timeouts go back to Douglis, Krishnan & Bershad; exponential-average idle
prediction to Hwang & Wu).

Policies decide once per **control interval**: at each boundary the
controller (:mod:`repro.control.controller`) hands the policy an
:class:`~repro.control.telemetry.IntervalTelemetry` and receives the
per-disk threshold vector for the next interval.  Thresholds govern idle
gaps by their value *at the drain instant* (the moment the disk's queue
empties): a gap that began under an old threshold keeps it, exactly like
the event drive's already-armed idleness timer.  Both simulation engines
honor the same semantics, so every registered policy simulates
identically (~1e-9) on the event and fast kernels.

Registered policies
-------------------

======================  =======================================================
name                    rule
======================  =======================================================
fixed                   the pre-control behavior: one static threshold
                        (``StorageConfig.idleness_threshold``), never updated;
                        engines skip the control loop entirely, byte-identical
                        to the fixed-threshold code path
adaptive_timeout        per-disk multiplicative increase/decrease: raise the
                        threshold when the interval saw more spin-up *regrets*
                        (spun down, then slept less than break-even) than idle
                        *wastes* (idled through a gap longer than break-even
                        without sleeping); lower it in the opposite case
exponential_predictive  per-disk EWMA prediction of the next idle period
                        (Hwang-Wu exponential average); spin down immediately
                        (threshold 0) while the predicted idle exceeds the
                        break-even time, else fall back to the base threshold
slo_feedback            array-wide feedback controller: maximize power saving
                        subject to a response-time percentile target — relax
                        (multiply) the shared threshold while the running
                        P² percentile estimate violates the target, tighten
                        (divide) it while the estimate sits comfortably below
======================  =======================================================

Use :func:`make_dpm_policy` to instantiate by name and
:func:`dpm_policy_names` to iterate the registry (the cross-engine
equivalence grid in ``tests/control/test_dpm_equivalence.py`` does, so new
policies are covered automatically).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple, Type, Union

import numpy as np

from repro.control.telemetry import IntervalTelemetry
from repro.errors import ConfigError

__all__ = [
    "DEFAULT_DPM_POLICY",
    "DPMPolicy",
    "DPM_POLICIES",
    "dpm_policy_names",
    "make_dpm_policy",
    "register_dpm_policy",
]

#: The pre-control behavior; what ``StorageConfig.dpm_policy`` defaults to.
DEFAULT_DPM_POLICY = "fixed"


class DPMPolicy:
    """Base class: one per-disk threshold decision per control interval.

    Subclasses set ``name`` (the registry key) and implement
    :meth:`update`.  :meth:`reset` is called once per simulation run with
    the pool size and configuration-derived constants; policies initialize
    their cross-interval state in :meth:`_post_reset`.

    Class attributes
    ----------------
    static:
        ``True`` when thresholds can never change after :meth:`reset`
        (the ``fixed`` policy).  Engines skip the control loop entirely
        for static policies, so they stay byte-identical to the
        fixed-threshold code path.
    requires_slo:
        ``True`` when the policy is meaningless without a response-time
        target; ``StorageConfig`` validation enforces ``slo_target``.
    """

    name: str = ""
    static: bool = False
    requires_slo: bool = False

    def reset(
        self,
        num_disks: int,
        base_threshold,
        spec,
        slo_target: Optional[float] = None,
        slo_percentile: float = 95.0,
    ) -> None:
        """Prepare per-run state.

        ``base_threshold`` is the configured static threshold (the spec's
        break-even value by default) and seeds every policy's initial
        vector; ``spec`` supplies the break-even time and transition
        costs.  Both accept either one value for the whole pool (the
        uniform array) or one per disk (heterogeneous fleets:
        ``base_threshold`` as a length-``num_disks`` vector, ``spec`` as
        a sequence of :class:`~repro.disk.specs.DiskSpec`) — policies
        score and clamp every disk against *its own* break-even and base
        threshold, so a mixed-generation fleet is steered per drive.
        """
        if num_disks < 1:
            raise ConfigError("num_disks must be >= 1")
        self.num_disks = int(num_disks)
        base = np.asarray(base_threshold, dtype=float)
        if base.ndim == 0:
            base = np.full(self.num_disks, float(base), dtype=float)
        elif base.shape != (self.num_disks,):
            raise ConfigError(
                f"base_threshold must be scalar or one value per disk, "
                f"got shape {base.shape} for {self.num_disks} disks"
            )
        #: Per-disk configured thresholds (uniform pools: one repeated value).
        self.base_thresholds = base.copy()
        if hasattr(spec, "breakeven_threshold"):
            specs = (spec,) * self.num_disks
        else:
            specs = tuple(spec)
            if len(specs) != self.num_disks:
                raise ConfigError(
                    f"spec must be one DiskSpec or one per disk, got "
                    f"{len(specs)} for {self.num_disks} disks"
                )
        self.specs = specs
        #: Per-disk break-even times (the energy floor each disk is scored
        #: against).
        self.breakevens = np.array(
            [s.breakeven_threshold() for s in specs], dtype=float
        )
        # Representative (disk 0) scalars, kept for homogeneous callers.
        self.base_threshold = float(self.base_thresholds[0])
        self.spec = specs[0]
        self.breakeven = float(self.breakevens[0])
        self.slo_target = None if slo_target is None else float(slo_target)
        self.slo_percentile = float(slo_percentile)
        self._post_reset()

    def _post_reset(self) -> None:
        """Hook for subclass state (default: stateless, nothing to do)."""

    def initial_thresholds(self) -> np.ndarray:
        """Per-disk thresholds for the first control interval."""
        return self.base_thresholds.copy()

    def update(self, telemetry: IntervalTelemetry) -> np.ndarray:
        """Per-disk thresholds for the next interval (must be ``>= 0``)."""
        raise NotImplementedError


#: name -> policy class.  Populated by :func:`register_dpm_policy`.
DPM_POLICIES: Dict[str, Type[DPMPolicy]] = {}


def register_dpm_policy(cls: Type[DPMPolicy]) -> Type[DPMPolicy]:
    """Class decorator adding a policy to the registry (keyed by ``name``)."""
    if not cls.name:
        raise ConfigError(f"{cls.__name__} must set a non-empty name")
    if cls.name in DPM_POLICIES:
        raise ConfigError(f"duplicate DPM policy {cls.name!r}")
    DPM_POLICIES[cls.name] = cls
    return cls


def dpm_policy_names() -> Tuple[str, ...]:
    """All registered policy names (registration order; default first)."""
    return tuple(DPM_POLICIES)


def make_dpm_policy(
    policy: Union[str, DPMPolicy, None] = None,
) -> DPMPolicy:
    """Instantiate a policy by registry name (``None`` = ``fixed``).

    A ready-made :class:`DPMPolicy` instance passes through unchanged
    (callers own its lifecycle; one instance must not be shared between
    concurrently running simulations).
    """
    if policy is None:
        policy = DEFAULT_DPM_POLICY
    if isinstance(policy, DPMPolicy):
        return policy
    try:
        cls = DPM_POLICIES[policy]
    except KeyError:
        raise ConfigError(
            f"unknown DPM policy {policy!r}; choose from {dpm_policy_names()}"
        ) from None
    return cls()


# -- the registered strategies --------------------------------------------------


@register_dpm_policy
class FixedThreshold(DPMPolicy):
    """The pre-control behavior: one static threshold, never updated."""

    name = "fixed"
    static = True

    def update(self, telemetry: IntervalTelemetry) -> np.ndarray:
        # Never reached by the engines (static policies skip the control
        # loop) but well-defined for direct controller use in tests.
        return np.asarray(telemetry.thresholds, dtype=float)


@register_dpm_policy
class AdaptiveTimeout(DPMPolicy):
    """Per-disk multiplicative-adjust timeout (Douglis et al. style).

    Each interval, each disk's closed idle gaps are scored against the
    threshold that governed them:

    * **regret** — the disk spun down (``gap > threshold``) but the
      post-threshold portion was shorter than the break-even time, so the
      transition cost more energy than standby saved;
    * **waste** — the disk idled through a gap longer than break-even
      without spinning down (``gap <= threshold`` and ``gap >
      breakeven``), burning idle watts a sleep would have saved.

    More regrets than wastes → the threshold was too eager: multiply it by
    ``factor``.  More wastes than regrets → too lazy: divide.  Clamped to
    ``[base/16, base*16]``; an infinite base threshold (spin-down
    disabled) is left untouched.  Every disk is scored against its *own*
    break-even time and clamped against its *own* base threshold, so a
    heterogeneous fleet's cheap-transition drives settle on tighter
    timeouts than its expensive ones.
    """

    name = "adaptive_timeout"
    factor = 2.0
    span = 16.0

    def _post_reset(self) -> None:
        self._th = self.base_thresholds.copy()
        self._lo = self.base_thresholds / self.span
        self._hi = self.base_thresholds * self.span

    def initial_thresholds(self) -> np.ndarray:
        return self._th.copy()

    def update(self, telemetry: IntervalTelemetry) -> np.ndarray:
        for d, gaps in enumerate(telemetry.gaps):
            be = self.breakevens[d]
            regrets = 0
            wastes = 0
            for gap, th in gaps:
                if gap > th:
                    if gap - th < be:
                        regrets += 1
                elif gap > be:
                    wastes += 1
            if regrets > wastes:
                self._th[d] = min(self._th[d] * self.factor, self._hi[d])
            elif wastes > regrets:
                self._th[d] = max(self._th[d] / self.factor, self._lo[d])
        return self._th.copy()


@register_dpm_policy
class ExponentialPredictive(DPMPolicy):
    """EWMA idle-period prediction (Hwang & Wu's exponential average).

    Each disk keeps an exponentially weighted moving average of its
    observed idle-gap lengths (``pred = alpha*gap + (1-alpha)*pred``,
    seeded at the disk's own break-even time).  While the predicted next
    idle period exceeds that disk's break-even it spins down
    *immediately* (threshold 0) — the predictive shortcut that beats any
    timeout when gaps are long and regular; otherwise the disk's base
    threshold applies.
    """

    name = "exponential_predictive"
    alpha = 0.5

    def _post_reset(self) -> None:
        self._pred = self.breakevens.copy()

    def update(self, telemetry: IntervalTelemetry) -> np.ndarray:
        alpha = self.alpha
        for d, gaps in enumerate(telemetry.gaps):
            pred = self._pred[d]
            for gap, _th in gaps:
                pred = alpha * gap + (1.0 - alpha) * pred
            self._pred[d] = pred
        return np.where(
            self._pred > self.breakevens, 0.0, self.base_thresholds
        )


@register_dpm_policy
class SloFeedback(DPMPolicy):
    """SLO-constrained threshold control: save power subject to a tail target.

    An array-wide feedback loop in the spirit of TimeTrader's slack
    exploitation: the controller watches the *running* P² estimate of the
    configured response-time percentile (the very quantity the run is
    judged on) and each interval

    * **relaxes** — multiplies the shared threshold by ``relax`` — while
      the estimate violates ``slo_target`` (fewer spin-downs, fewer
      spin-up waits, latency recovers at the cost of idle power);
    * **tightens** — divides by ``tighten`` — while the estimate sits
      below ``margin * slo_target`` (spend the latency slack on deeper
      power saving).

    Gains are asymmetric (relax fast, tighten slowly) so violations are
    corrected promptly and the threshold settles just tight enough to
    meet the target — typically between the points of any coarse static
    grid.  Clamped per disk to ``[base/32, base*32]``: the feedback
    signal is array-wide, but on a heterogeneous fleet each disk's
    threshold scales around its *own* base (infinite bases — spin-down
    disabled — are left untouched).
    """

    name = "slo_feedback"
    requires_slo = True
    relax = 2.0
    tighten = 1.25
    margin = 0.8
    span = 32.0

    def _post_reset(self) -> None:
        if self.slo_target is None:
            raise ConfigError(
                "slo_feedback requires an slo_target (seconds at the "
                "configured slo_percentile)"
            )
        self._th = self.base_thresholds.copy()
        self._lo = self.base_thresholds / self.span
        self._hi = self.base_thresholds * self.span

    def initial_thresholds(self) -> np.ndarray:
        return self._th.copy()

    def update(self, telemetry: IntervalTelemetry) -> np.ndarray:
        estimate = telemetry.slo_estimate
        if not math.isnan(estimate):
            finite = ~np.isinf(self._th)
            if estimate > self.slo_target:
                self._th[finite] = np.minimum(
                    self._th[finite] * self.relax, self._hi[finite]
                )
            elif estimate < self.margin * self.slo_target:
                self._th[finite] = np.maximum(
                    self._th[finite] / self.tighten, self._lo[finite]
                )
        return self._th.copy()
