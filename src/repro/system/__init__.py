"""System glue: configuration, dispatcher, storage system and runners.

This package wires the substrates together the way the paper's simulation
environment does: a workload generator feeds a *file dispatcher* which
forwards each request to the disk holding the file (per the allocation
mapping table), optionally after a shared whole-file cache lookup.
"""

from repro.system.config import StorageConfig
from repro.system.dispatcher import Dispatcher, drive_stream
from repro.system.metrics import SimulationResult
from repro.system.placement import (
    DEFAULT_WRITE_POLICY,
    PlacementContext,
    WritePlacementPolicy,
    make_placement_policy,
    placement_policy_names,
)
from repro.system.runner import (
    ALLOCATOR_NAMES,
    ReorganizingRunner,
    allocate,
    build_items,
    run_policy,
    simulate,
)
from repro.system.storage import StorageSystem

__all__ = [
    "ALLOCATOR_NAMES",
    "DEFAULT_WRITE_POLICY",
    "Dispatcher",
    "PlacementContext",
    "ReorganizingRunner",
    "SimulationResult",
    "StorageConfig",
    "StorageSystem",
    "WritePlacementPolicy",
    "allocate",
    "build_items",
    "drive_stream",
    "make_placement_policy",
    "placement_policy_names",
    "run_policy",
    "simulate",
]
