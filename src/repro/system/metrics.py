"""Simulation result container and derived metrics.

Two power metrics appear in the paper and both are provided:

* **pairwise saving** (Figure 2): ``1 - E_self / E_other`` against a
  baseline run over the same duration;
* **normalized power cost** (Figure 5): ``E / (N * P_idle * T)`` — energy as
  a fraction of spinning all ``N`` disks with no power management — with
  ``power_saving_normalized = 1 - cost``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.cache.base import CacheStats
from repro.disk.power import DiskState

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Everything measured in one simulation run."""

    algorithm: str
    duration: float
    num_disks: int
    energy: float
    energy_per_disk: np.ndarray
    state_durations: Dict[DiskState, float]
    response_times: np.ndarray
    arrivals: int
    completions: int
    spinups: int
    spindowns: int
    always_on_energy: float
    cache_stats: Optional[CacheStats] = None
    requests_per_disk: Optional[np.ndarray] = None
    spinups_per_disk: Optional[np.ndarray] = None
    #: Post-run ``file_id -> disk`` mapping (``-1`` = never allocated).
    #: Reflects every write allocation the run performed, so cross-engine
    #: tests can assert both kernels placed files identically.  ``None``
    #: for aggregate results (e.g. reorganizing runs spanning re-packs).
    final_mapping: Optional[np.ndarray] = None
    #: Free-form per-run extras: scalar annotations (``alloc_disks``) and
    #: structured traces (the control subsystem's per-interval ``"dpm"``
    #: record — thresholds, percentile estimates, power per interval).
    extra: Dict[str, Any] = field(default_factory=dict)

    # -- power ---------------------------------------------------------------

    @property
    def mean_power(self) -> float:
        """Average array draw over the run (W).

        ``nan`` for a non-positive duration — the same guard
        :attr:`normalized_power_cost` applies, so a degenerate (zero *or*
        negative) duration cannot return a sign-flipped wattage.
        """
        return self.energy / self.duration if self.duration > 0 else math.nan

    @property
    def normalized_power_cost(self) -> float:
        """Figure 5 normalization: energy / always-spinning energy."""
        if self.always_on_energy <= 0:
            return math.nan
        return self.energy / self.always_on_energy

    @property
    def power_saving_normalized(self) -> float:
        """``1 - normalized_power_cost`` (Figure 5's y-axis)."""
        return 1.0 - self.normalized_power_cost

    def power_saving_vs(self, other: "SimulationResult") -> float:
        """Figure 2's ratio: fraction of ``other``'s energy saved by self."""
        if other.energy <= 0:
            return math.nan
        return 1.0 - self.energy / other.energy

    # -- response time ---------------------------------------------------------

    @property
    def mean_response(self) -> float:
        """Mean response time of completed requests (s)."""
        return float(self.response_times.mean()) if self.response_times.size else math.nan

    @property
    def median_response(self) -> float:
        return float(np.median(self.response_times)) if self.response_times.size else math.nan

    def response_percentile(self, q: float) -> float:
        """q-th percentile (0-100) of response time."""
        if not self.response_times.size:
            return math.nan
        return float(np.percentile(self.response_times, q))

    @property
    def p95_response(self) -> float:
        """95th-percentile response time (the SLO-frontier headline)."""
        return self.response_percentile(95.0)

    @property
    def p99_response(self) -> float:
        """99th-percentile response time."""
        return self.response_percentile(99.0)

    @property
    def max_response(self) -> float:
        return float(self.response_times.max()) if self.response_times.size else math.nan

    def response_ratio_vs(self, other: "SimulationResult") -> float:
        """Figure 3's ratio: self mean response / other mean response."""
        denom = other.mean_response
        if not denom or denom != denom:
            return math.nan
        return self.mean_response / denom

    # -- sanity/diagnostics -----------------------------------------------------

    @property
    def completion_ratio(self) -> float:
        """Completed / arrived (requests still queued at cutoff lower this)."""
        return self.completions / self.arrivals if self.arrivals else math.nan

    def state_fraction(self, state: DiskState) -> float:
        """Fraction of total disk-time spent in ``state``."""
        total = self.duration * self.num_disks
        return self.state_durations.get(state, 0.0) / total if total else math.nan

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"{self.algorithm}: {self.num_disks} disks, {self.duration:.0f} s",
            f"  energy      {self.energy / 3.6e6:.3f} kWh "
            f"(mean power {self.mean_power:.1f} W, "
            f"normalized cost {self.normalized_power_cost:.3f})",
            f"  response    mean {self.mean_response:.2f} s, "
            f"median {self.median_response:.2f} s, "
            f"p95 {self.response_percentile(95):.2f} s",
            f"  requests    {self.completions}/{self.arrivals} completed, "
            f"{self.spinups} spin-ups, {self.spindowns} spin-downs",
        ]
        if self.cache_stats is not None and self.cache_stats.lookups:
            lines.append(
                f"  cache       hit ratio {self.cache_stats.hit_ratio:.3f} "
                f"({self.cache_stats.hits}/{self.cache_stats.lookups})"
            )
        return "\n".join(lines)
