"""Simulation result container, derived metrics, and streaming accumulators.

Two power metrics appear in the paper and both are provided:

* **pairwise saving** (Figure 2): ``1 - E_self / E_other`` against a
  baseline run over the same duration;
* **normalized power cost** (Figure 5): ``E / (N * P_idle * T)`` — energy as
  a fraction of spinning all ``N`` disks with no power management — with
  ``power_saving_normalized = 1 - cost``.

Out-of-core runs (``StorageConfig(metrics_mode="streaming")``) do not
materialize the per-request response array: :class:`ResponseAccumulator`
folds responses chunk by chunk into bounded state (count / serial sum /
min / max plus P² percentile estimators), and :class:`SimulationResult`
answers ``mean_response`` / ``p95_response`` / ... from the resulting
:class:`ResponseStats` when ``response_times`` is ``None``.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.cache.base import CacheStats
from repro.control.telemetry import P2Quantile
from repro.disk.power import DiskState

__all__ = ["ResponseAccumulator", "ResponseStats", "SimulationResult"]

_NO_COMPLETIONS_MSG = (
    "no completed requests in this run; response statistics are undefined "
    "(returning NaN)"
)


def _nan_no_completions() -> float:
    warnings.warn(_NO_COMPLETIONS_MSG, RuntimeWarning, stacklevel=4)
    return math.nan


@dataclass(frozen=True)
class ResponseStats:
    """Bounded-memory summary of a run's response times.

    ``total`` is the serial (left-to-right) sum of every response, so
    ``total / count`` reproduces the monolithic mean bit-for-bit regardless
    of how the stream was chunked.  The percentiles are P² estimates
    (see :class:`~repro.control.telemetry.P2Quantile`): approximate, but
    deterministic in the global response order and therefore independent
    of the chunk partition.
    """

    count: int
    total: float
    min: float
    max: float
    p50: float
    p95: float
    p99: float
    #: Observations actually folded into the P² estimators (all of the
    #: first ``ResponseAccumulator.P2_WARMUP`` responses, then every
    #: ``P2_STRIDE``-th — a deterministic thinning, not a random sample).
    p2_observations: int = 0
    #: A lossy :meth:`merge` already happened somewhere upstream (and
    #: warned); percentiles are ``nan`` and further merges stay silent.
    percentiles_lost: bool = False

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    @staticmethod
    def merge(parts: "list") -> "ResponseStats":
        """Combine stats from independent sub-runs (e.g. reorganization
        epochs).  ``count``/``min``/``max`` merge exactly and ``total``
        to float-regrouping noise; the P² percentile estimators cannot be
        combined after the fact, so the merged percentiles are ``nan``
        unless exactly one non-empty part contributes them.

        Dropping the percentiles is loud: the first lossy merge emits a
        :class:`RuntimeWarning` and marks the result
        (:attr:`percentiles_lost`), so chained merges — epochs folded
        pairwise, or a merged result merged again — warn **once** per
        chain rather than once per fold.
        """
        parts = [p for p in parts if p is not None]
        live = [p for p in parts if p.count]
        if not live:
            return ResponseStats(
                count=0, total=0.0, min=math.nan, max=math.nan,
                p50=math.nan, p95=math.nan, p99=math.nan,
            )
        if len(live) == 1:
            return live[0]
        if not any(p.percentiles_lost for p in live):
            warnings.warn(
                "ResponseStats.merge cannot combine P² percentile "
                "estimators: merged p50/p95/p99 are NaN. Compute "
                "percentiles per part before merging (each part keeps "
                "its own estimates), or re-run unchunked with "
                "metrics_mode='full' if you need exact merged tails.",
                RuntimeWarning,
                stacklevel=2,
            )
        return ResponseStats(
            count=sum(p.count for p in live),
            total=sum(p.total for p in live),
            min=min(p.min for p in live),
            max=max(p.max for p in live),
            p50=math.nan,
            p95=math.nan,
            p99=math.nan,
            p2_observations=0,
            percentiles_lost=True,
        )

    def percentile(self, q: float) -> Optional[float]:
        """The tracked estimate for ``q``, or ``None`` if ``q`` is not one
        of the three tracked percentiles (50 / 95 / 99)."""
        for target, value in ((50.0, self.p50), (95.0, self.p95), (99.0, self.p99)):
            if abs(float(q) - target) < 1e-9:
                return value
        return None


class ResponseAccumulator:
    """Folds response times chunk by chunk into a :class:`ResponseStats`.

    Exactness contract (the streaming differential axis asserts it):

    * ``count`` / ``min`` / ``max`` are exact;
    * ``total`` (hence the mean) is the *serial* sum in global response
      order — ``np.add.at`` into a one-element carry continues the exact
      monolithic left-to-right reduction across chunk boundaries, so the
      result is bit-identical for every partition of the same stream;
    * percentiles are P² estimates fed in global order.  Every response is
      fed until :data:`P2_WARMUP`; past that only every
      :data:`P2_STRIDE`-th response (by *global* index) is folded in, so
      the estimate stays partition-invariant while the estimator cost
      (~0.6 us/obs) stops throttling the ~0.1 us/req kernel.
    """

    #: Feed the P² estimators every response until this many have arrived.
    P2_WARMUP = 65_536
    #: After warmup, feed every ``P2_STRIDE``-th response (global index).
    P2_STRIDE = 8

    __slots__ = ("count", "_sum", "_min", "_max", "_p50", "_p95", "_p99")

    def __init__(self) -> None:
        self.count = 0
        self._sum = np.zeros(1)
        self._min = math.inf
        self._max = -math.inf
        self._p50 = P2Quantile(50.0)
        self._p95 = P2Quantile(95.0)
        self._p99 = P2Quantile(99.0)

    def add(self, values: np.ndarray) -> None:
        """Fold one chunk of responses (in global response order)."""
        v = np.ascontiguousarray(values, dtype=float).ravel()
        n = int(v.size)
        if not n:
            return
        start = self.count
        # Serial continuation of the monolithic left-to-right sum.
        np.add.at(self._sum, np.zeros(n, dtype=np.intp), v)
        self._min = min(self._min, float(v.min()))
        self._max = max(self._max, float(v.max()))
        # Deterministic warmup + stride selection by global index.
        warm_end = min(max(self.P2_WARMUP - start, 0), n)
        feed = v[:warm_end]
        if start + n > self.P2_WARMUP:
            first = max(self.P2_WARMUP, start)
            offset = (first - start) + (-(first - self.P2_WARMUP)) % self.P2_STRIDE
            strided = v[offset :: self.P2_STRIDE]
            feed = strided if not warm_end else np.concatenate([feed, strided])
        if feed.size:
            feed_list = feed.tolist()
            self._p50.add_many(feed_list)
            self._p95.add_many(feed_list)
            self._p99.add_many(feed_list)
        self.count += n

    def result(self) -> ResponseStats:
        """Freeze the current state into an immutable :class:`ResponseStats`."""
        empty = self.count == 0
        return ResponseStats(
            count=self.count,
            total=float(self._sum[0]),
            min=math.nan if empty else self._min,
            max=math.nan if empty else self._max,
            p50=self._p50.value,
            p95=self._p95.value,
            p99=self._p99.value,
            p2_observations=self._p50.count,
        )


@dataclass
class SimulationResult:
    """Everything measured in one simulation run."""

    algorithm: str
    duration: float
    num_disks: int
    energy: float
    energy_per_disk: np.ndarray
    state_durations: Dict[DiskState, float]
    #: Per-request response times in completion order, or ``None`` for
    #: streaming-metrics runs (``metrics_mode="streaming"``) — then
    #: :attr:`response_stats` carries the bounded-memory summary and the
    #: response properties below answer from it.
    response_times: Optional[np.ndarray]
    arrivals: int
    completions: int
    spinups: int
    spindowns: int
    always_on_energy: float
    cache_stats: Optional[CacheStats] = None
    requests_per_disk: Optional[np.ndarray] = None
    spinups_per_disk: Optional[np.ndarray] = None
    #: Post-run ``file_id -> disk`` mapping (``-1`` = never allocated).
    #: Reflects every write allocation the run performed, so cross-engine
    #: tests can assert both kernels placed files identically.  ``None``
    #: for aggregate results (e.g. reorganizing runs spanning re-packs).
    final_mapping: Optional[np.ndarray] = None
    #: Free-form per-run extras: scalar annotations (``alloc_disks``) and
    #: structured traces (the control subsystem's per-interval ``"dpm"``
    #: record — thresholds, percentile estimates, power per interval).
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Streaming response summary; present whenever :attr:`response_times`
    #: is ``None`` (and may accompany the full array too).
    response_stats: Optional[ResponseStats] = None

    # -- power ---------------------------------------------------------------

    @property
    def mean_power(self) -> float:
        """Average array draw over the run (W).

        ``nan`` for a non-positive duration — the same guard
        :attr:`normalized_power_cost` applies, so a degenerate (zero *or*
        negative) duration cannot return a sign-flipped wattage.
        """
        return self.energy / self.duration if self.duration > 0 else math.nan

    @property
    def normalized_power_cost(self) -> float:
        """Figure 5 normalization: energy / always-spinning energy."""
        if self.always_on_energy <= 0:
            return math.nan
        return self.energy / self.always_on_energy

    @property
    def power_saving_normalized(self) -> float:
        """``1 - normalized_power_cost`` (Figure 5's y-axis)."""
        return 1.0 - self.normalized_power_cost

    def power_saving_vs(self, other: "SimulationResult") -> float:
        """Figure 2's ratio: fraction of ``other``'s energy saved by self."""
        if other.energy <= 0:
            return math.nan
        return 1.0 - self.energy / other.energy

    # -- response time ---------------------------------------------------------

    @property
    def mean_response(self) -> float:
        """Mean response time of completed requests (s).

        Zero-completion runs warn and return ``nan`` (both representations);
        streaming runs answer from :attr:`response_stats` (exact — the
        accumulator's serial sum matches the monolithic mean bit-for-bit).
        """
        if self.response_times is not None:
            if self.response_times.size:
                return float(self.response_times.mean())
            return _nan_no_completions()
        if self.response_stats is not None and self.response_stats.count:
            return self.response_stats.mean
        return _nan_no_completions()

    @property
    def median_response(self) -> float:
        """Median response time (P² estimate in streaming mode)."""
        if self.response_times is not None:
            if self.response_times.size:
                return float(np.median(self.response_times))
            return _nan_no_completions()
        # Streaming mode: route through response_percentile so the
        # percentiles_lost guard covers the median too.
        return self.response_percentile(50.0)

    def response_percentile(self, q: float) -> float:
        """q-th percentile (0-100) of response time.

        In streaming mode only q in {50, 95, 99} are tracked (as P²
        estimates); other q warn and return ``nan``.
        """
        if self.response_times is not None:
            if not self.response_times.size:
                return _nan_no_completions()
            return float(np.percentile(self.response_times, q))
        if self.response_stats is None or not self.response_stats.count:
            return _nan_no_completions()
        if self.response_stats.percentiles_lost:
            # The merge already warned once; reading a percentile off the
            # merged result is the moment a NaN would silently reach a
            # table/plot, so say it again here (reprolint R006's runtime
            # counterpart).
            warnings.warn(
                "this result's ResponseStats were merged across parts and "
                "the P² percentile estimators could not be combined "
                "(percentiles_lost=True): percentiles are NaN. Read "
                "per-part percentiles before merging, or re-run with "
                "metrics_mode='full'.",
                RuntimeWarning,
                stacklevel=3,
            )
            return math.nan
        value = self.response_stats.percentile(q)
        if value is None:
            warnings.warn(
                f"streaming metrics track only p50/p95/p99; "
                f"percentile {q:g} is unavailable (returning NaN)",
                RuntimeWarning,
                stacklevel=3,
            )
            return math.nan
        return value

    @property
    def p95_response(self) -> float:
        """95th-percentile response time (the SLO-frontier headline)."""
        return self.response_percentile(95.0)

    @property
    def p99_response(self) -> float:
        """99th-percentile response time."""
        return self.response_percentile(99.0)

    @property
    def max_response(self) -> float:
        """Largest completed response time (exact in both modes)."""
        if self.response_times is not None:
            if self.response_times.size:
                return float(self.response_times.max())
            return _nan_no_completions()
        if self.response_stats is not None and self.response_stats.count:
            return self.response_stats.max
        return _nan_no_completions()

    def response_ratio_vs(self, other: "SimulationResult") -> float:
        """Figure 3's ratio: self mean response / other mean response."""
        denom = other.mean_response
        if not denom or denom != denom:
            return math.nan
        return self.mean_response / denom

    # -- sanity/diagnostics -----------------------------------------------------

    @property
    def completion_ratio(self) -> float:
        """Completed / arrived (requests still queued at cutoff lower this)."""
        return self.completions / self.arrivals if self.arrivals else math.nan

    def state_fraction(self, state: DiskState) -> float:
        """Fraction of total disk-time spent in ``state``."""
        total = self.duration * self.num_disks
        return self.state_durations.get(state, 0.0) / total if total else math.nan

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        if not self.completions:
            resp_line = "  response    (no completed requests)"
        elif (
            self.response_times is None
            and self.response_stats is not None
            and self.response_stats.percentiles_lost
        ):
            # Merged streaming stats: the P² estimators were dropped at
            # merge time (which already warned).  mean/max are still
            # exact — report those and name the loss, rather than
            # printing "median nan s, p95 nan s" and re-firing the
            # percentiles_lost warning once per percentile read.
            stats = self.response_stats
            resp_line = (
                f"  response    mean {stats.mean:.2f} s, "
                f"max {stats.max:.2f} s (percentiles lost in merge)"
            )
        else:
            resp_line = (
                f"  response    mean {self.mean_response:.2f} s, "
                f"median {self.median_response:.2f} s, "
                f"p95 {self.response_percentile(95):.2f} s"
            )
        lines = [
            f"{self.algorithm}: {self.num_disks} disks, {self.duration:.0f} s",
            f"  energy      {self.energy / 3.6e6:.3f} kWh "
            f"(mean power {self.mean_power:.1f} W, "
            f"normalized cost {self.normalized_power_cost:.3f})",
            resp_line,
            f"  requests    {self.completions}/{self.arrivals} completed, "
            f"{self.spinups} spin-ups, {self.spindowns} spin-downs",
        ]
        if self.cache_stats is not None and self.cache_stats.lookups:
            lines.append(
                f"  cache       hit ratio {self.cache_stats.hit_ratio:.3f} "
                f"({self.cache_stats.hits}/{self.cache_stats.lookups})"
            )
        return "\n".join(lines)
