"""Pluggable write-placement policies (the paper's §1.1 rule and friends).

The paper fixes one write-allocation rule: best-fit among spinning disks,
worst-fit fallback among all disks with room.  That rule is exactly the
power/response lever the placement ablation sweeps, so it lives here as one
of several registered :class:`WritePlacementPolicy` strategies, selected
via ``StorageConfig(write_policy=...)`` and honored **identically** by both
simulation engines:

* the event kernel's :class:`~repro.system.dispatcher.Dispatcher` calls the
  policy from ``_allocate_for_write``;
* the fast kernel (:mod:`repro.sim.fastkernel`) calls the same policy
  instance at its write-allocation coupling points.

Both engines hand the policy an identical :class:`PlacementContext` — the
per-disk spin mask, free bytes and cumulative dispatched service seconds
are maintained with the same per-request accumulation order on both sides,
so every policy's decisions (including float-tie argmins) are
byte-identical across engines.  Policies carrying state across decisions
(:class:`RoundRobin`'s cursor) stay in sync because allocation decisions
happen in stream order in both engines.

Registered policies
-------------------

==================== ========================================================
name                 rule (ties break toward the lowest disk id)
==================== ========================================================
spinning_best_fit    paper §1.1: best-fit (tightest room) among spinning
                     disks; worst-fit fallback among all disks with room
spinning_worst_fit   worst-fit (most room) among spinning disks; worst-fit
                     fallback — spreads writes over the loaded disks
first_fit_spinning   lowest-id spinning disk with room; worst-fit fallback
fullest_spinning     best-fit among spinning *and* best-fit fallback —
                     isolates the effect of §1.1's worst-fit standby rule
round_robin          cyclic cursor over all disks with room, spin-oblivious
                     (the classic load-spreading, spin-up-heavy baseline)
coldest_disk         the most-idle disk with room (least cumulative
                     dispatched service time), spin-oblivious
hottest_spinning     popularity-aware: the busiest spinning disk with room
                     (highest cumulative dispatched service time — the
                     observed heat ledger); worst-fit standby fallback
cheapest_spinning    spec-aware (heterogeneous fleets): the lowest
                     active-power spinning disk with room; worst-fit
                     standby fallback — steers new data onto the
                     efficient generation of a mixed fleet
==================== ========================================================

Use :func:`make_placement_policy` to instantiate by name and
:func:`placement_policy_names` to iterate the registry (tests do, so new
policies are covered by the cross-engine equivalence grid automatically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type, Union

import numpy as np

from repro.errors import CapacityError, ConfigError

__all__ = [
    "DEFAULT_WRITE_POLICY",
    "PlacementContext",
    "WritePlacementPolicy",
    "make_placement_policy",
    "placement_policy_names",
    "register_placement_policy",
    "spinning_best_fit_choice",
]

#: The paper's §1.1 rule; what ``StorageConfig.write_policy`` defaults to.
DEFAULT_WRITE_POLICY = "spinning_best_fit"


@dataclass
class PlacementContext:
    """Everything a policy may consult when placing one write.

    Attributes
    ----------
    time:
        Simulation time of the allocation decision.
    spinning:
        Per-disk bool mask: ``True`` unless the disk is in STANDBY
        (SEEK/ACTIVE/IDLE/SPINUP/SPINDOWN all count as spinning, matching
        :attr:`repro.disk.power.DiskState.spinning`).
    free:
        Per-disk free bytes under the current mapping.
    load:
        Per-disk cumulative *dispatched* service seconds (access overhead +
        transfer time of every request routed to the disk so far, cache
        hits excluded).  Both engines accumulate this in the same
        per-request order, so comparisons are exact across engines.
    capacity:
        Per-disk usable byte budget (heterogeneous fleets differ per
        disk).  ``None`` when the caller predates the fleet refactor;
        spec-blind policies never consult it.
    active_power:
        Per-disk active power draw (W) from the fleet's specs — the
        power-rank view spec-aware policies (``cheapest_spinning``) place
        by.  ``None`` when unavailable.
    """

    time: float
    spinning: np.ndarray
    free: np.ndarray
    load: np.ndarray
    capacity: Optional[np.ndarray] = None
    active_power: Optional[np.ndarray] = None


def _no_room(size: float) -> CapacityError:
    return CapacityError(
        f"no disk has {size:.0f} free bytes for the written file"
    )


def _worst_fit(free: np.ndarray, size: float) -> int:
    """Most free space among disks with room (§1.1's standby fallback)."""
    feasible = np.flatnonzero(free >= size)
    if feasible.size == 0:
        raise _no_room(size)
    return int(feasible[np.argmax(free[feasible])])


def _best_fit(free: np.ndarray, size: float) -> int:
    """Tightest remaining space among disks with room."""
    feasible = np.flatnonzero(free >= size)
    if feasible.size == 0:
        raise _no_room(size)
    return int(feasible[np.argmin(free[feasible])])


class WritePlacementPolicy:
    """Base class: one placement decision per not-yet-mapped written file.

    Subclasses set ``name`` (the registry key) and implement
    :meth:`choose`.  :meth:`reset` is called once per simulation run with
    the pool size; stateful policies (e.g. :class:`RoundRobin`) initialize
    their cross-decision state there.
    """

    name: str = ""

    def reset(self, num_disks: int) -> None:
        """Prepare per-run state (default: stateless, nothing to do)."""

    def choose(self, ctx: PlacementContext, size: float) -> int:
        """Return the disk index for a ``size``-byte new file.

        Must raise :class:`~repro.errors.CapacityError` when no disk has
        room; must never return a disk with ``free < size``.
        """
        raise NotImplementedError


#: name -> policy class.  Populated by :func:`register_placement_policy`.
PLACEMENT_POLICIES: Dict[str, Type[WritePlacementPolicy]] = {}


def register_placement_policy(
    cls: Type[WritePlacementPolicy],
) -> Type[WritePlacementPolicy]:
    """Class decorator adding a policy to the registry (keyed by ``name``)."""
    if not cls.name:
        raise ConfigError(f"{cls.__name__} must set a non-empty name")
    if cls.name in PLACEMENT_POLICIES:
        raise ConfigError(f"duplicate placement policy {cls.name!r}")
    PLACEMENT_POLICIES[cls.name] = cls
    return cls


def placement_policy_names() -> Tuple[str, ...]:
    """All registered policy names (registration order; default first)."""
    return tuple(PLACEMENT_POLICIES)


def make_placement_policy(
    policy: Union[str, WritePlacementPolicy, None] = None,
) -> WritePlacementPolicy:
    """Instantiate a policy by registry name (``None`` = the §1.1 default).

    A ready-made :class:`WritePlacementPolicy` instance passes through
    unchanged (callers own its lifecycle; remember one instance must not be
    shared between concurrently running simulations if it is stateful).
    """
    if policy is None:
        policy = DEFAULT_WRITE_POLICY
    if isinstance(policy, WritePlacementPolicy):
        return policy
    try:
        cls = PLACEMENT_POLICIES[policy]
    except KeyError:
        raise ConfigError(
            f"unknown write placement policy {policy!r}; choose from "
            f"{placement_policy_names()}"
        ) from None
    return cls()


# -- the registered strategies --------------------------------------------------


def spinning_best_fit_choice(
    spinning: np.ndarray, free: np.ndarray, size: float
) -> int:
    """The paper §1.1 decision as a plain function (shared compat shim).

    Best-fit among spinning disks with room; otherwise worst-fit among all
    disks with room, so one unlucky spin-up absorbs as many future writes
    as possible.  Ties break toward the lowest disk id in both branches.
    """
    candidates = np.flatnonzero(spinning & (free >= size))
    if candidates.size:
        return int(candidates[np.argmin(free[candidates])])
    return _worst_fit(free, size)


@register_placement_policy
class SpinningBestFit(WritePlacementPolicy):
    """Paper §1.1: best-fit among spinning, worst-fit standby fallback."""

    name = "spinning_best_fit"

    def choose(self, ctx: PlacementContext, size: float) -> int:
        return spinning_best_fit_choice(ctx.spinning, ctx.free, size)


@register_placement_policy
class SpinningWorstFit(WritePlacementPolicy):
    """Worst-fit among spinning disks (spread writes); worst-fit fallback."""

    name = "spinning_worst_fit"

    def choose(self, ctx: PlacementContext, size: float) -> int:
        candidates = np.flatnonzero(ctx.spinning & (ctx.free >= size))
        if candidates.size:
            return int(candidates[np.argmax(ctx.free[candidates])])
        return _worst_fit(ctx.free, size)


@register_placement_policy
class FirstFitSpinning(WritePlacementPolicy):
    """Lowest-id spinning disk with room; worst-fit standby fallback."""

    name = "first_fit_spinning"

    def choose(self, ctx: PlacementContext, size: float) -> int:
        candidates = np.flatnonzero(ctx.spinning & (ctx.free >= size))
        if candidates.size:
            return int(candidates[0])
        return _worst_fit(ctx.free, size)


@register_placement_policy
class FullestSpinning(WritePlacementPolicy):
    """Best-fit among spinning *and* on fallback (no worst-fit rule).

    The spinning branch matches :class:`SpinningBestFit` exactly; only the
    all-disks-standby fallback differs (fullest feasible disk instead of
    emptiest), so sweeping the two isolates how much §1.1's worst-fit
    standby rule actually buys.
    """

    name = "fullest_spinning"

    def choose(self, ctx: PlacementContext, size: float) -> int:
        candidates = np.flatnonzero(ctx.spinning & (ctx.free >= size))
        if candidates.size:
            return int(candidates[np.argmin(ctx.free[candidates])])
        return _best_fit(ctx.free, size)


@register_placement_policy
class RoundRobin(WritePlacementPolicy):
    """Cyclic cursor over all disks with room, ignoring spin state.

    The classic load-spreading baseline: maximally even placement at the
    cost of waking standby disks.  The cursor advances past the chosen
    disk; infeasible disks are skipped without consuming the turn.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self, num_disks: int) -> None:
        self._cursor = 0

    def choose(self, ctx: PlacementContext, size: float) -> int:
        n = int(ctx.free.shape[0])
        order = (np.arange(n) + self._cursor) % n
        feasible = ctx.free[order] >= size
        if not feasible.any():
            raise _no_room(size)
        disk = int(order[int(np.argmax(feasible))])
        self._cursor = (disk + 1) % n
        return disk


@register_placement_policy
class ColdestDisk(WritePlacementPolicy):
    """The most-idle disk with room, ignoring spin state.

    "Coldest" = least cumulative dispatched service time
    (:attr:`PlacementContext.load`), i.e. the disk that has been the most
    idle over the run so far.  Spreads new data away from the hot spindles
    — the anti-§1.1 strategy that trades spin-up energy for queueing
    headroom.
    """

    name = "coldest_disk"

    def choose(self, ctx: PlacementContext, size: float) -> int:
        feasible = np.flatnonzero(ctx.free >= size)
        if feasible.size == 0:
            raise _no_room(size)
        return int(feasible[np.argmin(ctx.load[feasible])])


@register_placement_policy
class HottestSpinning(WritePlacementPolicy):
    """Popularity-aware §1.1 variant: pile writes onto the *hottest* spindle.

    "Hottest" = highest cumulative dispatched service time
    (:attr:`PlacementContext.load`) — the same observed per-disk heat the
    reorganizer estimates popularities from, already carried by both
    engines' placement contexts.  Concentrating new data where the traffic
    already is keeps the cold disks' idle gaps long (deeper spin-down
    residency than best-fit-by-space can achieve) at the cost of queueing
    on the hot disk.  Falls back to §1.1's worst-fit among standby disks
    so one unlucky spin-up absorbs future writes.  Ties break toward the
    lowest disk id.
    """

    name = "hottest_spinning"

    def choose(self, ctx: PlacementContext, size: float) -> int:
        candidates = np.flatnonzero(ctx.spinning & (ctx.free >= size))
        if candidates.size:
            return int(candidates[np.argmax(ctx.load[candidates])])
        return _worst_fit(ctx.free, size)


@register_placement_policy
class CheapestSpinning(WritePlacementPolicy):
    """Spec-aware §1.1 variant: the cheapest-to-run spinning disk wins.

    Among spinning disks with room, place on the one with the lowest
    *active power* draw (:attr:`PlacementContext.active_power`) — on a
    mixed-generation fleet that routes new data onto the efficient
    drives, letting the power-hungry generation stay idle long enough to
    spin down.  Ties (uniform fleets: every draw equal) break toward the
    lowest disk id, and without a power view the policy degrades to
    first-fit among spinning.  Falls back to §1.1's worst-fit among
    standby disks so one unlucky spin-up absorbs future writes.
    """

    name = "cheapest_spinning"

    def choose(self, ctx: PlacementContext, size: float) -> int:
        candidates = np.flatnonzero(ctx.spinning & (ctx.free >= size))
        if candidates.size:
            if ctx.active_power is None:
                return int(candidates[0])
            return int(candidates[np.argmin(ctx.active_power[candidates])])
        return _worst_fit(ctx.free, size)
