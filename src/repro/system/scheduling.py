"""Slack-aware request scheduling (the TimeTrader idea) for both engines.

The paper's trade-off is spin-down energy vs. response time, yet classic
runs dispatch every request the instant it arrives.  TimeTrader
(arXiv 1503.05338) observes that most requests sit far below their tail
SLO — that *per-request slack* can be spent holding requests back, which
lengthens idle gaps, deepens spin-down residency and coalesces wake-ups.
This module is the registry of :class:`RequestScheduler` strategies that
spend that slack, selected via ``StorageConfig(scheduler=...,
scheduler_params=...)`` and honored **identically** by both simulation
engines:

* the event kernel routes arrivals through a release-queue process
  (:func:`repro.system.dispatcher.drive_scheduled_stream`) sitting
  between the stream replay and :meth:`Dispatcher.submit`;
* the fast kernel (:mod:`repro.sim.fastkernel`) runs the same scheduler
  instance as a chunk-carrying pre-pass that transforms arrival chunks
  into release-ordered feeds.

Parity by construction
----------------------

A scheduler never reads engine-internal state.  Its release decisions
are a pure function of (a) the arrival sequence itself, (b) the
run-constant :class:`SchedulingSetup` both engines derive from the same
``StorageConfig``, (c) its **own** deterministic disk model — a private
Lindley/spin-state predictor fed only by its past decisions — and
(d) the optional interval-constant ``slo_estimate`` telemetry published
by the :class:`~repro.control.controller.ThresholdController` at control
boundaries.  Decisions are made in arrival order and release times are
immutable once assigned, so both engines derive the *same* release time
for every request and then submit released requests in the same stable
``(release_time, arrival_sequence)`` order.  The existing 1e-9
engine-equivalence contract then applies to the released stream
unchanged (``tests/differential`` samples scheduler x params via
``REPRO_DIFF_SCHED_CASES``).

Response accounting: a held request's recorded response time measures
from its **original arrival** (hold + queueing + service), not from its
release — deferral is never free, so the energy/p95 frontier the
``slo-frontier`` scheduler axis reports is honest.  Both engines add the
identical hold to the kernel-measured response, keeping bit-parity.

Registered schedulers
---------------------

================ =============================================================
name             rule (``t`` = arrival time, release is always in
                 ``[t, t + max_hold]``)
================ =============================================================
fifo             release = t: today's behavior.  ``StorageConfig`` routes it
                 through the classic unscheduled path, byte-identical to the
                 pre-scheduler simulator (regression-pinned).
slack_defer      project this request's response off the internal disk model;
                 if it sits below ``margin * target`` (and the controller's
                 live percentile estimate, when present, is also below that
                 budget) defer by the spare slack, extending the idle gap it
                 would otherwise cut short.
batch_release    quantize releases up to the next ``window`` epoch so
                 arrivals land in bunches — the classic idle-gap-extending
                 batcher, bounded by ``max_hold``.
spinup_coalesce  park arrivals whose destination disk the model predicts
                 asleep and release the whole parked group together at the
                 group's deadline, so one wake-up (break-even once any
                 request must pay it anyway) absorbs every parked request;
                 requests to spinning or not-yet-placed files pass through.
================ =============================================================

Use :func:`make_request_scheduler` to instantiate by name and
:func:`request_scheduler_names` to iterate the registry (the parity
grids do, so new schedulers are covered automatically — reprolint R003
enforces it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type, Union

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "DEFAULT_SCHEDULER",
    "RequestScheduler",
    "SchedulingSetup",
    "build_scheduling_setup",
    "make_request_scheduler",
    "normalize_scheduler_params",
    "request_scheduler_names",
    "register_request_scheduler",
]

#: What ``StorageConfig.scheduler`` defaults to (the classic behavior).
DEFAULT_SCHEDULER = "fifo"


@dataclass
class SchedulingSetup:
    """Run-constant inputs a scheduler may consult (identical per engine).

    Attributes
    ----------
    num_disks:
        Pool size.
    mapping:
        The scheduler's private copy of the *initial* ``file_id -> disk``
        table (``-1`` = not yet placed).  Deliberately frozen at run
        start: write placement happens at submit time inside the engines,
        so files placed mid-run are simply unknown here — such requests
        pass through unscheduled, identically on both sides.
    sizes:
        ``file_id -> bytes``.
    access_overhead / transfer_rate:
        Per-disk service constants (seconds, bytes/s).
    threshold:
        Per-disk idle threshold seeding the spin predictor (the
        *configured* first-descent threshold; dynamic controllers move
        the real one mid-run, which the predictor deliberately ignores —
        it is a deterministic heuristic, not a replica of engine state).
    spindown_time / spinup_time:
        Per-disk transition times for the spin predictor.
    slo_target / slo_percentile:
        The run's response-time objective (``None`` when unset).
    """

    num_disks: int
    mapping: np.ndarray
    sizes: np.ndarray
    access_overhead: np.ndarray
    transfer_rate: np.ndarray
    threshold: np.ndarray
    spindown_time: np.ndarray
    spinup_time: np.ndarray
    slo_target: Optional[float]
    slo_percentile: float


def build_scheduling_setup(
    config, sizes: np.ndarray, mapping: np.ndarray, num_disks: int
) -> SchedulingSetup:
    """The :class:`SchedulingSetup` for one run.

    Both engines call this with the same config/catalog/mapping, so the
    scheduler's view — and therefore every release decision — is
    identical across engines by construction.
    """
    if config.fleet is not None:
        fleet = config.resolved_fleet(num_disks)
        oh = fleet.access_overheads
        rate = fleet.transfer_rates
        th = fleet.thresholds.astype(float, copy=True)
        down = fleet.spindown_times
        up = fleet.spinup_times
    else:
        spec = config.spec
        oh = np.full(num_disks, float(spec.access_overhead))
        rate = np.full(num_disks, float(spec.transfer_rate))
        th = np.full(num_disks, float(config.threshold))
        down = np.full(num_disks, float(spec.spindown_time))
        up = np.full(num_disks, float(spec.spinup_time))
    return SchedulingSetup(
        num_disks=int(num_disks),
        mapping=np.asarray(mapping, dtype=np.int64).copy(),
        sizes=np.asarray(sizes, dtype=float),
        access_overhead=oh,
        transfer_rate=rate,
        threshold=th,
        spindown_time=down,
        spinup_time=up,
        slo_target=config.slo_target,
        slo_percentile=float(config.slo_percentile),
    )


def normalize_scheduler_params(
    params: Union[None, dict, tuple, list]
) -> Tuple[Tuple[str, float], ...]:
    """Canonical hashable form: a sorted tuple of ``(name, value)`` pairs.

    ``StorageConfig`` is frozen and pickled into sweep-cache fingerprints,
    so params must normalize to one hashable representation — a dict and
    its equivalent pair-tuple must fingerprint identically.
    """
    if params is None:
        return ()
    if isinstance(params, dict):
        items = params.items()
    elif isinstance(params, (tuple, list)):
        items = []
        for pair in params:
            if not (isinstance(pair, (tuple, list)) and len(pair) == 2):
                raise ConfigError(
                    "scheduler_params must be a dict or (name, value) "
                    f"pairs, got entry {pair!r}"
                )
            items.append(tuple(pair))
    else:
        raise ConfigError(
            f"scheduler_params must be a dict or (name, value) pairs, "
            f"got {params!r}"
        )
    out = []
    for key, value in items:
        if not isinstance(key, str):
            raise ConfigError(f"scheduler param name must be str, got {key!r}")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigError(
                f"scheduler param {key!r} must be numeric, got {value!r}"
            )
        out.append((key, float(value)))
    out.sort()
    names = [k for k, _ in out]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate scheduler param in {names}")
    return tuple(out)


class _DiskModel:
    """The scheduler's private disk predictor (Lindley + two spin states).

    Mirrors the arithmetic of the engines' serve recursion (next-free
    time, threshold-triggered spin-down, wake penalty) but is fed only by
    the scheduler's own commits — it is a deterministic *forecast* shared
    verbatim by both engines, never a readout of either engine's truth
    (caches, dynamic thresholds and placement updates are invisible to
    it on purpose).
    """

    __slots__ = ("avail", "_oh", "_rate", "_th", "_down", "_up")

    def __init__(self, setup: SchedulingSetup) -> None:
        self.avail = np.zeros(setup.num_disks, dtype=float)
        self._oh = setup.access_overhead
        self._rate = setup.transfer_rate
        self._th = setup.threshold
        self._down = setup.spindown_time
        self._up = setup.spinup_time

    def projected_start(self, d: int, t: float) -> float:
        """Predicted service start for a request hitting disk ``d`` at ``t``."""
        a = self.avail[d]
        if t <= a:
            return a
        if t - a > self._th[d]:
            sd_end = a + self._th[d] + self._down[d]
            return (t if t >= sd_end else sd_end) + self._up[d]
        return t

    def sleeping(self, d: int, t: float) -> bool:
        """Predicted fully-in-standby at ``t`` (spin-down already drained)."""
        return t >= self.avail[d] + self._th[d] + self._down[d]

    def service_time(self, d: int, size: float) -> float:
        return self._oh[d] + size / self._rate[d]

    def commit(self, d: int, t: float, size: float) -> None:
        """Record a request released at ``t`` onto disk ``d``."""
        self.avail[d] = self.projected_start(d, t) + self.service_time(d, size)


class RequestScheduler:
    """Base class: one release decision per request, in arrival order.

    Subclasses set ``name`` (the registry key) and ``defaults`` (their
    parameter schema — :func:`make_request_scheduler` rejects unknown
    overrides), and implement :meth:`release`.  :meth:`reset` is called
    once per run with the :class:`SchedulingSetup`; stateful schedulers
    initialize their cross-request state there.  One instance must not be
    shared between concurrently running simulations.
    """

    name: str = ""
    #: Parameter schema: name -> default (``None`` = optional, no default).
    defaults: Dict[str, Optional[float]] = {}

    def __init__(self, **params: float) -> None:
        unknown = sorted(set(params) - set(self.defaults))
        if unknown:
            raise ConfigError(
                f"scheduler {self.name!r} got unknown params {unknown}; "
                f"accepts {sorted(self.defaults)}"
            )
        merged = dict(self.defaults)
        merged.update(params)
        self.params: Dict[str, Optional[float]] = merged

    def reset(self, setup: SchedulingSetup) -> None:
        """Prepare per-run state (default: nothing to do)."""

    def release(
        self,
        t: float,
        file_id: int,
        kind: str,
        slo_estimate: Optional[float] = None,
    ) -> float:
        """Return this request's release time, in ``[t, t + max_hold]``.

        ``slo_estimate`` is the controller's running percentile estimate
        as of the last control boundary at or before ``t`` (``None``
        without a dynamic controller, NaN before the estimator warms up).
        Called exactly once per request, in arrival order, by both
        engines; the returned time is final.
        """
        raise NotImplementedError


#: name -> scheduler class.  Populated by :func:`register_request_scheduler`.
REQUEST_SCHEDULERS: Dict[str, Type[RequestScheduler]] = {}


def register_request_scheduler(
    cls: Type[RequestScheduler],
) -> Type[RequestScheduler]:
    """Class decorator adding a scheduler to the registry (keyed by ``name``)."""
    if not cls.name:
        raise ConfigError(f"{cls.__name__} must set a non-empty name")
    if cls.name in REQUEST_SCHEDULERS:
        raise ConfigError(f"duplicate request scheduler {cls.name!r}")
    REQUEST_SCHEDULERS[cls.name] = cls
    return cls


def request_scheduler_names() -> Tuple[str, ...]:
    """All registered scheduler names (registration order; default first)."""
    return tuple(REQUEST_SCHEDULERS)


def make_request_scheduler(
    scheduler: Union[str, RequestScheduler, None] = None,
    params: Union[None, dict, tuple, list] = None,
) -> RequestScheduler:
    """Instantiate a scheduler by registry name (``None`` = ``fifo``).

    A ready :class:`RequestScheduler` instance passes through unchanged
    (callers own its lifecycle; a stateful instance must not be shared
    between concurrently running simulations).
    """
    if scheduler is None:
        scheduler = DEFAULT_SCHEDULER
    if isinstance(scheduler, RequestScheduler):
        if params:
            raise ConfigError(
                "scheduler_params only applies to registry names, not "
                "ready RequestScheduler instances"
            )
        return scheduler
    try:
        cls = REQUEST_SCHEDULERS[scheduler]
    except KeyError:
        raise ConfigError(
            f"unknown request scheduler {scheduler!r}; choose from "
            f"{request_scheduler_names()}"
        ) from None
    return cls(**dict(normalize_scheduler_params(params)))


# -- the registered strategies --------------------------------------------------


@register_request_scheduler
class Fifo(RequestScheduler):
    """Release every request at its arrival instant (today's behavior).

    ``StorageConfig.request_scheduler()`` returns ``None`` for this name
    so fifo runs skip the scheduling machinery entirely and stay
    byte-identical to the pre-scheduler simulator; the class exists so
    the registry (and the parity grids iterating it) include the
    baseline.
    """

    name = "fifo"
    defaults: Dict[str, Optional[float]] = {}

    def release(
        self,
        t: float,
        file_id: int,
        kind: str,
        slo_estimate: Optional[float] = None,
    ) -> float:
        return t


@register_request_scheduler
class SlackDefer(RequestScheduler):
    """Spend each request's projected tail slack batching it onto epochs.

    Each request is a candidate for deferral to the next budget-aligned
    epoch — so deferred arrivals land together and the gaps between
    epochs are request-free (a uniform per-request shift would leave
    every idle gap exactly as long as before; it is the *batching* that
    buys spin-down residency and shared wake-ups, TimeTrader-style).
    Deferral is all-or-nothing: a request whose next epoch is farther
    than ``max_hold`` away passes through instead of being shifted
    mid-window, because a truncated hold delays the response without
    merging any wake-up.  The internal disk model projects the response the
    request would see measured from its arrival if released at the epoch
    — queueing behind the model's backlog, the wake penalty if the disk
    is predicted asleep *at the release* (a deferral that causes the very
    wake it was meant to avoid busts the budget), then service.  Only if
    that projection fits inside ``margin * target`` is the request held;
    otherwise (and for requests arriving exactly on an epoch) it passes
    through.  When a dynamic controller is live and its running
    percentile estimate already exceeds the budget, the system is
    stressed and requests pass through undeferred (the feedback
    composition with ``slo_feedback``).

    ``target`` defaults to the run's ``slo_target``; a run with neither
    is a configuration error.  ``window`` overrides the epoch length
    (default: the budget itself).
    """

    name = "slack_defer"
    defaults: Dict[str, Optional[float]] = {
        "margin": 0.8,
        "max_hold": 30.0,
        "target": None,
        "window": None,
    }

    def reset(self, setup: SchedulingSetup) -> None:
        target = self.params["target"]
        if target is None:
            target = setup.slo_target
        if target is None or not target > 0:
            raise ConfigError(
                "slack_defer needs a positive response-time target: set "
                "scheduler_params={'target': ...} or StorageConfig.slo_target"
            )
        margin = self.params["margin"]
        if not 0 < margin <= 1:
            raise ConfigError(
                f"slack_defer margin must be in (0, 1], got {margin}"
            )
        if self.params["max_hold"] < 0:
            raise ConfigError("slack_defer max_hold must be >= 0")
        self._budget = float(margin * target)
        self._max_hold = float(self.params["max_hold"])
        window = self.params["window"]
        if window is None:
            window = self._budget
        if not window > 0:
            raise ConfigError(
                f"slack_defer window must be positive, got {window}"
            )
        self._window = float(window)
        self._setup = setup
        self._model = _DiskModel(setup)

    def release(
        self,
        t: float,
        file_id: int,
        kind: str,
        slo_estimate: Optional[float] = None,
    ) -> float:
        setup = self._setup
        d = -1
        if 0 <= file_id < setup.mapping.size:
            d = int(setup.mapping[file_id])
        if d < 0:
            return t  # not yet placed: pass through, model untouched
        model = self._model
        size = setup.sizes[file_id]
        r = t
        stressed = slo_estimate is not None and slo_estimate > self._budget
        if not stressed:
            # max() guards the epoch back onto [t, ...): ceil can land
            # one float ulp below t at exact multiples of the window.
            epoch = max(t, math.ceil(t / self._window) * self._window)
            # All-or-nothing: land on the epoch or pass through.  A hold
            # truncated short of the epoch would be a mid-window shift —
            # it delays the response without merging any wake-up, the
            # worst of both worlds.
            if epoch > t and epoch - t <= self._max_hold:
                # Project at the *release*, not the arrival: the disk may
                # spin down inside [t, epoch), and a deferral that causes
                # the very wake it was meant to avoid busts the budget.
                projected = (
                    model.projected_start(d, epoch) - t
                ) + model.service_time(d, size)
                if projected <= self._budget:
                    r = epoch
        model.commit(d, r, size)
        return r


@register_request_scheduler
class BatchRelease(RequestScheduler):
    """Quantize releases onto ``window`` epochs (idle-gap-extending batching).

    Every arrival is held until the next multiple of ``window``, so
    requests land in bunches and the gaps between bunches are request-free
    — the simplest way to buy longer idle gaps with bounded per-request
    delay.  ``max_hold`` caps the hold independently of the window (an
    arrival just past an epoch would otherwise wait a full window).
    """

    name = "batch_release"
    defaults: Dict[str, Optional[float]] = {"window": 10.0, "max_hold": 30.0}

    def reset(self, setup: SchedulingSetup) -> None:
        if not self.params["window"] > 0:
            raise ConfigError(
                f"batch_release window must be positive, got "
                f"{self.params['window']}"
            )
        if self.params["max_hold"] < 0:
            raise ConfigError("batch_release max_hold must be >= 0")
        self._window = float(self.params["window"])
        self._max_hold = float(self.params["max_hold"])

    def release(
        self,
        t: float,
        file_id: int,
        kind: str,
        slo_estimate: Optional[float] = None,
    ) -> float:
        # max() guards the epoch back onto [t, ...): ceil(t / w) * w can
        # land one float ulp below t when t / w rounds down to an integer.
        epoch = max(t, math.ceil(t / self._window) * self._window)
        return min(epoch, t + self._max_hold)


@register_request_scheduler
class SpinupCoalesce(RequestScheduler):
    """Park arrivals bound for a sleeping disk; wake once per group.

    When the model predicts the destination disk fully in standby, the
    first parked request opens a per-disk group with deadline
    ``t + max_hold``; every later arrival for that disk joins the group
    and the whole group releases together at the deadline.  The wake the
    group eventually pays is break-even by construction — some parked
    request had to pay it anyway — and parking amortizes that one
    spin-up over every request collected during the hold window, while
    the sleeping disk's gap extends by the full window.  Requests whose
    destination is spinning (or not yet placed) pass through untouched.
    """

    name = "spinup_coalesce"
    defaults: Dict[str, Optional[float]] = {"max_hold": 45.0}

    def reset(self, setup: SchedulingSetup) -> None:
        if self.params["max_hold"] < 0:
            raise ConfigError("spinup_coalesce max_hold must be >= 0")
        self._max_hold = float(self.params["max_hold"])
        self._setup = setup
        self._model = _DiskModel(setup)
        self._group_until = np.full(setup.num_disks, -math.inf)

    def release(
        self,
        t: float,
        file_id: int,
        kind: str,
        slo_estimate: Optional[float] = None,
    ) -> float:
        setup = self._setup
        d = -1
        if 0 <= file_id < setup.mapping.size:
            d = int(setup.mapping[file_id])
        if d < 0:
            return t
        model = self._model
        if t >= self._group_until[d]:
            self._group_until[d] = -math.inf  # the group has released
        if self._group_until[d] > t:
            r = float(self._group_until[d])  # join the open group
        elif model.sleeping(d, t):
            r = t + self._max_hold
            self._group_until[d] = r  # open a group; wake once, together
        else:
            r = t
        model.commit(d, r, setup.sizes[file_id])
        return r
