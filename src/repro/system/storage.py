"""The complete storage system: environment + array + cache + dispatcher."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.base import make_cache
from repro.control.controller import EventControlLoop
from repro.disk.array import DiskArray
from repro.disk.power import DiskState
from repro.errors import ConfigError
from repro.obs.hooks import active_observer
from repro.obs.metrics import observability_snapshot
from repro.sim.environment import Environment
from repro.sim.fastkernel import (
    fast_unsupported_reason,
    simulate_fast,
    simulate_fast_chunked,
)
from repro.system.config import StorageConfig
from repro.system.dispatcher import (
    Dispatcher,
    drive_scheduled_stream,
    drive_stream,
)
from repro.system.metrics import ResponseAccumulator, SimulationResult
from repro.system.scheduling import build_scheduling_setup
from repro.workload.catalog import FileCatalog

__all__ = ["StorageSystem"]


def _state_label(state) -> str:
    """Normalize a timeline state to the observer's span vocabulary:
    lowercase power-state names for :class:`DiskState`, ladder timeline
    labels (rung names, ``down:``/``wake:`` transitions) unchanged."""
    return state.name.lower() if isinstance(state, DiskState) else str(state)


def _emit_timeline_spans(observer, drives, horizon: float) -> None:
    """Walk each drive's recorded timeline history, emitting one
    ``on_state_span`` per dwell (the final open dwell closes at the
    horizon) — the event engine's full per-request granularity."""
    for d, drive in enumerate(drives):
        history = drive.timeline.history
        if not history:
            continue
        for (t0, state), (t1, _next) in zip(history, history[1:]):
            if t1 > t0:
                observer.on_state_span(d, _state_label(state), t0, t1)
        t_last, s_last = history[-1]
        if horizon > t_last:
            observer.on_state_span(d, _state_label(s_last), t_last, horizon)


class StorageSystem:
    """One simulatable storage system instance.

    Builds a fresh :class:`~repro.sim.environment.Environment` so every run
    is independent and reproducible.  The event-kernel machinery
    (environment, drive processes, dispatcher) is constructed lazily on
    first access, so ``engine="fast"`` runs skip it entirely — for large
    pools its construction would otherwise dominate the fast kernel's
    wall time.

    Parameters
    ----------
    catalog:
        The file population.
    mapping:
        Dense ``file_id -> disk`` array (from
        :meth:`repro.core.allocation.Allocation.mapping`).
    config:
        System parameters.
    num_disks:
        Pool size override; defaults to ``max(config.num_disks,
        disks referenced by the mapping)``.
    """

    def __init__(
        self,
        catalog: FileCatalog,
        mapping: np.ndarray,
        config: StorageConfig = StorageConfig(),
        num_disks: Optional[int] = None,
    ) -> None:
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape[0] != catalog.n:
            raise ConfigError(
                f"mapping covers {mapping.shape[0]} files, catalog has "
                f"{catalog.n}"
            )
        highest = int(mapping.max()) + 1 if mapping.size else 0
        if num_disks is None:
            num_disks = max(config.num_disks, highest)
        elif num_disks < highest:
            raise ConfigError(
                f"num_disks={num_disks} but the mapping references disk "
                f"{highest - 1}"
            )
        self.catalog = catalog
        self.config = config
        self.num_disks = num_disks
        self._mapping = mapping
        self._env: Optional[Environment] = None
        self._array: Optional[DiskArray] = None
        self._dispatcher: Optional[Dispatcher] = None

    # -- lazily built event-kernel machinery ------------------------------------

    def _build_event_machinery(self) -> None:
        self._env = Environment()
        fleet = (
            self.config.resolved_fleet(self.num_disks)
            if self.config.fleet is not None
            else None
        )
        self._array = DiskArray(
            self._env,
            self.config.spec,
            self.num_disks,
            idleness_threshold=self.config.threshold,
            ladder=self.config.ladder(),
            fleet=fleet,
        )
        cache = (
            make_cache(self.config.cache_policy, self.config.cache_capacity)
            if self.config.cache_policy
            else None
        )
        self._dispatcher = Dispatcher(
            self._env,
            self._array,
            self._mapping,
            self.catalog.sizes,
            cache=cache,
            cache_hit_latency=self.config.cache_hit_latency,
            usable_capacity=(
                self.config.usable_capacities(self.num_disks)
                if fleet is not None
                else self.config.usable_capacity
            ),
            write_policy=self.config.placement_policy(),
        )

    @property
    def env(self) -> Environment:
        if self._env is None:
            self._build_event_machinery()
        return self._env

    @property
    def array(self) -> DiskArray:
        if self._array is None:
            self._build_event_machinery()
        return self._array

    @property
    def dispatcher(self) -> Dispatcher:
        if self._dispatcher is None:
            self._build_event_machinery()
        return self._dispatcher

    def run(
        self,
        stream,
        duration: Optional[float] = None,
        label: str = "run",
        observer=None,
    ) -> SimulationResult:
        """Replay ``stream`` and measure until ``duration`` (default: the
        stream's horizon).

        Requests still queued at the cutoff count as arrivals but not
        completions (their response time is not recorded), exactly like a
        fixed-length measurement window on a real system.

        With ``config.engine == "fast"`` the run is dispatched to the
        batched kernel (:mod:`repro.sim.fastkernel`), which covers write
        streams and shared caches as well as the read-only case; the one
        scenario it cannot express (a stream without dense arrays) raises
        :class:`~repro.errors.ConfigError`.

        A dynamic ``config.dpm_policy`` engages the online control loop
        (:mod:`repro.control`): the event engine spawns a control-boundary
        process adjusting per-drive thresholds, the fast kernel runs its
        interval-segmented recursion — both against the same controller
        semantics, with the per-interval traces attached to
        ``result.extra["dpm"]``.  The default ``"fixed"`` policy skips all
        of this and stays byte-identical to the fixed-threshold simulator.

        Out-of-core streams: a chunked stream (``.iter_chunks()``, no
        dense ``.times``) is dispatched to
        :func:`~repro.sim.fastkernel.simulate_fast_chunked` under
        ``engine="fast"`` and iterated request-by-request under
        ``engine="event"`` (correct, but the event kernel's own event
        queue is not memory-bounded).  Setting ``config.chunk_size`` on
        an array-backed stream runs the fast kernel through the
        equivalent chunked view — chiefly a differential/testing knob,
        since the arrays already exist.  ``config.metrics_mode=
        "streaming"`` replaces ``result.response_times`` with bounded
        :class:`~repro.system.metrics.ResponseStats` on both engines
        (on the event engine the stats are distilled post-hoc, for API
        parity only).

        ``observer`` (a :class:`repro.obs.hooks.RunObserver`) receives
        simulated-time events from either engine — disk state spans,
        cache hit/miss/admit/evict, threshold decisions, placements —
        and the run attaches a structured metrics snapshot to
        ``result.extra["obs"]``.  Observation is purely passive: an
        observed run is bit-identical to an unobserved one (enforced by
        the differential harness).  The observer is a ``run()`` argument
        rather than a config field because :class:`StorageConfig` is
        frozen and fingerprint-salted — observers must never influence
        cache keys.
        """
        obs = active_observer(observer)
        if duration is None:
            duration = stream.duration
        if duration <= 0:
            raise ConfigError("duration must be positive")
        if self.config.engine == "fast":
            reason = fast_unsupported_reason(self.config, stream)
            if reason is not None:
                raise ConfigError(
                    f"engine='fast' cannot simulate this scenario ({reason});"
                    " use engine='event'"
                )
            cache = (
                make_cache(self.config.cache_policy, self.config.cache_capacity)
                if self.config.cache_policy
                else None
            )
            if hasattr(stream, "times") and hasattr(stream, "file_ids"):
                if self.config.chunk_size is not None and hasattr(
                    stream, "chunks"
                ):
                    kernel = simulate_fast_chunked
                    run_stream = stream.chunks(self.config.chunk_size)
                else:
                    kernel = simulate_fast
                    run_stream = stream
            else:
                # Chunked-only stream: chunk_size is the producer's
                # concern (the stream already yields chunks).
                kernel = simulate_fast_chunked
                run_stream = stream
            fleet = (
                self.config.resolved_fleet(self.num_disks)
                if self.config.fleet is not None
                else None
            )
            scheduler = self.config.request_scheduler()
            if scheduler is not None:
                scheduler.reset(
                    build_scheduling_setup(
                        self.config,
                        self.catalog.sizes,
                        self._mapping,
                        self.num_disks,
                    )
                )
            result = kernel(
                sizes=self.catalog.sizes,
                mapping=self._mapping,
                spec=self.config.spec,
                num_disks=self.num_disks,
                threshold=self.config.threshold,
                stream=run_stream,
                duration=duration,
                label=label,
                cache=cache,
                cache_hit_latency=self.config.cache_hit_latency,
                usable_capacity=(
                    self.config.usable_capacities(self.num_disks)
                    if fleet is not None
                    else self.config.usable_capacity
                ),
                write_policy=self.config.placement_policy(),
                dpm=self.config.dpm_controller(self.num_disks),
                ladder=self.config.ladder(),
                metrics_mode=self.config.metrics_mode,
                fleet=fleet,
                observer=obs,
                scheduler=scheduler,
            )
            if obs is not None:
                result.extra["obs"] = observability_snapshot(result, obs)
            return result
        controller = self.config.dpm_controller(self.num_disks)
        if obs is not None:
            # Enable timeline history (purely additive — recording does
            # not perturb the simulation) so per-dwell state spans can be
            # replayed to the observer after the run, and install the
            # dispatcher/cache event taps.
            for drive in self.array.disks:
                drive.timeline.history = [
                    (self.env.now, drive.timeline.state)
                ]
            self.dispatcher.observer = obs
            if self.dispatcher.cache is not None:
                env = self.env
                self.dispatcher.cache.evict_hook = (
                    lambda f: obs.on_cache_event(env.now, "evict", f)
                )
        loop = None
        if controller is not None:
            loop = EventControlLoop(
                self.env, self.array.disks, self.dispatcher, controller,
                horizon=duration, observer=obs,
            )
            self.env.process(loop.run())
        scheduler = self.config.request_scheduler()
        if scheduler is not None:
            scheduler.reset(
                build_scheduling_setup(
                    self.config,
                    self.catalog.sizes,
                    self._mapping,
                    self.num_disks,
                )
            )
            self.env.process(
                drive_scheduled_stream(
                    self.env, self.dispatcher, stream, scheduler,
                    controller=controller,
                )
            )
        else:
            self.env.process(drive_stream(self.env, self.dispatcher, stream))
        self.env.run(until=duration)
        result = self.collect(label)
        if self.config.metrics_mode == "streaming":
            # API parity with the fast kernel: distill the dispatcher's
            # response log into bounded stats and drop the array.  (The
            # event kernel itself is not memory-bounded — use
            # engine="fast" for genuinely out-of-core runs.)
            acc = ResponseAccumulator()
            acc.add(np.asarray(result.response_times, dtype=float))
            result.response_stats = acc.result()
            result.response_times = None
        if loop is not None:
            loop.finalize()
            result.extra["dpm"] = controller.extra()
        if obs is not None:
            _emit_timeline_spans(obs, self.array.disks, float(duration))
            result.extra["obs"] = observability_snapshot(result, obs)
        return result

    def collect(self, label: str = "run") -> SimulationResult:
        """Snapshot all metrics at the current simulation time."""
        duration = self.env.now
        cache = self.dispatcher.cache
        return SimulationResult(
            algorithm=label,
            duration=duration,
            num_disks=len(self.array),
            energy=self.array.total_energy(),
            energy_per_disk=self.array.energy_per_disk(),
            state_durations=self.array.state_durations(),
            response_times=self.dispatcher.responses_array(),
            arrivals=self.dispatcher.arrivals,
            completions=self.dispatcher.completions,
            spinups=self.array.total_spinups(),
            spindowns=self.array.total_spindowns(),
            always_on_energy=self.array.always_on_energy(duration),
            cache_stats=cache.stats if cache is not None else None,
            requests_per_disk=self.array.requests_per_disk(),
            spinups_per_disk=np.array(
                [d.stats.spinups for d in self.array.disks], dtype=np.int64
            ),
            final_mapping=self.dispatcher.mapping.copy(),
        )
