"""The complete storage system: environment + array + cache + dispatcher."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.base import make_cache
from repro.disk.array import DiskArray
from repro.errors import ConfigError
from repro.sim.environment import Environment
from repro.system.config import StorageConfig
from repro.system.dispatcher import Dispatcher, drive_stream
from repro.system.metrics import SimulationResult
from repro.workload.catalog import FileCatalog

__all__ = ["StorageSystem"]


class StorageSystem:
    """One simulatable storage system instance.

    Builds a fresh :class:`~repro.sim.environment.Environment` so every run
    is independent and reproducible.

    Parameters
    ----------
    catalog:
        The file population.
    mapping:
        Dense ``file_id -> disk`` array (from
        :meth:`repro.core.allocation.Allocation.mapping`).
    config:
        System parameters.
    num_disks:
        Pool size override; defaults to ``max(config.num_disks,
        disks referenced by the mapping)``.
    """

    def __init__(
        self,
        catalog: FileCatalog,
        mapping: np.ndarray,
        config: StorageConfig = StorageConfig(),
        num_disks: Optional[int] = None,
    ) -> None:
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape[0] != catalog.n:
            raise ConfigError(
                f"mapping covers {mapping.shape[0]} files, catalog has "
                f"{catalog.n}"
            )
        highest = int(mapping.max()) + 1 if mapping.size else 0
        if num_disks is None:
            num_disks = max(config.num_disks, highest)
        elif num_disks < highest:
            raise ConfigError(
                f"num_disks={num_disks} but the mapping references disk "
                f"{highest - 1}"
            )
        self.catalog = catalog
        self.config = config
        self.env = Environment()
        self.array = DiskArray(
            self.env,
            config.spec,
            num_disks,
            idleness_threshold=config.threshold,
        )
        cache = (
            make_cache(config.cache_policy, config.cache_capacity)
            if config.cache_policy
            else None
        )
        self.dispatcher = Dispatcher(
            self.env,
            self.array,
            mapping,
            catalog.sizes,
            cache=cache,
            cache_hit_latency=config.cache_hit_latency,
            usable_capacity=config.usable_capacity,
        )

    def run(self, stream, duration: Optional[float] = None, label: str = "run") -> SimulationResult:
        """Replay ``stream`` and measure until ``duration`` (default: the
        stream's horizon).

        Requests still queued at the cutoff count as arrivals but not
        completions (their response time is not recorded), exactly like a
        fixed-length measurement window on a real system.
        """
        if duration is None:
            duration = stream.duration
        if duration <= 0:
            raise ConfigError("duration must be positive")
        self.env.process(drive_stream(self.env, self.dispatcher, stream))
        self.env.run(until=duration)
        return self.collect(label)

    def collect(self, label: str = "run") -> SimulationResult:
        """Snapshot all metrics at the current simulation time."""
        duration = self.env.now
        cache = self.dispatcher.cache
        return SimulationResult(
            algorithm=label,
            duration=duration,
            num_disks=len(self.array),
            energy=self.array.total_energy(),
            energy_per_disk=self.array.energy_per_disk(),
            state_durations=self.array.state_durations(),
            response_times=self.dispatcher.responses_array(),
            arrivals=self.dispatcher.arrivals,
            completions=self.dispatcher.completions,
            spinups=self.array.total_spinups(),
            spindowns=self.array.total_spindowns(),
            always_on_energy=self.array.always_on_energy(duration),
            cache_stats=cache.stats if cache is not None else None,
            requests_per_disk=self.array.requests_per_disk(),
            spinups_per_disk=np.array(
                [d.stats.spinups for d in self.array.disks], dtype=np.int64
            ),
        )
