"""The file dispatcher: routes requests to disks via the mapping table.

Mirrors the paper's simulation environment: "Once a request is generated,
the file dispatcher forwards it to the corresponding disk based on the
file-to-disk mapping table, which is built using Pack_Disks".  Mapping time
is ignored (negligible next to multi-second file transfers).

Reads go through the (optional) shared cache; writes of not-yet-mapped
files are placed by the configured
:class:`~repro.system.placement.WritePlacementPolicy`.  The default is the
paper's §1.1 energy-friendly rule: prefer an already-spinning disk with
space (best-fit — the tightest remaining space, concentrating new data on
the already-loaded disks), otherwise fall back to *worst-fit* — the disk
with the most free space — so one unlucky spin-up absorbs as many future
writes as possible.  Either way the mapping table is updated so later
reads find the file.  The same policy instance semantics drive the fast
kernel, so placement decisions are byte-identical across engines.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Union

import numpy as np

from repro.cache.base import BaseCache
from repro.disk.array import DiskArray
from repro.disk.drive import READ, WRITE
from repro.errors import CapacityError, SimulationError
from repro.sim.environment import Environment
from repro.system.placement import (
    PlacementContext,
    WritePlacementPolicy,
    make_placement_policy,
    spinning_best_fit_choice,
)

__all__ = [
    "Dispatcher",
    "choose_write_disk",
    "drive_scheduled_stream",
    "drive_stream",
    "initial_free_bytes",
    "per_disk_capacities",
    "validate_free_bytes",
]

#: Relative overpack slack tolerated at construction: the packers place
#: files against a normalized capacity with a 1e-9 feasibility epsilon
#: (:data:`repro.core.item.EPS`), so a valid allocation can exceed the
#: byte budget by a few hundred bytes on a 500 GB disk.  Anything beyond
#: this fraction of the usable capacity is a genuine overpack.
_OVERPACK_TOL = 1e-6


def per_disk_capacities(
    usable_capacity: Union[float, np.ndarray], num_disks: int
) -> np.ndarray:
    """Normalize a scalar-or-vector capacity budget to one value per disk.

    Uniform pools pass the classic scalar; heterogeneous fleets pass the
    per-disk vector from ``StorageConfig.usable_capacities``.
    """
    capacity = np.asarray(usable_capacity, dtype=float)
    if capacity.ndim == 0:
        return np.full(num_disks, float(capacity), dtype=float)
    if capacity.shape != (num_disks,):
        raise SimulationError(
            f"usable_capacity must be scalar or one value per disk, got "
            f"shape {capacity.shape} for {num_disks} disks"
        )
    return capacity.astype(float, copy=True)


def initial_free_bytes(
    mapping: np.ndarray,
    sizes: np.ndarray,
    usable_capacity: Union[float, np.ndarray],
    num_disks: int,
) -> np.ndarray:
    """Free space per disk under ``mapping`` (shared by both engines).

    Both the event-kernel dispatcher and the fast kernel derive the §1.1
    write policy's free-space view through this one helper so their
    byte-for-byte allocation decisions cannot drift apart.
    ``usable_capacity`` is a scalar (uniform pool) or a per-disk vector
    (heterogeneous fleet).
    """
    free = per_disk_capacities(usable_capacity, num_disks)
    allocated = mapping >= 0
    if allocated.any():
        free -= np.bincount(
            mapping[allocated], weights=sizes[allocated], minlength=num_disks
        )
    return free


def validate_free_bytes(
    free: np.ndarray, usable_capacity: Union[float, np.ndarray]
) -> None:
    """Raise :class:`~repro.errors.CapacityError` when an initial mapping
    materially overpacks a disk (beyond the packers' epsilon slack).

    The error names the offending disk and *its own* capacity — on a
    heterogeneous fleet a 500 GB drive must not be judged against its
    1 TB neighbor's budget.
    """
    if not free.size:
        return
    capacity = per_disk_capacities(usable_capacity, int(free.size))
    excess = -free - _OVERPACK_TOL * capacity
    worst = int(np.argmax(excess))
    if excess[worst] > 0:
        raise CapacityError(
            f"initial mapping overpacks disk {worst}: "
            f"{capacity[worst] - free[worst]:.0f} bytes mapped but only "
            f"{capacity[worst]:.0f} usable on that disk"
        )


def choose_write_disk(
    spinning: np.ndarray, free: np.ndarray, size: float
) -> int:
    """The paper §1.1 placement decision (compat shim).

    Best-fit (tightest remaining space) among spinning disks with room;
    otherwise worst-fit (most free space) among all disks with room, so one
    spin-up absorbs as many future writes as possible.  Ties break toward
    the lowest disk id in both branches.  Raises
    :class:`~repro.errors.CapacityError` when no disk fits the file.

    The decision itself lives in
    :func:`repro.system.placement.spinning_best_fit_choice`, the default
    entry of the write-placement registry; this wrapper is kept for callers
    of the pre-registry API.
    """
    return spinning_best_fit_choice(spinning, free, size)


class Dispatcher:
    """Routes file requests to drives and records per-request outcomes.

    Parameters
    ----------
    env, array:
        The environment and disk pool.
    mapping:
        Dense ``file_id -> disk index`` array (``-1`` = unallocated; reads
        of unallocated files raise, writes allocate).
    sizes:
        ``file_id -> bytes`` array (shared with the catalog).
    cache:
        Optional shared whole-file cache (lookup on read, admit on miss
        completion).
    cache_hit_latency:
        Response time recorded for a cache hit.
    usable_capacity:
        Byte budget used by the write-allocation policy: a scalar
        (uniform pool) or a per-disk vector (heterogeneous fleet).
        Defaults to each drive's own spec capacity.
    write_policy:
        Placement strategy for not-yet-mapped written files: a registry
        name or a ready :class:`~repro.system.placement.WritePlacementPolicy`
        instance (``None`` = the paper's §1.1 ``spinning_best_fit``).
    """

    def __init__(
        self,
        env: Environment,
        array: DiskArray,
        mapping: np.ndarray,
        sizes: np.ndarray,
        cache: Optional[BaseCache] = None,
        cache_hit_latency: float = 0.0,
        usable_capacity: Union[None, float, np.ndarray] = None,
        write_policy: Union[None, str, WritePlacementPolicy] = None,
    ) -> None:
        self.env = env
        self.array = array
        self.mapping = np.asarray(mapping, dtype=np.int64).copy()
        self.sizes = np.asarray(sizes, dtype=float)
        if self.mapping.shape != self.sizes.shape:
            raise SimulationError("mapping and sizes must align per file id")
        if self.mapping.size and self.mapping.max() >= len(array):
            raise SimulationError(
                f"mapping references disk {self.mapping.max()} but the "
                f"array has only {len(array)} disks"
            )
        self.cache = cache
        self.cache_hit_latency = float(cache_hit_latency)
        if usable_capacity is None:
            usable_capacity = (
                array.spec.capacity
                if array.homogeneous_specs
                else array.capacities
            )
        self.usable_capacity = (
            float(usable_capacity)
            if np.ndim(usable_capacity) == 0
            else np.asarray(usable_capacity, dtype=float)
        )
        self._capacities = per_disk_capacities(
            self.usable_capacity, len(array)
        )
        # Free space per disk under the current mapping (writes consume it).
        # A mapping that materially overpacks a disk is rejected up front
        # rather than letting free_bytes go silently negative and corrupt
        # every later write-allocation decision.
        self.free_bytes = initial_free_bytes(
            self.mapping, self.sizes, self.usable_capacity, len(array)
        )
        validate_free_bytes(self.free_bytes, self.usable_capacity)
        self.write_policy = make_placement_policy(write_policy)
        self.write_policy.reset(len(array))
        # Cumulative dispatched service seconds per disk (cache hits
        # excluded), accumulated one request at a time so the fast kernel's
        # identical accumulation yields bit-equal values — placement
        # policies comparing load (coldest_disk) then decide identically
        # in both engines.
        self.dispatched_seconds = np.zeros(len(array), dtype=float)
        self._access_overhead = array.access_overheads
        self._transfer_rate = array.transfer_rates
        self._active_power = array.active_power
        #: Response time of every completed request, in completion order.
        self.response_times: List[float] = []
        #: Parallel list: True when the request was served from cache.
        self.served_from_cache: List[bool] = []
        self.arrivals = 0
        self.write_count = 0
        #: Optional :class:`~repro.obs.hooks.RunObserver` (installed by
        #: ``StorageSystem.run`` for instrumented runs): receives cache
        #: hit/miss/admit events and placement choices at ``env.now``.
        self.observer = None

    # -- read path ------------------------------------------------------------

    def submit(
        self, file_id: int, kind: str = READ, response_offset: float = 0.0
    ) -> None:
        """Dispatch one request (fire-and-forget; outcome recorded on completion).

        ``response_offset`` is added to the recorded response time — the
        release-queue scheduler passes the hold it imposed (release minus
        original arrival) so a deferred request's response still measures
        from arrival.  The zero default leaves recorded values untouched
        (not even a ``+ 0.0`` float round-trip), keeping unscheduled runs
        byte-identical.
        """
        self.arrivals += 1
        if kind == WRITE:
            self._submit_write(file_id, response_offset)
            return
        size = self.sizes[file_id]
        if self.cache is not None:
            if self.cache.lookup(file_id, size):
                if self.observer is not None:
                    self.observer.on_cache_event(self.env.now, "hit", file_id)
                value = self.cache_hit_latency
                if response_offset:
                    value += response_offset
                self.response_times.append(value)
                self.served_from_cache.append(True)
                return
            if self.observer is not None:
                self.observer.on_cache_event(self.env.now, "miss", file_id)
        disk = self.mapping[file_id]
        if disk < 0:
            raise SimulationError(
                f"read of unallocated file {file_id}; allocate it first"
            )
        self._track_dispatch(int(disk), size)
        request = self.array.submit(int(disk), file_id, size, READ)
        request.done.callbacks.append(
            lambda ev, fid=file_id, sz=size, off=response_offset: (
                self._complete(ev, fid, sz, off)
            )
        )

    def _track_dispatch(self, disk: int, size: float) -> None:
        """Accumulate one request's service seconds for placement policies.

        Same formula and same per-request order as the fast kernel's
        :class:`~repro.sim.fastkernel._DiskBank` load tracking, so policy
        views are bit-identical across engines.
        """
        self.dispatched_seconds[disk] += (
            self._access_overhead[disk] + size / self._transfer_rate[disk]
        )

    def _complete(
        self, event, file_id: int, size: float, offset: float = 0.0
    ) -> None:
        value = event.value
        if offset:
            value += offset
        self.response_times.append(value)
        self.served_from_cache.append(False)
        if self.cache is not None:
            if self.observer is not None:
                self.observer.on_cache_event(self.env.now, "admit", file_id)
            self.cache.admit(file_id, size)

    # -- write path (pluggable placement; §1.1 by default) ----------------------

    def _submit_write(self, file_id: int, response_offset: float = 0.0) -> None:
        size = self.sizes[file_id]
        disk = self.mapping[file_id]
        if disk < 0:
            disk = self._allocate_for_write(size)
            if self.observer is not None:
                self.observer.on_placement(self.env.now, file_id, int(disk))
            self.mapping[file_id] = disk
            self.free_bytes[disk] -= size
        self.write_count += 1
        self._track_dispatch(int(disk), size)
        request = self.array.submit(int(disk), file_id, size, WRITE)
        request.done.callbacks.append(
            lambda ev, off=response_offset: self._complete_write(ev, off)
        )

    def _complete_write(self, event, offset: float = 0.0) -> None:
        value = event.value
        if offset:
            value += offset
        self.response_times.append(value)
        self.served_from_cache.append(False)

    def _allocate_for_write(self, size: float) -> int:
        """Pick a disk for a new file via the configured placement policy.

        The decision lives in the policy object (shared registry with the
        fast kernel, so neither engine's copy can drift); this method only
        assembles the :class:`~repro.system.placement.PlacementContext`
        from the live drives' spin states and the dispatch ledger.
        """
        spinning = np.fromiter(
            (d.spinning for d in self.array.disks),
            dtype=bool,
            count=len(self.array),
        )
        ctx = PlacementContext(
            time=self.env.now,
            spinning=spinning,
            free=self.free_bytes,
            load=self.dispatched_seconds,
            capacity=self._capacities,
            active_power=self._active_power,
        )
        return self.write_policy.choose(ctx, size)

    # -- accessors ---------------------------------------------------------------

    def responses_array(self) -> np.ndarray:
        """Completed-request response times as an array."""
        return np.asarray(self.response_times, dtype=float)

    @property
    def completions(self) -> int:
        return len(self.response_times)


def drive_stream(env: Environment, dispatcher: Dispatcher, stream) -> "object":
    """Generator process replaying a request stream through the dispatcher.

    ``stream`` is any iterable of ``(time, file_id)`` or
    ``(time, file_id, kind)`` with non-decreasing times (e.g.
    :class:`~repro.workload.arrivals.RequestStream` or
    :class:`~repro.workload.mixed.MixedRequestStream`).

    A decreasing timestamp raises :class:`~repro.errors.SimulationError`
    instead of being silently coalesced to ``env.now`` — replaying an
    out-of-order trace at the wrong instants would skew every queueing
    metric downstream.  The comparison is against the stream's own previous
    timestamp (not the accumulated clock), so equal arrival times are fine.
    """
    last: Optional[float] = None
    for item in stream:
        t, file_id, *rest = item
        if last is not None and t < last:
            raise SimulationError(
                f"request stream times must be non-decreasing: got {t} "
                f"after {last}"
            )
        last = t
        delay = t - env.now
        if delay > 0:
            yield env.timeout(delay)
        dispatcher.submit(file_id, kind=rest[0] if rest else READ)


def drive_scheduled_stream(
    env: Environment,
    dispatcher: Dispatcher,
    stream,
    scheduler,
    controller=None,
) -> "object":
    """The release-queue process: arrivals -> scheduler -> ``submit``.

    Sits between the stream replay and the dispatcher when a non-fifo
    :class:`~repro.system.scheduling.RequestScheduler` is configured.
    Each arrival is assigned a release time at its arrival instant (the
    scheduler sees the controller's telemetry *as of the last control
    boundary*, because boundaries are simulation events that have already
    fired by then); released requests are submitted at their release
    times in stable ``(release_time, arrival_sequence)`` order — at a
    release/arrival time tie the release goes first, matching the fast
    kernel's sorted flush.  The hold (release minus arrival) rides along
    as ``response_offset`` so recorded response times measure from the
    original arrival.

    Requests whose release lands at or past the measurement horizon
    simply never fire (the ``env.run(until=...)`` cutoff pre-empts
    them), mirroring the fast kernel's release-time censoring.

    A release landing *exactly* on a control boundary (not measure-zero:
    ``batch_release`` windows can divide the control interval) is
    submitted after that boundary fires — the fast kernel feeds releases
    strictly below each boundary before processing it — by requeueing
    once via a zero timeout, which the environment's stable same-instant
    ordering places behind the already-scheduled boundary event.
    """
    interval = None if controller is None else float(controller.interval)
    pending: list = []  # heap of (release, seq, file_id, kind, hold)
    seq = 0
    last: Optional[float] = None
    it = iter(stream)
    item = next(it, None)
    while item is not None or pending:
        t_arrival = item[0] if item is not None else math.inf
        if pending and pending[0][0] <= t_arrival:
            release, _, file_id, kind, hold = heapq.heappop(pending)
            delay = release - env.now
            if delay > 0:
                yield env.timeout(delay)
                if interval is not None:
                    k = round(release / interval)
                    if k >= 1 and k * interval == release:
                        yield env.timeout(0)  # boundary first, then submit
            dispatcher.submit(file_id, kind=kind, response_offset=hold)
            continue
        t, file_id, *rest = item
        if last is not None and t < last:
            raise SimulationError(
                f"request stream times must be non-decreasing: got {t} "
                f"after {last}"
            )
        last = t
        delay = t - env.now
        if delay > 0:
            yield env.timeout(delay)
        kind = rest[0] if rest else READ
        estimate = None if controller is None else controller.slo_estimate
        release = scheduler.release(t, file_id, kind, slo_estimate=estimate)
        heapq.heappush(pending, (release, seq, file_id, kind, release - t))
        seq += 1
        item = next(it, None)
