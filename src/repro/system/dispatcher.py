"""The file dispatcher: routes requests to disks via the mapping table.

Mirrors the paper's simulation environment: "Once a request is generated,
the file dispatcher forwards it to the corresponding disk based on the
file-to-disk mapping table, which is built using Pack_Disks".  Mapping time
is ignored (negligible next to multi-second file transfers).

Reads go through the (optional) shared cache; writes follow the paper's
§1.1 energy-friendly policy: prefer an already-spinning disk with space,
otherwise fall back to the disk with the most free space (best-fit among
standby disks), updating the mapping table for later reads.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cache.base import BaseCache
from repro.disk.array import DiskArray
from repro.disk.drive import READ, WRITE
from repro.errors import CapacityError, SimulationError
from repro.sim.environment import Environment

__all__ = ["Dispatcher", "drive_stream"]


class Dispatcher:
    """Routes file requests to drives and records per-request outcomes.

    Parameters
    ----------
    env, array:
        The environment and disk pool.
    mapping:
        Dense ``file_id -> disk index`` array (``-1`` = unallocated; reads
        of unallocated files raise, writes allocate).
    sizes:
        ``file_id -> bytes`` array (shared with the catalog).
    cache:
        Optional shared whole-file cache (lookup on read, admit on miss
        completion).
    cache_hit_latency:
        Response time recorded for a cache hit.
    usable_capacity:
        Per-disk byte budget used by the write-allocation policy.
    """

    def __init__(
        self,
        env: Environment,
        array: DiskArray,
        mapping: np.ndarray,
        sizes: np.ndarray,
        cache: Optional[BaseCache] = None,
        cache_hit_latency: float = 0.0,
        usable_capacity: Optional[float] = None,
    ) -> None:
        self.env = env
        self.array = array
        self.mapping = np.asarray(mapping, dtype=np.int64).copy()
        self.sizes = np.asarray(sizes, dtype=float)
        if self.mapping.shape != self.sizes.shape:
            raise SimulationError("mapping and sizes must align per file id")
        if self.mapping.size and self.mapping.max() >= len(array):
            raise SimulationError(
                f"mapping references disk {self.mapping.max()} but the "
                f"array has only {len(array)} disks"
            )
        self.cache = cache
        self.cache_hit_latency = float(cache_hit_latency)
        self.usable_capacity = (
            array.spec.capacity if usable_capacity is None else float(usable_capacity)
        )
        # Free space per disk under the current mapping (writes consume it).
        self.free_bytes = np.full(len(array), self.usable_capacity, dtype=float)
        for fid, disk in enumerate(self.mapping):
            if disk >= 0:
                self.free_bytes[disk] -= self.sizes[fid]
        #: Response time of every completed request, in completion order.
        self.response_times: List[float] = []
        #: Parallel list: True when the request was served from cache.
        self.served_from_cache: List[bool] = []
        self.arrivals = 0
        self.write_count = 0

    # -- read path ------------------------------------------------------------

    def submit(self, file_id: int, kind: str = READ) -> None:
        """Dispatch one request (fire-and-forget; outcome recorded on completion)."""
        self.arrivals += 1
        if kind == WRITE:
            self._submit_write(file_id)
            return
        size = self.sizes[file_id]
        if self.cache is not None and self.cache.lookup(file_id, size):
            self.response_times.append(self.cache_hit_latency)
            self.served_from_cache.append(True)
            return
        disk = self.mapping[file_id]
        if disk < 0:
            raise SimulationError(
                f"read of unallocated file {file_id}; allocate it first"
            )
        request = self.array.submit(int(disk), file_id, size, READ)
        request.done.callbacks.append(
            lambda ev, fid=file_id, sz=size: self._complete(ev, fid, sz)
        )

    def _complete(self, event, file_id: int, size: float) -> None:
        self.response_times.append(event.value)
        self.served_from_cache.append(False)
        if self.cache is not None:
            self.cache.admit(file_id, size)

    # -- write path (paper §1.1 policy) -----------------------------------------

    def _submit_write(self, file_id: int) -> None:
        size = self.sizes[file_id]
        disk = self.mapping[file_id]
        if disk < 0:
            disk = self._allocate_for_write(size)
            self.mapping[file_id] = disk
            self.free_bytes[disk] -= size
        self.write_count += 1
        request = self.array.submit(int(disk), file_id, size, WRITE)
        request.done.callbacks.append(
            lambda ev, fid=file_id, sz=size: self._complete_write(ev)
        )

    def _complete_write(self, event) -> None:
        self.response_times.append(event.value)
        self.served_from_cache.append(False)

    def _allocate_for_write(self, size: float) -> int:
        """Pick a disk for a new file: spinning-with-space first, then
        best-fit (most free) overall."""
        spinning = [
            d.disk_id
            for d in self.array.disks
            if d.state.spinning and self.free_bytes[d.disk_id] >= size
        ]
        if spinning:
            # Best-fit among spinning disks: tightest remaining space.
            return min(spinning, key=lambda i: self.free_bytes[i])
        feasible = np.flatnonzero(self.free_bytes >= size)
        if feasible.size == 0:
            raise CapacityError(
                f"no disk has {size:.0f} free bytes for the written file"
            )
        return int(feasible[np.argmax(self.free_bytes[feasible])])

    # -- accessors ---------------------------------------------------------------

    def responses_array(self) -> np.ndarray:
        """Completed-request response times as an array."""
        return np.asarray(self.response_times, dtype=float)

    @property
    def completions(self) -> int:
        return len(self.response_times)


def drive_stream(env: Environment, dispatcher: Dispatcher, stream) -> "object":
    """Generator process replaying a request stream through the dispatcher.

    ``stream`` is any iterable of ``(time, file_id)`` or
    ``(time, file_id, kind)`` with non-decreasing times (e.g.
    :class:`~repro.workload.arrivals.RequestStream` or
    :class:`~repro.workload.mixed.MixedRequestStream`).
    """
    for item in stream:
        t, file_id, *rest = item
        delay = t - env.now
        if delay > 0:
            yield env.timeout(delay)
        dispatcher.submit(file_id, kind=rest[0] if rest else READ)
