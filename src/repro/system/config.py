"""Storage-system configuration with the paper's defaults."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.control.controller import controller_from
from repro.control.policies import (
    DEFAULT_DPM_POLICY,
    DPM_POLICIES,
    dpm_policy_names,
)
from repro.disk.dpm import DpmLadder, dpm_ladder_names, make_dpm_ladder
from repro.disk.fleet import Fleet, ResolvedFleet, fleet_names, make_fleet
from repro.disk.service import ServiceModel
from repro.disk.specs import ST3500630AS, DiskSpec
from repro.errors import ConfigError
from repro.system.placement import (
    DEFAULT_WRITE_POLICY,
    make_placement_policy,
    placement_policy_names,
)
from repro.system.scheduling import (
    DEFAULT_SCHEDULER,
    make_request_scheduler,
    normalize_scheduler_params,
    request_scheduler_names,
)
from repro.units import GiB

__all__ = ["StorageConfig"]


@dataclass(frozen=True)
class StorageConfig:
    """Everything needed to build a :class:`~repro.system.storage.StorageSystem`.

    Attributes
    ----------
    spec:
        Drive model (Table 2's Seagate by default).  Sugar for a
        *uniform* fleet — ignored when ``fleet`` is set.
    fleet:
        Optional heterogeneous fleet: a preset name from
        :data:`repro.disk.fleet.FLEETS` (``mixed_generation``) or a
        ready :class:`~repro.disk.fleet.Fleet`.  The fleet's repeating
        profile of per-disk specs (and optional per-disk
        ladders/thresholds) is tiled across the pool; per-disk
        capacities, transfer rates, power draws and break-even
        thresholds flow through packing, placement, control and both
        engines.  ``None`` (default) keeps the uniform ``spec`` pool,
        byte-identical to the pre-fleet simulator.
    num_disks:
        Size of the disk pool (Table 1 uses 100).  Allocators may use fewer
        disks; the remainder idle and eventually spin down.
    idleness_threshold:
        Spin-down threshold in seconds; ``None`` = the spec's break-even
        value (53.3 s); ``math.inf`` disables spin-down.
    load_constraint:
        The paper's ``L``: per-disk load budget as a fraction of the disk's
        service-time capacity (Figures 2-4 sweep 0.4-0.9).
    storage_utilization:
        Usable fraction of the raw capacity given to the packer.
    service_mode:
        ``"full"`` (seek + rotation + transfer) or ``"transfer"``.
    cache_policy / cache_capacity / cache_hit_latency:
        Optional shared front-end cache (paper: 16 GB LRU, hits free).
    write_policy:
        Write-placement strategy for not-yet-mapped written files, by
        registry name (see :mod:`repro.system.placement`).  The default
        ``"spinning_best_fit"`` is the paper's §1.1 rule (best-fit among
        spinning disks, worst-fit standby fallback); alternatives
        (``spinning_worst_fit``, ``first_fit_spinning``, ``round_robin``,
        ``coldest_disk``, ``fullest_spinning``, ``hottest_spinning``) are
        swept by the ``placement`` ablation.  Every policy is honored
        identically by both engines.
    dpm_policy:
        Online dynamic-power-management policy, by registry name (see
        :mod:`repro.control.policies`).  The default ``"fixed"`` is the
        pre-control behavior — one static ``idleness_threshold``, engines
        take the uncontrolled code path byte-identically.  Dynamic
        policies (``adaptive_timeout``, ``exponential_predictive``,
        ``slo_feedback``) adjust per-disk thresholds every
        ``control_interval`` seconds from streaming telemetry and are
        honored identically (~1e-9) by both engines.
    control_interval:
        Length of one control interval in seconds (dynamic policies
        decide once per interval; ignored by ``"fixed"``).
    dpm_ladder:
        Optional multi-state power ladder: a preset name from
        :data:`repro.disk.dpm.DPM_LADDERS` (``two_state``, ``nap``,
        ``drpm4``) or a ready :class:`~repro.disk.dpm.DpmLadder`.
        ``None`` (default) keeps the classic Figure 1 two-state drive —
        byte-identical to the pre-ladder simulator; the ``two_state``
        *preset* routes through the ladder machinery but is regression-
        tested bit-equal to that classic path.  With a ladder,
        ``idleness_threshold`` (and any dynamic ``dpm_policy``) steers
        the *first-descent* threshold; deeper entries scale
        proportionally (see :meth:`DpmLadder.scaled_entries`).  Both
        engines honor ladders identically (~1e-9).
    slo_target / slo_percentile:
        Response-time service-level objective: ``slo_target`` seconds at
        the ``slo_percentile``-th percentile.  Required by
        ``slo_feedback`` (which tightens/relaxes thresholds to maximize
        power saving subject to the target) and ignored by policies that
        do not steer by it.
    scheduler / scheduler_params:
        Slack-aware request scheduling (see
        :mod:`repro.system.scheduling`): ``scheduler`` names a
        :class:`~repro.system.scheduling.RequestScheduler` from the
        registry (``"fifo"`` default — requests dispatch at arrival,
        byte-identical to the pre-scheduler simulator; ``"slack_defer"``,
        ``"batch_release"``, ``"spinup_coalesce"`` hold requests back to
        lengthen idle gaps and coalesce spin-ups) and
        ``scheduler_params`` tunes it (a dict or ``(name, value)``
        pairs, normalized to a sorted hashable tuple — e.g.
        ``{"margin": 0.7, "max_hold": 20.0}``).  Both engines honor the
        schedule identically (~1e-9); held requests' response times
        measure from original arrival, so deferral is never free.
        ``slack_defer`` composes with the ``slo_feedback`` controller by
        reading its live percentile telemetry.
    engine:
        Simulation kernel: ``"event"`` (the discrete-event loop; supports
        every feature) or ``"fast"`` (the batched kernel in
        :mod:`repro.sim.fastkernel`; covers read *and* write streams, the
        §1.1 write-allocation policy and shared whole-file caches on
        array-backed *and chunked* streams, typically 5-50x faster — see
        that module's engine coverage matrix).
    metrics_mode:
        ``"full"`` (default) materializes the per-request response array on
        :class:`~repro.system.metrics.SimulationResult`;
        ``"streaming"`` replaces it with bounded-memory accumulators
        (``response_times`` becomes ``None``, ``response_stats`` answers
        mean/max exactly and p50/p95/p99 via P² estimates).  Required for
        out-of-core runs — a chunked 10^8-request stream cannot hold its
        responses in memory.
    chunk_size:
        When set, the fast kernel consumes array-backed streams in chunks
        of this many requests (via ``stream.chunks(chunk_size)``) instead
        of one monolithic pass — bit-identical results, bounded working
        set.  Streams that are already chunked (expose ``iter_chunks``)
        are consumed as-is regardless of this setting.  Ignored by the
        event engine, which is request-at-a-time anyway.
    """

    spec: DiskSpec = ST3500630AS
    fleet: Union[None, str, Fleet] = None
    num_disks: int = 100
    idleness_threshold: Optional[float] = None
    load_constraint: float = 0.8
    storage_utilization: float = 1.0
    service_mode: str = "full"
    cache_policy: Optional[str] = None
    cache_capacity: float = 16 * GiB
    cache_hit_latency: float = 0.0
    write_policy: str = DEFAULT_WRITE_POLICY
    dpm_policy: str = DEFAULT_DPM_POLICY
    control_interval: float = 250.0
    dpm_ladder: Union[None, str, DpmLadder] = None
    slo_target: Optional[float] = None
    slo_percentile: float = 95.0
    scheduler: str = DEFAULT_SCHEDULER
    scheduler_params: tuple = ()
    engine: str = "event"
    metrics_mode: str = "full"
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_disks < 1:
            raise ConfigError("num_disks must be >= 1")
        if isinstance(self.fleet, str) and self.fleet not in fleet_names():
            raise ConfigError(
                f"unknown fleet {self.fleet!r}; choose from {fleet_names()}"
            )
        if self.fleet is not None and not isinstance(self.fleet, (str, Fleet)):
            raise ConfigError("fleet must be a preset name or a Fleet")
        if not 0 < self.load_constraint <= 1:
            raise ConfigError(
                f"load_constraint must be in (0, 1], got {self.load_constraint}"
            )
        if not 0 < self.storage_utilization <= 1:
            raise ConfigError(
                "storage_utilization must be in (0, 1], got "
                f"{self.storage_utilization}"
            )
        if self.idleness_threshold is not None and self.idleness_threshold < 0:
            raise ConfigError("idleness_threshold must be >= 0")
        if self.cache_hit_latency < 0:
            raise ConfigError("cache_hit_latency must be >= 0")
        if self.cache_capacity <= 0:
            raise ConfigError("cache_capacity must be positive")
        if self.write_policy not in placement_policy_names():
            raise ConfigError(
                f"unknown write placement policy {self.write_policy!r}; "
                f"choose from {placement_policy_names()}"
            )
        if self.dpm_policy not in dpm_policy_names():
            raise ConfigError(
                f"unknown DPM policy {self.dpm_policy!r}; "
                f"choose from {dpm_policy_names()}"
            )
        if self.control_interval <= 0:
            raise ConfigError("control_interval must be positive")
        if isinstance(self.dpm_ladder, str) and (
            self.dpm_ladder not in dpm_ladder_names()
        ):
            raise ConfigError(
                f"unknown DPM ladder {self.dpm_ladder!r}; "
                f"choose from {dpm_ladder_names()}"
            )
        if self.dpm_ladder is not None and not isinstance(
            self.dpm_ladder, (str, DpmLadder)
        ):
            raise ConfigError(
                "dpm_ladder must be a preset name or a DpmLadder"
            )
        if self.slo_target is not None and self.slo_target <= 0:
            raise ConfigError("slo_target must be positive when set")
        if not 0 < self.slo_percentile < 100:
            raise ConfigError(
                f"slo_percentile must be in (0, 100), got "
                f"{self.slo_percentile}"
            )
        if DPM_POLICIES[self.dpm_policy].requires_slo and self.slo_target is None:
            raise ConfigError(
                f"dpm_policy {self.dpm_policy!r} requires an slo_target "
                "(seconds at slo_percentile)"
            )
        if self.scheduler not in request_scheduler_names():
            raise ConfigError(
                f"unknown request scheduler {self.scheduler!r}; "
                f"choose from {request_scheduler_names()}"
            )
        # Normalize params to the canonical hashable tuple (the config is
        # frozen and pickled into sweep-cache fingerprints, so a dict and
        # its pair-tuple form must fingerprint identically), then build a
        # throwaway instance so unknown params fail at construction.
        object.__setattr__(
            self,
            "scheduler_params",
            normalize_scheduler_params(self.scheduler_params),
        )
        make_request_scheduler(self.scheduler, self.scheduler_params)
        if self.engine not in ("event", "fast"):
            raise ConfigError(
                f"engine must be 'event' or 'fast', got {self.engine!r}"
            )
        if self.metrics_mode not in ("full", "streaming"):
            raise ConfigError(
                "metrics_mode must be 'full' or 'streaming', got "
                f"{self.metrics_mode!r}"
            )
        if self.chunk_size is not None and (
            not isinstance(self.chunk_size, int) or self.chunk_size < 1
        ):
            raise ConfigError(
                f"chunk_size must be a positive integer, got {self.chunk_size!r}"
            )

    @property
    def usable_capacity(self) -> float:
        """Bytes the packer may place on one disk (uniform pools).

        With a heterogeneous ``fleet`` this is the representative
        (disk 0) figure; use :meth:`usable_capacities` for the per-disk
        vector.
        """
        if self.fleet is not None:
            return float(self.resolved_fleet(1).capacities[0]
                         * self.storage_utilization)
        return self.spec.capacity * self.storage_utilization

    def resolved_fleet(self, num_disks: Optional[int] = None) -> ResolvedFleet:
        """The per-disk spec/ladder/threshold view both engines consume.

        ``fleet=None`` resolves to a uniform fleet over ``spec`` — the
        resulting vectors hold exactly the scalar values the pre-fleet
        code used, so uniform configs stay byte-identical.
        """
        n = self.num_disks if num_disks is None else num_disks
        fleet = make_fleet(self.fleet)
        if fleet is None:
            fleet = Fleet.uniform(self.spec)
        return fleet.resolve(
            n,
            default_ladder=self.dpm_ladder,
            default_threshold=self.idleness_threshold,
        )

    def usable_capacities(self, num_disks: Optional[int] = None):
        """Per-disk usable bytes (``capacity * storage_utilization``)."""
        return (
            self.resolved_fleet(num_disks).capacities
            * self.storage_utilization
        )

    @property
    def threshold(self) -> float:
        """The effective idleness threshold (break-even when unset).

        With a ladder configured this is the *first-descent* threshold;
        when ``idleness_threshold`` is unset it defaults to the ladder's
        native first entry (for the ``two_state`` preset that is exactly
        the break-even value).
        """
        if self.idleness_threshold is not None:
            return self.idleness_threshold
        if self.dpm_ladder is not None:
            return self.ladder().base_threshold
        return self.spec.breakeven_threshold()

    def ladder(self) -> Optional[DpmLadder]:
        """The resolved :class:`~repro.disk.dpm.DpmLadder`, or ``None``
        for the classic two-state drive."""
        return make_dpm_ladder(self.dpm_ladder, self.spec)

    def service_model(self) -> ServiceModel:
        """The configured :class:`~repro.disk.service.ServiceModel`."""
        return ServiceModel(self.spec, self.service_mode)

    def placement_policy(self):
        """A fresh :class:`~repro.system.placement.WritePlacementPolicy`.

        A new instance per call: stateful policies (round-robin's cursor)
        must not leak decisions between independent simulation runs.
        """
        return make_placement_policy(self.write_policy)

    def request_scheduler(self):
        """A fresh :class:`~repro.system.scheduling.RequestScheduler`
        for one run, or ``None`` for ``"fifo"`` — the identity schedule
        takes the classic unscheduled code path in both engines, so fifo
        runs stay byte-identical to the pre-scheduler simulator.
        """
        if self.scheduler == DEFAULT_SCHEDULER and not self.scheduler_params:
            return None
        return make_request_scheduler(self.scheduler, self.scheduler_params)

    def dpm_controller(self, num_disks: int):
        """A fresh :class:`~repro.control.controller.ThresholdController`
        for one run, or ``None`` when ``dpm_policy`` is static (``fixed``)
        — static policies take the uncontrolled, byte-identical code path
        in both engines.
        """
        if self.fleet is None:
            return controller_from(
                self.dpm_policy,
                self.control_interval,
                num_disks,
                self.threshold,
                self.spec,
                slo_target=self.slo_target,
                slo_percentile=self.slo_percentile,
            )
        fleet = self.resolved_fleet(num_disks)
        return controller_from(
            self.dpm_policy,
            self.control_interval,
            num_disks,
            fleet.thresholds,
            fleet.specs,
            slo_target=self.slo_target,
            slo_percentile=self.slo_percentile,
        )

    def with_overrides(self, **kwargs) -> "StorageConfig":
        """Copy with some fields replaced."""
        return replace(self, **kwargs)
