"""High-level experiment runners: allocate, simulate, compare, reorganize.

These are the entry points the experiments and examples use::

    workload = generate_workload(SyntheticWorkloadParams(arrival_rate=6))
    cfg = StorageConfig(load_constraint=0.7)
    result = run_policy(workload.catalog, workload.stream, "pack", cfg)
    baseline = run_policy(workload.catalog, workload.stream, "random", cfg)
    print(result.power_saving_vs(baseline))
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.core.baselines import (
    best_fit,
    first_fit,
    first_fit_decreasing,
    next_fit,
    random_allocation,
    round_robin_allocation,
)
from repro.core.grouped import pack_disks_grouped
from repro.core.item import PackItem, make_items
from repro.core.packing import pack_disks
from repro.errors import ConfigError
from repro.sim.rng import rng_from_seed
from repro.system.config import StorageConfig
from repro.system.metrics import ResponseStats, SimulationResult
from repro.system.storage import StorageSystem
from repro.workload.arrivals import RequestStream
from repro.workload.catalog import FileCatalog
from repro.workload.mixed import MixedRequestStream

__all__ = [
    "ALLOCATOR_NAMES",
    "ReorganizingRunner",
    "allocate",
    "build_items",
    "run_policy",
    "simulate",
]

#: Allocation policies accepted by :func:`allocate` (``pack_v<k>`` for any k).
ALLOCATOR_NAMES = (
    "pack",
    "pack_v4",
    "random",
    "round_robin",
    "first_fit",
    "first_fit_decreasing",
    "best_fit",
    "next_fit",
)

_PACK_V = re.compile(r"^pack_v(\d+)$")


def build_items(
    catalog: FileCatalog,
    config: StorageConfig,
    arrival_rate: float,
    popularities: Optional[np.ndarray] = None,
) -> List[PackItem]:
    """Turn a catalog into normalized 2DVPP items.

    ``l_i = R p_i f(s_i)`` normalized by the load constraint ``L``;
    ``s_i`` normalized by the usable per-disk capacity.  ``popularities``
    overrides the catalog's (used by reorganization with observed counts).
    """
    service = config.service_model()
    pops = catalog.popularities if popularities is None else popularities
    loads = service.loads(catalog.sizes, pops, arrival_rate)
    return make_items(
        catalog.sizes,
        loads,
        storage_capacity=config.usable_capacity,
        load_capacity=config.load_constraint,
    )


def allocate(
    catalog: FileCatalog,
    policy: str,
    config: StorageConfig,
    arrival_rate: float,
    rng=None,
    num_disks: Optional[int] = None,
    popularities: Optional[np.ndarray] = None,
) -> Allocation:
    """Run the named allocation policy over the catalog.

    ``num_disks`` bounds the pool for the fixed-pool policies
    (``random``/``round_robin``); defaults to ``config.num_disks``.
    """
    items = build_items(catalog, config, arrival_rate, popularities)
    if num_disks is None:
        num_disks = config.num_disks
    match = _PACK_V.match(policy)
    if policy == "pack":
        return pack_disks(items)
    if match:
        return pack_disks_grouped(items, v=int(match.group(1)))
    if policy == "random":
        return random_allocation(items, num_disks, rng=rng_from_seed(rng))
    if policy == "round_robin":
        return round_robin_allocation(items, num_disks)
    if policy == "first_fit":
        return first_fit(items)
    if policy == "first_fit_decreasing":
        return first_fit_decreasing(items)
    if policy == "best_fit":
        return best_fit(items)
    if policy == "next_fit":
        return next_fit(items)
    raise ConfigError(
        f"unknown allocation policy {policy!r}; choose from "
        f"{ALLOCATOR_NAMES} (or pack_v<k>)"
    )


def simulate(
    catalog: FileCatalog,
    stream: RequestStream,
    allocation: Allocation,
    config: StorageConfig,
    num_disks: Optional[int] = None,
    duration: Optional[float] = None,
    label: Optional[str] = None,
) -> SimulationResult:
    """Simulate ``stream`` against an allocation; returns the metrics.

    ``num_disks`` sets the pool size but grows automatically when the
    allocation references more disks (packing at a tight load constraint
    can exceed a nominal pool; the extra disks idle and spin down like any
    other unused disk).  Use :class:`~repro.system.storage.StorageSystem`
    directly for strict pool-size enforcement.
    """
    if num_disks is not None and num_disks < allocation.num_disks:
        num_disks = allocation.num_disks
    system = StorageSystem(
        catalog,
        allocation.mapping(catalog.n),
        config,
        num_disks=num_disks,
    )
    return system.run(
        stream,
        duration=duration,
        label=label or allocation.algorithm,
    )


def run_policy(
    catalog: FileCatalog,
    stream: RequestStream,
    policy: str,
    config: StorageConfig,
    arrival_rate: Optional[float] = None,
    rng=None,
    num_disks: Optional[int] = None,
    duration: Optional[float] = None,
) -> SimulationResult:
    """Allocate with ``policy`` then simulate; the one-call entry point.

    ``arrival_rate`` defaults to the stream's empirical rate (what a real
    deployment would estimate from logs).
    """
    if arrival_rate is None:
        arrival_rate = stream.mean_rate
    allocation = allocate(
        catalog, policy, config, arrival_rate, rng=rng, num_disks=num_disks
    )
    return simulate(
        catalog, stream, allocation, config,
        num_disks=num_disks, duration=duration,
    )


class ReorganizingRunner:
    """Semi-dynamic operation (paper §1.1/§6): re-pack at intervals using
    access statistics observed in the previous epoch.

    The stream is split into epochs of ``interval`` seconds.  Epoch 0 runs
    on the initial allocation (from catalog popularities); each later epoch
    re-packs with popularities estimated from the previous epoch's observed
    request counts (plus smoothing), modelling the paper's "accumulating
    access statistics over periodic intervals and performing reorganization".
    Remapping is instantaneous; the number of files whose disk changed is
    reported per epoch so migration cost can be modelled externally.

    Mixed read/write streams (anything carrying a per-request ``kinds``
    array, e.g. :class:`~repro.workload.mixed.MixedRequestStream`) are
    split with their kinds intact, so writes stay writes in every epoch.

    ``initial_candidates`` optionally names several allocation policies to
    tournament **at every re-pack epoch**: the candidates fan out in
    parallel through the sweep orchestrator
    (:func:`repro.experiments.orchestrator.default_runner`, so
    ``--workers``/caching apply) against that epoch's stream and
    popularity estimate, and the energy-best packing (mean response breaks
    ties) continues the serial chain.  The per-epoch winners are recorded
    on :attr:`chosen_policies` (``chosen_initial_policy`` keeps exposing
    epoch 0's) and each epoch's full candidate results on
    :attr:`candidate_results`.  Without candidates the runner keeps the
    original serial-chain semantics: every epoch re-packs with ``policy``
    and no fan-out happens.

    Streaming metrics caveat: with ``config.metrics_mode="streaming"``
    the combined result's ``response_stats`` come from
    :meth:`~repro.system.metrics.ResponseStats.merge` over the per-epoch
    stats — count/min/max/mean survive, but the P² percentile estimators
    cannot be combined after the fact, so the merged p50/p95/p99 are
    ``NaN`` (the first lossy merge emits a :class:`RuntimeWarning`).
    Per-epoch percentiles remain available on
    ``epoch_results[i].response_stats``.
    """

    def __init__(
        self,
        catalog: FileCatalog,
        config: StorageConfig,
        policy: str = "pack",
        interval: float = 1000.0,
        smoothing: float = 0.5,
        initial_candidates: Optional[Sequence[str]] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigError("interval must be positive")
        if not 0 <= smoothing <= 1:
            raise ConfigError("smoothing must be in [0, 1]")
        self.catalog = catalog
        self.config = config
        self.policy = policy
        self.interval = interval
        self.smoothing = smoothing
        self.initial_candidates: Tuple[str, ...] = tuple(
            dict.fromkeys(initial_candidates or ())
        )
        #: Which candidate won the epoch-0 fan-out (``None`` until
        #: :meth:`run` with ``initial_candidates`` set has completed).
        self.chosen_initial_policy: Optional[str] = None
        #: Winning candidate per epoch (empty when fan-out is off).
        self.chosen_policies: List[str] = []
        #: Per-epoch result per candidate from the fan-out (one dict per
        #: epoch; empty list when fan-out is off).
        self.candidate_results: List[Dict[str, SimulationResult]] = []
        #: Epoch-0 result per candidate from the fan-out (for inspection;
        #: alias of ``candidate_results[0]`` once run).
        self.initial_candidate_results: Dict[str, SimulationResult] = {}
        self.moved_files: List[int] = []
        self.epoch_results: List[SimulationResult] = []

    def run(self, stream: RequestStream, rng=None) -> SimulationResult:
        """Run the whole stream with periodic reorganization."""
        epochs = self._split(stream)
        pops = self.catalog.popularities
        mapping_prev: Optional[np.ndarray] = None
        total_energy = 0.0
        responses = []
        stats_parts: List = []
        epoch_energy: List[np.ndarray] = []
        arrivals = completions = spinups = spindowns = 0
        always_on = 0.0
        max_disks = 0
        state_durations: Dict = {}

        for i, (epoch, _start) in enumerate(epochs):
            rate = max(epoch.mean_rate, 1e-9)
            result: Optional[SimulationResult] = None
            if self.initial_candidates:
                # Re-run the packing tournament at every re-pack epoch —
                # the winner can change as the popularity estimate drifts.
                allocation, result = self._pick_epoch_allocation(
                    epoch, rate, rng, pops, i
                )
            else:
                allocation = allocate(
                    self.catalog, self.policy, self.config, rate,
                    rng=rng, popularities=pops,
                )
            mapping = allocation.mapping(self.catalog.n)
            if mapping_prev is not None:
                self.moved_files.append(int(np.sum(mapping != mapping_prev)))
            mapping_prev = mapping
            if result is None:
                system = StorageSystem(self.catalog, mapping, self.config)
                result = system.run(epoch, label=f"{self.policy}@epoch{i}")
            self.epoch_results.append(result)

            total_energy += result.energy
            if result.response_times is not None:
                responses.append(result.response_times)
            else:
                # Streaming-metrics epoch: carry the bounded stats instead
                # of the (absent) response array.
                stats_parts.append(result.response_stats)
            epoch_energy.append(result.energy_per_disk)
            arrivals += result.arrivals
            completions += result.completions
            spinups += result.spinups
            spindowns += result.spindowns
            always_on += result.always_on_energy
            # Write allocation / re-packing can change the pool size between
            # epochs; report the widest pool the run ever used.
            max_disks = max(max_disks, result.num_disks)
            for state, t in result.state_durations.items():
                state_durations[state] = state_durations.get(state, 0.0) + t

            # Update popularity estimate from observed counts.
            counts = np.bincount(
                epoch.file_ids, minlength=self.catalog.n
            ).astype(float)
            if counts.sum() > 0:
                observed = counts / counts.sum()
                pops = (
                    self.smoothing * pops + (1.0 - self.smoothing) * observed
                )
                pops = pops / pops.sum()

        num_disks = max_disks or self.config.num_disks
        # Per-disk energy summed across epochs, padded to the widest pool
        # (disk i's total covers every epoch in which it existed).
        energy_per_disk = np.zeros(num_disks)
        for per_disk in epoch_energy:
            energy_per_disk[: per_disk.shape[0]] += per_disk

        return SimulationResult(
            algorithm=f"{self.policy}+reorg",
            duration=stream.duration,
            num_disks=num_disks,
            energy=total_energy,
            energy_per_disk=energy_per_disk,
            state_durations=state_durations,
            response_times=(
                None
                if stats_parts
                else np.concatenate(responses)
                if responses
                else np.empty(0)
            ),
            response_stats=(
                ResponseStats.merge(stats_parts) if stats_parts else None
            ),
            arrivals=arrivals,
            completions=completions,
            spinups=spinups,
            spindowns=spindowns,
            always_on_energy=always_on,
            extra={
                "epochs": float(len(epochs)),
                "mean_moved_files": (
                    float(np.mean(self.moved_files)) if self.moved_files else 0.0
                ),
                **(
                    {"chosen_policies": list(self.chosen_policies)}
                    if self.chosen_policies
                    else {}
                ),
            },
        )

    def _pick_epoch_allocation(self, epoch, rate: float, rng, pops, index: int):
        """Fan out one epoch's allocation candidates via the orchestrator.

        Each candidate policy is packaged as a :class:`SimTask` over the
        epoch's stream (with the current popularity estimate) and
        dispatched through the shared sweep runner (parallel when
        ``--workers``/``REPRO_SWEEP_WORKERS`` says so, and
        fingerprint-cached like any other grid point).  The energy-best
        packing (mean response breaks ties) wins; its allocation is
        recomputed locally — deterministically identical to the worker's —
        and its simulated result is reused as the epoch's result.
        """
        # Imported lazily: the orchestrator imports this module's
        # allocate/simulate helpers, so a top-level import would be a cycle.
        from repro.experiments.orchestrator import (
            InlineWorkload,
            SimTask,
            default_runner,
        )

        if rng is not None and not isinstance(rng, (int, np.integer)):
            raise ConfigError(
                "initial_candidates fan-out requires a picklable integer "
                "seed (or None) for rng, not a Generator instance"
            )
        if rng is None and "random" in self.initial_candidates:
            raise ConfigError(
                "candidate 'random' needs an integer rng seed so the "
                "fanned-out simulation and the continued mapping agree"
            )
        workload = InlineWorkload(
            sizes=self.catalog.sizes,
            popularities=pops,
            times=epoch.times,
            file_ids=epoch.file_ids,
            duration=epoch.duration,
            kinds=getattr(epoch, "kinds", None),
        )
        tasks = [
            SimTask(
                label=f"{candidate}@epoch{index}",
                workload=workload,
                config=self.config,
                policy=candidate,
                arrival_rate=rate,
                alloc_rng=None if rng is None else int(rng),
                key=candidate,
            )
            for candidate in self.initial_candidates
        ]
        by_key = default_runner().run_map(tasks)
        self.candidate_results.append(dict(by_key))
        if index == 0:
            self.initial_candidate_results = dict(by_key)

        def score(candidate: str) -> Tuple[float, float]:
            res = by_key[candidate]
            resp = res.mean_response
            return res.energy, resp if resp == resp else float("inf")

        best = min(self.initial_candidates, key=score)
        self.chosen_policies.append(best)
        if index == 0:
            self.chosen_initial_policy = best
        allocation = allocate(
            self.catalog, best, self.config, rate, rng=rng,
            popularities=pops,
        )
        return allocation, by_key[best]

    def _split(self, stream: RequestStream) -> List[Tuple[RequestStream, float]]:
        # Integer epoch count: float edge accumulation (np.arange) could emit
        # a sliver epoch when duration/interval lands near an integer, and a
        # zero-length final epoch crashes StorageSystem.run.  Sub-1e-9
        # overhangs are absorbed into the last epoch.
        n_epochs = max(
            1, int(math.ceil(stream.duration / self.interval - 1e-9))
        )
        # A duck-typed mixed stream carries a per-request kind; epochs must
        # keep it, or every write would silently be simulated as a read
        # (and writes of new files would crash as unallocated reads).
        kinds = getattr(stream, "kinds", None)
        if kinds is not None:
            kinds = np.asarray(kinds)
            if kinds.shape != np.shape(stream.times):
                raise ConfigError(
                    "stream kinds must align with times to split into epochs"
                )
        out = []
        for i in range(n_epochs):
            start = i * self.interval
            last = i == n_epochs - 1
            end = stream.duration if last else (i + 1) * self.interval
            mask = stream.times >= start
            # RequestStream permits times[-1] == duration, so the final
            # epoch's upper bound is inclusive: a strict < would drop a
            # horizon request from every epoch, losing it from the access
            # statistics that drive re-packing and from epoch-length
            # conservation.  (The simulator still censors it at the cutoff,
            # exactly as a monolithic run over the whole stream would.)
            mask &= (stream.times <= end) if last else (stream.times < end)
            if kinds is not None:
                epoch = MixedRequestStream(
                    times=stream.times[mask] - start,
                    file_ids=stream.file_ids[mask],
                    kinds=kinds[mask],
                    duration=end - start,
                )
            else:
                epoch = RequestStream(
                    times=stream.times[mask] - start,
                    file_ids=stream.file_ids[mask],
                    duration=end - start,
                )
            out.append((epoch, start))
        return out
