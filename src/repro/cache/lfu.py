"""Least-frequently-used cache (ties broken LRU)."""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Dict

from repro.cache.base import BaseCache

__all__ = ["LFUCache"]


class LFUCache(BaseCache):
    """Evicts the file with the fewest recorded accesses.

    Uses a lazy heap of ``(frequency, seq, file_id)`` snapshots; stale
    entries (frequency changed since push) are skipped at pop time, giving
    amortized O(log n) operations.
    """

    policy_name = "lfu"

    def __init__(self, capacity: float) -> None:
        super().__init__(capacity)
        self._freq: Dict[int, int] = {}
        self._heap: list = []
        self._seq = count()

    def _push(self, file_id: int) -> None:
        heappush(self._heap, (self._freq[file_id], next(self._seq), file_id))

    def _victim(self) -> int:
        while self._heap:
            freq, _, file_id = self._heap[0]
            if file_id in self._freq and self._freq[file_id] == freq:
                return file_id
            heappop(self._heap)  # stale snapshot
        raise RuntimeError("LFU heap empty while cache non-empty")  # pragma: no cover

    def _on_hit(self, file_id: int) -> None:
        if file_id in self._freq:
            self._freq[file_id] += 1
            self._push(file_id)

    def _on_insert(self, file_id: int) -> None:
        self._freq[file_id] = 1
        self._push(file_id)

    def _on_evict(self, file_id: int) -> None:
        del self._freq[file_id]

    def frequency(self, file_id: int) -> int:
        """Recorded access count of a resident file (tests/diagnostics)."""
        return self._freq[file_id]
