"""Whole-file cache substrate placed in front of the disk array.

The paper evaluates a 16 GB LRU cache ("RND+LRU", "Pack_Disk4+LRU" in
Figures 5/6) and names replacement policy a future-work axis; besides
:class:`~repro.cache.lru.LRUCache` this package ships LFU, FIFO and CLOCK
policies for that ablation.

Caches store *whole files* keyed by file id, evict to byte capacity, and
never admit a file larger than their capacity.
"""

from repro.cache.base import BaseCache, CacheStats, make_cache
from repro.cache.clock import ClockCache
from repro.cache.fifo import FIFOCache
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache

__all__ = [
    "BaseCache",
    "CacheStats",
    "ClockCache",
    "FIFOCache",
    "LFUCache",
    "LRUCache",
    "make_cache",
]
