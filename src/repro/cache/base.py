"""Cache interface, statistics, and factory."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ConfigError

__all__ = ["BaseCache", "CacheStats", "make_cache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0  # files larger than the whole cache
    bytes_hit: float = 0.0
    bytes_missed: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from cache (nan before any lookup)."""
        total = self.lookups
        return self.hits / total if total else float("nan")

    @property
    def byte_hit_ratio(self) -> float:
        total = self.bytes_hit + self.bytes_missed
        return self.bytes_hit / total if total else float("nan")


class BaseCache(ABC):
    """Common machinery for whole-file caches.

    Subclasses implement the eviction order via :meth:`_victim` and the
    bookkeeping hooks :meth:`_on_hit` / :meth:`_on_insert` / :meth:`_on_evict`.

    Parameters
    ----------
    capacity:
        Cache size in bytes (> 0).
    """

    policy_name = "base"

    def __init__(self, capacity: float) -> None:
        if capacity <= 0:
            raise ConfigError(f"cache capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self.used = 0.0
        self._sizes: Dict[int, float] = {}
        self.stats = CacheStats()
        # Optional observability callback (``repro.obs``): called with the
        # victim's file id on every eviction.  Purely passive — engines
        # install it only when a run carries an enabled observer.
        self.evict_hook: Optional[Callable[[int], None]] = None

    def __len__(self) -> int:
        return len(self._sizes)

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._sizes

    def lookup(self, file_id: int, size: float) -> bool:
        """Check for ``file_id``; records hit/miss and updates recency.

        Returns True on hit.
        """
        if file_id in self._sizes:
            self.stats.hits += 1
            self.stats.bytes_hit += size
            self._on_hit(file_id)
            return True
        self.stats.misses += 1
        self.stats.bytes_missed += size
        return False

    def admit(self, file_id: int, size: float) -> bool:
        """Insert ``file_id`` after a miss completes, evicting as needed.

        Files larger than the entire cache are rejected (returns False).
        Re-admitting a resident file only refreshes its policy state.
        """
        if size < 0:
            raise ConfigError("file size must be >= 0")
        if size > self.capacity:
            self.stats.rejected += 1
            return False
        if file_id in self._sizes:
            self._on_hit(file_id)
            return True
        # Guard on residency as well as byte pressure: `used` is a float
        # accumulator, so evicting in a different order than insertion can
        # leave a ~1e-16 residue even when the cache is empty — without the
        # guard that residue would send `_victim()` hunting an empty cache.
        while self._sizes and self.used + size > self.capacity:
            victim = self._victim()
            self._evict(victim)
        self._sizes[file_id] = size
        self.used += size
        self.stats.insertions += 1
        self._on_insert(file_id)
        return True

    def _evict(self, file_id: int) -> None:
        size = self._sizes.pop(file_id)
        self.used -= size
        if not self._sizes:
            # Clear float-accumulation residue so `used <= capacity` stays
            # an exact invariant across arbitrarily long admit streams.
            self.used = 0.0
        self.stats.evictions += 1
        self._on_evict(file_id)
        if self.evict_hook is not None:
            self.evict_hook(file_id)

    # -- policy hooks ------------------------------------------------------------

    @abstractmethod
    def _victim(self) -> int:
        """Choose the file id to evict next (cache guaranteed non-empty)."""

    def _on_hit(self, file_id: int) -> None:  # pragma: no cover - default no-op
        pass

    def _on_insert(self, file_id: int) -> None:  # pragma: no cover - default no-op
        pass

    def _on_evict(self, file_id: int) -> None:  # pragma: no cover - default no-op
        pass


def make_cache(policy: str, capacity: float) -> BaseCache:
    """Factory by policy name: ``lru``, ``lfu``, ``fifo`` or ``clock``."""
    from repro.cache.clock import ClockCache
    from repro.cache.fifo import FIFOCache
    from repro.cache.lfu import LFUCache
    from repro.cache.lru import LRUCache

    policies = {
        "lru": LRUCache,
        "lfu": LFUCache,
        "fifo": FIFOCache,
        "clock": ClockCache,
    }
    try:
        cls = policies[policy.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown cache policy {policy!r}; choose from {sorted(policies)}"
        ) from None
    return cls(capacity)
