"""First-in-first-out cache (insertion order, oblivious to hits)."""

from __future__ import annotations

from collections import deque

from repro.cache.base import BaseCache

__all__ = ["FIFOCache"]


class FIFOCache(BaseCache):
    """Evicts the oldest *inserted* file regardless of access recency."""

    policy_name = "fifo"

    def __init__(self, capacity: float) -> None:
        super().__init__(capacity)
        self._order: deque = deque()

    def _victim(self) -> int:
        # The deque can only contain resident files: eviction is the sole
        # removal path and it pops exactly the head.
        return self._order[0]

    def _on_insert(self, file_id: int) -> None:
        self._order.append(file_id)

    def _on_evict(self, file_id: int) -> None:
        head = self._order.popleft()
        assert head == file_id, "FIFO eviction out of order"
