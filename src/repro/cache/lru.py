"""Least-recently-used cache — the policy the paper evaluates (16 GB)."""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import BaseCache

__all__ = ["LRUCache"]


class LRUCache(BaseCache):
    """Evicts the file untouched for the longest time.

    O(1) per operation via an ordered dict (most recent at the end).
    """

    policy_name = "lru"

    def __init__(self, capacity: float) -> None:
        super().__init__(capacity)
        self._order: OrderedDict = OrderedDict()

    def _victim(self) -> int:
        return next(iter(self._order))

    def _on_hit(self, file_id: int) -> None:
        self._order.move_to_end(file_id)

    def _on_insert(self, file_id: int) -> None:
        self._order[file_id] = None

    def _on_evict(self, file_id: int) -> None:
        del self._order[file_id]

    def recency_order(self) -> list:
        """File ids from least to most recently used (tests/diagnostics)."""
        return list(self._order)
