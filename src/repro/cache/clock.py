"""CLOCK (second-chance) cache — an LRU approximation with O(1) hits."""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import BaseCache

__all__ = ["ClockCache"]


class ClockCache(BaseCache):
    """Second-chance eviction.

    Resident files sit on a circular list with a reference bit.  A hit sets
    the bit; the eviction hand clears bits until it finds an unset one,
    which is evicted.  Approximates LRU without per-hit reordering.
    """

    policy_name = "clock"

    def __init__(self, capacity: float) -> None:
        super().__init__(capacity)
        # OrderedDict models the circle: iteration order is hand order.
        self._ref: OrderedDict = OrderedDict()

    def _victim(self) -> int:
        while True:
            file_id, referenced = next(iter(self._ref.items()))
            if referenced:
                # Second chance: clear the bit, move behind the hand.
                self._ref[file_id] = False
                self._ref.move_to_end(file_id)
            else:
                return file_id

    def _on_hit(self, file_id: int) -> None:
        self._ref[file_id] = True

    def _on_insert(self, file_id: int) -> None:
        self._ref[file_id] = False

    def _on_evict(self, file_id: int) -> None:
        del self._ref[file_id]
