"""``Pack_Disks`` — the paper's O(n log n) 2DVPP approximation (Algorithm 3).

Sketch of the algorithm
-----------------------
Items are split into the *size-intensive* set ``ST(F)`` (``s_i >= l_i``) and
the *load-intensive* set ``LD(F)`` (``l_i > s_i``), kept in two max-heaps
keyed by the excess ``~s_i = s_i - l_i`` and ``~l_i = l_i - s_i``.  Disks are
packed one at a time; the next item always comes from the heap *opposite* to
the dimension currently dominating the open disk, driving both dimensions up
together.  If the popped item would overflow, the most recently added item of
the opposite kind is evicted back to its heap (an O(1) operation thanks to
the two per-disk stacks ``s-list``/``l-list``), the popped item is inserted,
and — by the paper's Lemmas 3/4 — the disk is then *complete* (both
dimensions within ``[1 - rho, 1]``) and is closed.  Whatever remains when one
heap empties is packed next-fit style on the surviving dimension
(``Pack_Remaining_S``/``Pack_Remaining_L``); Lemma 6 shows every closed disk
is then at least s-complete or l-complete, which yields Theorem 1's bound

.. math:: C_{PD} \\le \\frac{C^*}{1 - \\rho} + 1 .

The cost improvement over Chang-Hwang-Park (2005) is exactly the O(1)
eviction: their algorithm searches the open disk for an evictable element
(O(n) per overflow, O(n^2) total), see
:func:`repro.core.reference.pack_disks_quadratic`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.allocation import Allocation, PackedDisk
from repro.core.heap import MaxHeap
from repro.core.item import EPS, PackItem, rho_of
from repro.errors import PackingError

__all__ = ["pack_disks", "split_intensive"]


def split_intensive(items: Iterable[PackItem]) -> tuple:
    """Partition items into (size_intensive, load_intensive) lists.

    Size-intensive: ``s_i >= l_i`` (the paper's ``ST(F)``); load-intensive:
    ``l_i > s_i`` (``LD(F)``).
    """
    st: List[PackItem] = []
    ld: List[PackItem] = []
    for item in items:
        (st if item.size >= item.load else ld).append(item)
    return st, ld


def _check_items(items: Sequence[PackItem]) -> None:
    for item in items:
        if item.size > 1 + EPS or item.load > 1 + EPS:
            raise PackingError(
                f"item {item.index} exceeds unit capacity "
                f"(s={item.size:.4f}, l={item.load:.4f})"
            )
        if item.size < 0 or item.load < 0:
            raise PackingError(
                f"item {item.index} has a negative coordinate"
            )


class _OpenDisk:
    """Mutable state of the disk currently being packed.

    Keeps the two stacks the paper calls ``s-list[i]`` and ``l-list[i]``;
    the element to evict on overflow is the top of the opposite stack, an
    O(1) lookup (the key improvement over the O(n) search in [3]).
    """

    __slots__ = ("s_list", "l_list", "s_sum", "l_sum")

    def __init__(self) -> None:
        self.s_list: List[PackItem] = []
        self.l_list: List[PackItem] = []
        self.s_sum = 0.0
        self.l_sum = 0.0

    def add_s(self, item: PackItem) -> None:
        self.s_list.append(item)
        self.s_sum += item.size
        self.l_sum += item.load

    def add_l(self, item: PackItem) -> None:
        self.l_list.append(item)
        self.s_sum += item.size
        self.l_sum += item.load

    def pop_s(self) -> PackItem:
        item = self.s_list.pop()
        self.s_sum -= item.size
        self.l_sum -= item.load
        return item

    def pop_l(self) -> PackItem:
        item = self.l_list.pop()
        self.s_sum -= item.size
        self.l_sum -= item.load
        return item

    def is_complete(self, rho: float) -> bool:
        threshold = 1.0 - rho - EPS
        return self.s_sum >= threshold and self.l_sum >= threshold

    def items(self) -> List[PackItem]:
        return self.s_list + self.l_list

    def __len__(self) -> int:
        return len(self.s_list) + len(self.l_list)


def pack_disks(
    items: Sequence[PackItem],
    rho: Optional[float] = None,
) -> Allocation:
    """Pack normalized items onto the minimum-ish number of disks.

    Parameters
    ----------
    items:
        Normalized :class:`~repro.core.item.PackItem` elements (build them
        with :func:`~repro.core.item.make_items`).
    rho:
        The bound on item coordinates used for the completeness test.
        Defaults to the tight value ``max_i max(s_i, l_i)``.  A larger
        ``rho`` closes disks earlier (fewer eviction events, looser packing);
        the Theorem 1 guarantee holds for any valid ``rho``.

    Returns
    -------
    Allocation
        Feasible on both dimensions; disk count within
        ``C*/(1 - rho) + 1`` of the optimum ``C*``.

    Raises
    ------
    PackingError
        If any single item exceeds unit capacity, or ``rho`` is smaller than
        some item coordinate.
    """
    items = list(items)
    _check_items(items)
    tight_rho = rho_of(items)
    if rho is None:
        rho = tight_rho
    elif rho < tight_rho - EPS:
        raise PackingError(
            f"rho={rho} is below the largest item coordinate {tight_rho:.6f}"
        )
    if not items:
        return Allocation(disks=[], algorithm="pack_disks", rho=rho)

    st, ld = split_intensive(items)
    s_heap: MaxHeap[PackItem] = MaxHeap(
        (item.size - item.load, item) for item in st
    )
    l_heap: MaxHeap[PackItem] = MaxHeap(
        (item.load - item.size, item) for item in ld
    )

    disks: List[PackedDisk] = []
    disk = _OpenDisk()

    def close_disk() -> None:
        nonlocal disk
        disks.append(PackedDisk(index=len(disks), items=disk.items()))
        disk = _OpenDisk()

    # -- main loop (Algorithm 3 lines 4-21) -----------------------------------
    while (disk.s_sum >= disk.l_sum and l_heap) or (
        disk.s_sum < disk.l_sum and s_heap
    ):
        if disk.s_sum >= disk.l_sum:
            # Storage currently dominates: take a load-intensive element.
            _, item = l_heap.pop()
            if disk.s_sum + item.size > 1 + EPS:
                # Overflow: evict the most recent size-intensive element
                # (Lemma 1 guarantees it exists and its excess covers the
                # imbalance), then the disk becomes complete (Lemma 3).
                if not disk.s_list:
                    # Theoretically unreachable (Lemma 1); guard against
                    # degenerate float corner cases without crashing.
                    l_heap.push(item.load - item.size, item)
                    close_disk()
                    continue
                evicted = disk.pop_s()
                s_heap.push(evicted.size - evicted.load, evicted)
                disk.add_l(item)
            else:
                disk.add_l(item)
        else:
            # Load currently dominates: take a size-intensive element.
            _, item = s_heap.pop()
            if disk.l_sum + item.load > 1 + EPS:
                if not disk.l_list:
                    s_heap.push(item.size - item.load, item)
                    close_disk()
                    continue
                evicted = disk.pop_l()
                l_heap.push(evicted.load - evicted.size, evicted)
                disk.add_s(item)
            else:
                disk.add_s(item)
        if disk.is_complete(rho):
            close_disk()

    # -- Pack_Remaining_S / Pack_Remaining_L (lines 22-23) ---------------------
    # At most one heap is non-empty here (Lemma 5).  Remaining size-intensive
    # items only need the storage check (their load is <= their size), and
    # symmetrically for load-intensive items.
    while s_heap:
        _, item = s_heap.pop()
        if disk.s_sum + item.size > 1 + EPS:
            close_disk()
        disk.add_s(item)
    while l_heap:
        _, item = l_heap.pop()
        if disk.l_sum + item.load > 1 + EPS:
            close_disk()
        disk.add_l(item)

    if len(disk):
        close_disk()

    allocation = Allocation(disks=disks, algorithm="pack_disks", rho=rho)
    return allocation
