"""A keyed max-heap with O(n) construction.

The paper's complexity argument (Lemma 7) rests on this structure: the two
heaps ``~S`` and ``~L`` are built in O(n) and support O(log n) insert and
extract-max, giving the overall O(n log n) bound.  Ties are broken FIFO by
insertion sequence so packing output is fully deterministic.
"""

from __future__ import annotations

from typing import Generic, Iterable, List, Optional, Tuple, TypeVar

__all__ = ["MaxHeap"]

T = TypeVar("T")


class MaxHeap(Generic[T]):
    """Binary max-heap of ``(key, payload)`` entries.

    ``pop`` returns the entry with the largest key; equal keys come out in
    insertion order (FIFO).
    """

    __slots__ = ("_entries", "_seq")

    def __init__(self, entries: Optional[Iterable[Tuple[float, T]]] = None) -> None:
        # Internal entries are (key, -seq, payload): tuple comparison gives a
        # max-heap on key with FIFO tie-breaking (older entries have larger
        # -seq ... no: older entries have *smaller* seq, hence larger -seq,
        # so they win ties and pop first).
        self._seq = 0
        self._entries: List[Tuple[float, int, T]] = []
        if entries is not None:
            for key, payload in entries:
                self._entries.append((float(key), -self._seq, payload))
                self._seq += 1
            self._heapify()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def push(self, key: float, payload: T) -> None:
        """Insert an entry in O(log n)."""
        self._entries.append((float(key), -self._seq, payload))
        self._seq += 1
        self._sift_up(len(self._entries) - 1)

    def peek(self) -> Tuple[float, T]:
        """Return (but keep) the max-key entry."""
        if not self._entries:
            raise IndexError("peek from an empty heap")
        key, _, payload = self._entries[0]
        return key, payload

    def pop(self) -> Tuple[float, T]:
        """Remove and return the max-key entry in O(log n)."""
        if not self._entries:
            raise IndexError("pop from an empty heap")
        top = self._entries[0]
        last = self._entries.pop()
        if self._entries:
            self._entries[0] = last
            self._sift_down(0)
        return top[0], top[2]

    # -- internals ------------------------------------------------------------

    def _heapify(self) -> None:
        # Bottom-up heap construction: O(n) total.
        for i in range(len(self._entries) // 2 - 1, -1, -1):
            self._sift_down(i)

    def _sift_up(self, i: int) -> None:
        entries = self._entries
        entry = entries[i]
        while i > 0:
            parent = (i - 1) >> 1
            if entries[parent][:2] >= entry[:2]:
                break
            entries[i] = entries[parent]
            i = parent
        entries[i] = entry

    def _sift_down(self, i: int) -> None:
        entries = self._entries
        n = len(entries)
        entry = entries[i]
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            right = left + 1
            child = left
            if right < n and entries[right][:2] > entries[left][:2]:
                child = right
            if entries[child][:2] <= entry[:2]:
                break
            entries[i] = entries[child]
            i = child
        entries[i] = entry

    # -- test support ----------------------------------------------------------

    def check_invariant(self) -> None:
        """Assert the max-heap property over the whole array (tests only)."""
        entries = self._entries
        for i in range(1, len(entries)):
            parent = (i - 1) >> 1
            assert entries[parent][:2] >= entries[i][:2], (
                f"heap violated at index {i}"
            )

    def as_sorted_list(self) -> List[Tuple[float, T]]:
        """Drain a *copy* of the heap in descending key order (tests only)."""
        clone = MaxHeap.__new__(MaxHeap)
        clone._entries = list(self._entries)
        clone._seq = self._seq
        out = []
        while clone:
            out.append(clone.pop())
        return out
