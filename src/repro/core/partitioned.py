"""Class-partitioned packing (paper §6's file-type restriction).

The paper's future-work section observes that "large files that introduce
long response time delays, residing on the same disk with small and
frequently accessed files lead to the formation of long queues".  The fix
it suggests — "restricting the types of files that are allocated to the
same disk" — is implemented here: items are partitioned by a classifier
(size class by default), each class is packed independently with
``Pack_Disks``, and the per-class allocations are concatenated onto
disjoint disk ranges.

The Theorem 1 bound degrades gracefully: with ``k`` classes the count is
within ``k`` extra disks of ``C*/(1-rho)`` (one possibly-incomplete final
disk per class).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.core.allocation import Allocation, PackedDisk
from repro.core.item import PackItem
from repro.core.packing import pack_disks
from repro.errors import PackingError

__all__ = ["pack_disks_partitioned", "size_class_classifier"]


def size_class_classifier(boundary: float) -> Callable[[PackItem], str]:
    """Two-way classifier on the *normalized* item size.

    ``boundary`` is in normalized units (fraction of a disk); e.g. with
    500 GB disks, ``boundary=0.004`` separates files at 2 GB.
    """
    if boundary <= 0:
        raise PackingError("boundary must be positive")

    def classify(item: PackItem) -> str:
        return "large" if item.size > boundary else "small"

    return classify


def pack_disks_partitioned(
    items: Sequence[PackItem],
    classifier: Callable[[PackItem], Hashable],
    rho: Optional[float] = None,
) -> Allocation:
    """Pack each item class onto its own disjoint set of disks.

    Parameters
    ----------
    items:
        Normalized items.
    classifier:
        Maps an item to its class key; classes are packed in sorted key
        order (deterministic output).
    rho:
        Optional coordinate bound forwarded to each per-class pack.

    Returns
    -------
    Allocation
        Feasible on both dimensions; ``algorithm`` records the class count.
    """
    groups: Dict[Hashable, List[PackItem]] = {}
    for item in items:
        groups.setdefault(classifier(item), []).append(item)

    disks: List[PackedDisk] = []
    for key in sorted(groups, key=repr):
        sub = pack_disks(groups[key], rho=rho)
        for disk in sub.disks:
            disks.append(PackedDisk(index=len(disks), items=disk.items))

    effective_rho = max(
        (max(it.size, it.load) for it in items), default=0.0
    )
    return Allocation(
        disks=disks,
        algorithm=f"pack_disks_partitioned_{len(groups)}",
        rho=rho if rho is not None else effective_rho,
    )
