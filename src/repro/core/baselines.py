"""Comparison allocators: random placement and classic packing heuristics.

The paper evaluates ``Pack_Disks`` against **random placement** (uniform
file-to-disk assignment over a fixed pool, storage-feasibility respected);
the other heuristics here (first-fit, best-fit, first-fit-decreasing,
next-fit, round-robin) are standard vector-packing baselines used by the
ablation benchmarks.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.allocation import Allocation, PackedDisk
from repro.core.item import EPS, PackItem
from repro.errors import CapacityError, PackingError
from repro.sim.rng import rng_from_seed

__all__ = [
    "best_fit",
    "first_fit",
    "first_fit_decreasing",
    "next_fit",
    "random_allocation",
    "round_robin_allocation",
]


def _finalize(
    bins: List[List[PackItem]], algorithm: str, rho: float = 0.0
) -> Allocation:
    disks = [
        PackedDisk(index=i, items=items) for i, items in enumerate(bins)
    ]
    return Allocation(disks=disks, algorithm=algorithm, rho=rho)


def random_allocation(
    items: Sequence[PackItem],
    num_disks: int,
    rng=None,
    respect_capacity: bool = True,
) -> Allocation:
    """Uniform random file-to-disk placement over a fixed pool.

    This is the paper's comparison baseline: each file lands on a uniformly
    random disk.  With ``respect_capacity`` (default), a file that does not
    fit by *storage* on the drawn disk is re-drawn among the disks with
    space (random placement is oblivious to loads, as in the paper).

    Raises
    ------
    CapacityError
        If ``respect_capacity`` and some file fits on no disk.
    """
    if num_disks < 1:
        raise PackingError(f"num_disks must be >= 1, got {num_disks}")
    rng = rng_from_seed(rng)
    bins: List[List[PackItem]] = [[] for _ in range(num_disks)]
    sizes = np.zeros(num_disks)
    for item in items:
        disk = int(rng.integers(num_disks))
        if respect_capacity and sizes[disk] + item.size > 1 + EPS:
            feasible = np.flatnonzero(sizes + item.size <= 1 + EPS)
            if feasible.size == 0:
                raise CapacityError(
                    f"file {item.index} (s={item.size:.4f}) fits on none of "
                    f"the {num_disks} disks"
                )
            disk = int(feasible[rng.integers(feasible.size)])
        bins[disk].append(item)
        sizes[disk] += item.size
    return _finalize(bins, f"random_{num_disks}")


def round_robin_allocation(
    items: Sequence[PackItem],
    num_disks: int,
    respect_capacity: bool = True,
) -> Allocation:
    """Deterministic striping: file ``i`` goes to disk ``i mod num_disks``.

    This is the placement flavour used by striping-based schemes such as
    SEA; it spreads load perfectly but destroys idleness.
    """
    if num_disks < 1:
        raise PackingError(f"num_disks must be >= 1, got {num_disks}")
    bins: List[List[PackItem]] = [[] for _ in range(num_disks)]
    sizes = np.zeros(num_disks)
    for i, item in enumerate(items):
        disk = i % num_disks
        if respect_capacity and sizes[disk] + item.size > 1 + EPS:
            feasible = np.flatnonzero(sizes + item.size <= 1 + EPS)
            if feasible.size == 0:
                raise CapacityError(
                    f"file {item.index} (s={item.size:.4f}) fits on none of "
                    f"the {num_disks} disks"
                )
            disk = int(feasible[0])
        bins[disk].append(item)
        sizes[disk] += item.size
    return _finalize(bins, f"round_robin_{num_disks}")


def _fits(sizes: float, loads: float, item: PackItem) -> bool:
    return sizes + item.size <= 1 + EPS and loads + item.load <= 1 + EPS


def first_fit(items: Sequence[PackItem]) -> Allocation:
    """First-fit on both dimensions: place each item on the lowest-numbered
    disk where it fits, opening a new disk when none does."""
    bins: List[List[PackItem]] = []
    sizes: List[float] = []
    loads: List[float] = []
    for item in items:
        for i in range(len(bins)):
            if _fits(sizes[i], loads[i], item):
                bins[i].append(item)
                sizes[i] += item.size
                loads[i] += item.load
                break
        else:
            bins.append([item])
            sizes.append(item.size)
            loads.append(item.load)
    return _finalize(bins, "first_fit")


def best_fit(items: Sequence[PackItem]) -> Allocation:
    """Best-fit: place each item on the feasible disk with the least combined
    slack remaining after placement (tightest fit)."""
    bins: List[List[PackItem]] = []
    sizes: List[float] = []
    loads: List[float] = []
    for item in items:
        best = -1
        best_slack = float("inf")
        for i in range(len(bins)):
            if _fits(sizes[i], loads[i], item):
                slack = (1 - sizes[i] - item.size) + (1 - loads[i] - item.load)
                if slack < best_slack:
                    best = i
                    best_slack = slack
        if best < 0:
            bins.append([item])
            sizes.append(item.size)
            loads.append(item.load)
        else:
            bins[best].append(item)
            sizes[best] += item.size
            loads[best] += item.load
    return _finalize(bins, "best_fit")


def first_fit_decreasing(
    items: Sequence[PackItem],
    key: Optional[Callable[[PackItem], float]] = None,
) -> Allocation:
    """First-fit after sorting by decreasing ``key`` (default
    ``max(s_i, l_i)``, the standard vector-packing order)."""
    if key is None:
        key = lambda item: max(item.size, item.load)  # noqa: E731
    ordered = sorted(items, key=key, reverse=True)
    allocation = first_fit(ordered)
    allocation.algorithm = "first_fit_decreasing"
    return allocation


def next_fit(items: Sequence[PackItem]) -> Allocation:
    """Next-fit: keep a single open disk; open a new one when the next item
    does not fit.  The weakest (but O(n)) baseline."""
    bins: List[List[PackItem]] = []
    size = load = 0.0
    current: List[PackItem] = []
    for item in items:
        if current and not _fits(size, load, item):
            bins.append(current)
            current = []
            size = load = 0.0
        current.append(item)
        size += item.size
        load += item.load
    if current:
        bins.append(current)
    return _finalize(bins, "next_fit")
