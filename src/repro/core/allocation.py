"""Allocation result types shared by every packing algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.item import EPS, PackItem
from repro.errors import PackingError

__all__ = ["Allocation", "PackedDisk"]


@dataclass
class PackedDisk:
    """One disk's worth of items produced by an allocator.

    Attributes
    ----------
    index:
        Disk number (0-based).
    items:
        The items placed on this disk, in placement order.
    """

    index: int
    items: List[PackItem] = field(default_factory=list)

    @property
    def total_size(self) -> float:
        """``S(D_i)`` — summed normalized sizes."""
        return sum(item.size for item in self.items)

    @property
    def total_load(self) -> float:
        """``L(D_i)`` — summed normalized loads."""
        return sum(item.load for item in self.items)

    def is_s_complete(self, rho: float) -> bool:
        """Paper definition: ``1 >= S(D_i) >= 1 - rho``."""
        return 1 - rho - EPS <= self.total_size <= 1 + EPS

    def is_l_complete(self, rho: float) -> bool:
        """Paper definition: ``1 >= L(D_i) >= 1 - rho``."""
        return 1 - rho - EPS <= self.total_load <= 1 + EPS

    def is_complete(self, rho: float) -> bool:
        """Both s-complete and l-complete."""
        return self.is_s_complete(rho) and self.is_l_complete(rho)

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class Allocation:
    """A full file-to-disk assignment.

    Attributes
    ----------
    disks:
        The packed disks, densely numbered from 0.
    algorithm:
        Human-readable name of the allocator that produced this.
    rho:
        The ``rho`` (max normalized coordinate) of the packed item set;
        carried along for bound checking.
    """

    disks: List[PackedDisk]
    algorithm: str
    rho: float = 0.0

    @property
    def num_disks(self) -> int:
        """Number of (non-empty) disks used."""
        return len(self.disks)

    @property
    def num_items(self) -> int:
        """Total number of items across all disks."""
        return sum(len(d) for d in self.disks)

    def mapping(self, num_files: Optional[int] = None) -> np.ndarray:
        """Dense ``file index -> disk index`` array.

        Parameters
        ----------
        num_files:
            Length of the output array; defaults to ``max index + 1``.
            Unassigned slots (if any) are ``-1``.
        """
        if num_files is None:
            num_files = 1 + max(
                (item.index for d in self.disks for item in d.items),
                default=-1,
            )
        table = np.full(num_files, -1, dtype=np.int64)
        for disk in self.disks:
            for item in disk.items:
                if item.index >= num_files:
                    raise PackingError(
                        f"item index {item.index} out of range for "
                        f"num_files={num_files}"
                    )
                table[item.index] = disk.index
        return table

    def mapping_dict(self) -> Dict[int, int]:
        """``{file index: disk index}`` for sparse use."""
        return {
            item.index: disk.index
            for disk in self.disks
            for item in disk.items
        }

    def sizes_per_disk(self) -> np.ndarray:
        """Array of ``S(D_i)`` per disk."""
        return np.array([d.total_size for d in self.disks], dtype=float)

    def loads_per_disk(self) -> np.ndarray:
        """Array of ``L(D_i)`` per disk."""
        return np.array([d.total_load for d in self.disks], dtype=float)

    def validate(self, items: Optional[Sequence[PackItem]] = None, tol: float = EPS) -> None:
        """Raise :class:`PackingError` unless this is a feasible allocation.

        Checks per-disk capacity on both dimensions, dense disk numbering,
        and — when ``items`` is given — that every input item appears exactly
        once.
        """
        for pos, disk in enumerate(self.disks):
            if disk.index != pos:
                raise PackingError(
                    f"disks are not densely numbered: position {pos} holds "
                    f"disk {disk.index}"
                )
            if disk.total_size > 1 + tol:
                raise PackingError(
                    f"disk {pos} storage overflow: S={disk.total_size:.9f}"
                )
            if disk.total_load > 1 + tol:
                raise PackingError(
                    f"disk {pos} load overflow: L={disk.total_load:.9f}"
                )
        if items is not None:
            seen = sorted(
                item.index for d in self.disks for item in d.items
            )
            expected = sorted(item.index for item in items)
            if seen != expected:
                raise PackingError(
                    f"allocation covers {len(seen)} items but input has "
                    f"{len(expected)} (or indices differ)"
                )

    def summary(self) -> str:
        """One-line human-readable description."""
        if not self.disks:
            return f"{self.algorithm}: empty allocation"
        s = self.sizes_per_disk()
        l = self.loads_per_disk()
        return (
            f"{self.algorithm}: {self.num_items} files on {self.num_disks} "
            f"disks (mean fill S={s.mean():.3f}, L={l.mean():.3f})"
        )
