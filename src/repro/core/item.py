"""The 2DVPP item type and normalization helpers.

Each file becomes a :class:`PackItem` with *normalized* coordinates: ``size``
is the file size divided by the usable per-disk capacity ``S`` and ``load`` is
the file's disk-time load divided by the per-disk load cap ``L``.  Both lie in
``[0, 1]``; the paper assumes all coordinates are bounded by a constant
``rho < 1``, which drives the approximation guarantee.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Sequence

import numpy as np

from repro.errors import PackingError

__all__ = ["PackItem", "make_items", "rho_of"]

#: Comparison tolerance used throughout the packing code; capacities are
#: treated as satisfied when exceeded by no more than this.
EPS = 1e-9


class PackItem(NamedTuple):
    """A normalized 2DVPP element ``(s_i, l_i)`` tagged with its file index.

    Attributes
    ----------
    index:
        Original position of the file in the input collection; the packing
        output maps these indices to disks.
    size:
        Normalized storage requirement, in ``[0, 1]``.
    load:
        Normalized load (fraction of the disk's service-time budget), in
        ``[0, 1]``.
    """

    index: int
    size: float
    load: float

    @property
    def size_intensive(self) -> bool:
        """Paper terminology: item belongs to ``ST(F)`` when ``s_i >= l_i``."""
        return self.size >= self.load

    @property
    def load_intensive(self) -> bool:
        """Paper terminology: item belongs to ``LD(F)`` when ``l_i > s_i``."""
        return self.load > self.size

    @property
    def excess(self) -> float:
        """The heap key ``|s_i - l_i|`` (``~s_i`` or ``~l_i`` in the paper)."""
        return abs(self.size - self.load)


def make_items(
    sizes: Sequence[float],
    loads: Sequence[float],
    storage_capacity: float = 1.0,
    load_capacity: float = 1.0,
) -> List[PackItem]:
    """Normalize raw (size, load) pairs into :class:`PackItem` elements.

    Parameters
    ----------
    sizes:
        Raw file sizes (any consistent unit, e.g. bytes).
    loads:
        Raw file loads (fraction of disk service time, or any consistent
        unit when ``load_capacity`` carries the same unit).
    storage_capacity:
        Usable storage per disk, same unit as ``sizes``.
    load_capacity:
        Load budget per disk, same unit as ``loads``.

    Raises
    ------
    PackingError
        If the inputs disagree in length, contain negatives, or any single
        normalized coordinate exceeds 1 (that file can never be placed).
    """
    s = np.asarray(sizes, dtype=float)
    l = np.asarray(loads, dtype=float)
    if s.shape != l.shape or s.ndim != 1:
        raise PackingError(
            f"sizes and loads must be equal-length 1-D sequences, got "
            f"shapes {s.shape} and {l.shape}"
        )
    if storage_capacity <= 0 or load_capacity <= 0:
        raise PackingError(
            f"capacities must be positive, got S={storage_capacity}, "
            f"L={load_capacity}"
        )
    if np.any(s < 0) or np.any(l < 0):
        raise PackingError("sizes and loads must be non-negative")
    s = s / storage_capacity
    l = l / load_capacity
    if np.any(s > 1 + EPS):
        worst = int(np.argmax(s))
        raise PackingError(
            f"file {worst} needs {s[worst]:.4f} of a disk's storage "
            f"capacity (> 1); it cannot be packed"
        )
    if np.any(l > 1 + EPS):
        worst = int(np.argmax(l))
        raise PackingError(
            f"file {worst} carries {l[worst]:.4f} of a disk's load "
            f"capacity (> 1); it cannot be packed"
        )
    return [
        PackItem(i, float(si), float(li))
        for i, (si, li) in enumerate(zip(s, l))
    ]


def rho_of(items: Iterable[PackItem]) -> float:
    """The paper's ``rho``: the largest normalized coordinate of any item.

    The Theorem 1 guarantee is ``C_PD <= C*/(1 - rho) + 1``; a small ``rho``
    (files much smaller/cooler than one disk) means near-optimal packing.
    Returns 0.0 for an empty collection.
    """
    rho = 0.0
    for item in items:
        if item.size > rho:
            rho = item.size
        if item.load > rho:
            rho = item.load
    return rho
