"""Lower bounds and the Theorem 1 optimality guarantee.

The optimum ``C*`` of a 2DVPP instance is NP-hard to compute, but the paper's
proof only needs the *continuous* lower bound

.. math:: C^* \\ge \\max\\Big(\\sum_i s_i,\\; \\sum_i l_i\\Big)

(total volume on either dimension).  The proof of Theorem 1 then shows

.. math:: C_{PD} \\le 1 + \\frac{1}{1-\\rho}\\max\\Big(\\sum s_i, \\sum l_i\\Big)

— a fully *checkable* consequence that :func:`theorem1_guarantee` verifies
for any produced allocation (used heavily by the property-based tests).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.allocation import Allocation
from repro.core.item import EPS, PackItem, rho_of
from repro.errors import PackingError

__all__ = [
    "continuous_lower_bound",
    "optimality_gap",
    "theorem1_guarantee",
    "verify_allocation",
]


def continuous_lower_bound(items: Sequence[PackItem]) -> float:
    """``max(sum of sizes, sum of loads)`` — a lower bound on ``C*``.

    The integral number of disks needed is at least ``ceil`` of this.
    """
    total_s = sum(item.size for item in items)
    total_l = sum(item.load for item in items)
    return max(total_s, total_l)


def theorem1_guarantee(items: Sequence[PackItem], rho: float = None) -> float:
    """The provable cap on ``Pack_Disks``' disk count for this input:
    ``1 + lower_bound / (1 - rho)``.

    Returns ``inf`` when ``rho >= 1`` (degenerate: items fill whole disks).
    """
    if rho is None:
        rho = rho_of(items)
    if rho >= 1.0:
        return math.inf
    return 1.0 + continuous_lower_bound(items) / (1.0 - rho)


def optimality_gap(allocation: Allocation, items: Sequence[PackItem]) -> float:
    """Ratio of disks used to the integral continuous lower bound.

    1.0 means provably optimal; Theorem 1 caps this near ``1/(1 - rho)``
    asymptotically.  Returns ``nan`` for empty inputs.
    """
    lb = math.ceil(continuous_lower_bound(items) - EPS)
    if lb <= 0:
        return math.nan
    return allocation.num_disks / lb


def verify_allocation(
    allocation: Allocation,
    items: Sequence[PackItem],
    check_bound: bool = False,
) -> None:
    """Raise :class:`PackingError` unless ``allocation`` is feasible (and,
    optionally, within the Theorem 1 guarantee).

    Parameters
    ----------
    allocation:
        The allocation to verify.
    items:
        The full input item set (coverage is checked).
    check_bound:
        Additionally require ``num_disks <= 1 + LB/(1 - rho)``.  Only valid
        for allocations produced by ``pack_disks`` (v=1) — baselines and the
        grouped variant carry no such guarantee.
    """
    allocation.validate(items)
    if check_bound:
        cap = theorem1_guarantee(items, rho=rho_of(items))
        if allocation.num_disks > math.floor(cap + EPS):
            raise PackingError(
                f"{allocation.algorithm} used {allocation.num_disks} disks, "
                f"above the Theorem 1 guarantee {cap:.3f}"
            )
