"""``Pack_Disks_v`` — the round-robin group variant (paper §3.2).

``Pack_Disks`` tends to place many files of similar size (adjacent in heap
order) on the same disk.  When a user requests a *batch* of similar-size
files at once — a pattern observed in the NERSC logs — all requests of the
batch queue on one disk and response time collapses.  The variant packs a
*group* of ``v`` disks concurrently, cycling between them round-robin, so
that similar-size files are spread over ``v`` disks and a batch fans out.

The paper reports ``v = 4`` as the sweet spot: larger groups no longer help
response time but dilute the load concentration that powers the energy
saving (§5.1).  ``pack_disks_grouped(items, v=1)`` reduces exactly to
``Pack_Disks``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.allocation import Allocation, PackedDisk
from repro.core.heap import MaxHeap
from repro.core.item import EPS, PackItem, rho_of
from repro.core.packing import _OpenDisk, _check_items, split_intensive
from repro.errors import PackingError

__all__ = ["pack_disks_grouped"]


def pack_disks_grouped(
    items: Sequence[PackItem],
    v: int = 4,
    rho: Optional[float] = None,
) -> Allocation:
    """Pack items onto disks in round-robin groups of ``v``.

    Parameters
    ----------
    items:
        Normalized :class:`~repro.core.item.PackItem` elements.
    v:
        Group size (``v = 1`` is plain ``Pack_Disks``).
    rho:
        Coordinate bound for the completeness test; defaults to the tight
        per-input value.

    Returns
    -------
    Allocation
        Feasible on both dimensions.  The Theorem 1 disk-count bound is
        only proven for ``v = 1``; for ``v > 1`` the count can exceed it by
        up to ``v - 1`` partially filled disks per group boundary.
    """
    if v < 1:
        raise PackingError(f"group size v must be >= 1, got {v}")
    items = list(items)
    _check_items(items)
    tight_rho = rho_of(items)
    if rho is None:
        rho = tight_rho
    elif rho < tight_rho - EPS:
        raise PackingError(
            f"rho={rho} is below the largest item coordinate {tight_rho:.6f}"
        )
    name = f"pack_disks_v{v}"
    if not items:
        return Allocation(disks=[], algorithm=name, rho=rho)

    st, ld = split_intensive(items)
    s_heap: MaxHeap[PackItem] = MaxHeap(
        (item.size - item.load, item) for item in st
    )
    l_heap: MaxHeap[PackItem] = MaxHeap(
        (item.load - item.size, item) for item in ld
    )

    closed: List[PackedDisk] = []
    group: List[Optional[_OpenDisk]] = [_OpenDisk() for _ in range(v)]
    cursor = 0

    def close(slot: int) -> None:
        disk = group[slot]
        assert disk is not None
        closed.append(PackedDisk(index=len(closed), items=disk.items()))
        group[slot] = None

    def fresh_group() -> None:
        nonlocal cursor
        for slot in range(v):
            if group[slot] is not None and len(group[slot]):
                close(slot)
            group[slot] = _OpenDisk()
        cursor = 0

    def advance() -> None:
        nonlocal cursor
        cursor = (cursor + 1) % v

    # -- main phase: one Pack_Disks insertion step per open disk, RR order ----
    while s_heap or l_heap:
        progressed = False
        for _ in range(v):
            disk = group[cursor]
            if disk is None:
                advance()
                continue
            wants_load = disk.s_sum >= disk.l_sum
            if wants_load and l_heap:
                _, item = l_heap.pop()
                if disk.s_sum + item.size > 1 + EPS:
                    if not disk.s_list:
                        l_heap.push(item.load - item.size, item)
                        close(cursor)
                        advance()
                        progressed = True
                        break
                    evicted = disk.pop_s()
                    s_heap.push(evicted.size - evicted.load, evicted)
                    disk.add_l(item)
                else:
                    disk.add_l(item)
            elif not wants_load and s_heap:
                _, item = s_heap.pop()
                if disk.l_sum + item.load > 1 + EPS:
                    if not disk.l_list:
                        s_heap.push(item.size - item.load, item)
                        close(cursor)
                        advance()
                        progressed = True
                        break
                    evicted = disk.pop_l()
                    l_heap.push(evicted.load - evicted.size, evicted)
                    disk.add_s(item)
                else:
                    disk.add_s(item)
            else:
                # This disk's preferred heap is empty: it cannot proceed in
                # the main phase; try the next disk in the group.
                advance()
                continue
            if disk.is_complete(rho):
                close(cursor)
            advance()
            progressed = True
            break
        if not progressed:
            # No open disk can take a main-phase step (one heap is empty and
            # every open disk is dominated toward it): fall through to the
            # remaining phase.
            break
        if all(d is None for d in group):
            fresh_group()

    # -- remaining phase: spread leftover single-kind items round-robin -------
    def place_remaining(heap: MaxHeap, size_kind: bool) -> None:
        nonlocal cursor
        while heap:
            _, item = heap.pop()
            placed = False
            for _ in range(v):
                disk = group[cursor]
                if disk is not None:
                    fits = (
                        disk.s_sum + item.size <= 1 + EPS
                        if size_kind
                        else disk.l_sum + item.load <= 1 + EPS
                    )
                    if fits:
                        (disk.add_s if size_kind else disk.add_l)(item)
                        advance()
                        placed = True
                        break
                advance()
            if not placed:
                fresh_group()
                disk = group[cursor]
                (disk.add_s if size_kind else disk.add_l)(item)
                advance()

    place_remaining(s_heap, size_kind=True)
    place_remaining(l_heap, size_kind=False)

    for slot in range(v):
        if group[slot] is not None and len(group[slot]):
            close(slot)

    return Allocation(disks=closed, algorithm=name, rho=rho)
