"""The paper's primary contribution: energy-aware file allocation as 2DVPP.

Files are reduced to two-dimensional items ``(size_i, load_i)`` normalized by
the per-disk storage capacity ``S`` and load capacity ``L``; the allocation
problem — minimum number of disks such that each disk's total size and total
load stay below capacity — is the two-dimensional vector packing problem
(2DVPP, NP-complete).

* :func:`~repro.core.packing.pack_disks` — the paper's ``Pack_Disks``
  O(n log n) approximation (Algorithm 3) with the heap + two-stack data
  structure,
* :func:`~repro.core.grouped.pack_disks_grouped` — the ``Pack_Disks_v``
  round-robin group variant (§3.2),
* :func:`~repro.core.reference.pack_disks_quadratic` — the O(n^2)
  Chang-Hwang-Park-style reference the paper improves on (identical output,
  linear-scan data structures),
* :mod:`~repro.core.baselines` — random / round-robin / first-fit /
  best-fit / FFD / next-fit comparison allocators,
* :mod:`~repro.core.bounds` — lower bounds and the Theorem 1 guarantee check.
"""

from repro.core.allocation import Allocation, PackedDisk
from repro.core.baselines import (
    best_fit,
    first_fit,
    first_fit_decreasing,
    next_fit,
    random_allocation,
    round_robin_allocation,
)
from repro.core.bounds import (
    continuous_lower_bound,
    optimality_gap,
    theorem1_guarantee,
    verify_allocation,
)
from repro.core.grouped import pack_disks_grouped
from repro.core.heap import MaxHeap
from repro.core.item import PackItem, make_items, rho_of
from repro.core.packing import pack_disks
from repro.core.partitioned import pack_disks_partitioned, size_class_classifier
from repro.core.reference import pack_disks_quadratic

__all__ = [
    "Allocation",
    "MaxHeap",
    "PackItem",
    "PackedDisk",
    "best_fit",
    "continuous_lower_bound",
    "first_fit",
    "first_fit_decreasing",
    "make_items",
    "next_fit",
    "optimality_gap",
    "pack_disks",
    "pack_disks_grouped",
    "pack_disks_partitioned",
    "pack_disks_quadratic",
    "random_allocation",
    "size_class_classifier",
    "rho_of",
    "round_robin_allocation",
    "theorem1_guarantee",
    "verify_allocation",
]
