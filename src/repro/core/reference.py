"""O(n^2) reference implementation of the 2DVPP heuristic.

This mirrors the algorithm of Chang, Hwang & Park (2005) — the best
previously known bound — the way the paper describes it: identical packing
policy, but *without* the heap + two-stack data structures.  The candidate
item with the largest excess is found by a linear scan over an unsorted
list, and the element evicted on overflow is located by scanning the open
disk's contents.  Both scans are O(n), giving O(n^2) overall, versus
O(n log n) for :func:`repro.core.packing.pack_disks`.

The eviction choice matches ``Pack_Disks`` exactly (the most recently added
element of the opposite kind), so for any input the two implementations
produce **bit-identical allocations** — which the test suite asserts.  Only
the data-structure cost differs, which is precisely the paper's claimed
improvement and what ``benchmarks/bench_packing_complexity.py`` measures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.allocation import Allocation, PackedDisk
from repro.core.item import EPS, PackItem, rho_of
from repro.core.packing import _check_items, split_intensive
from repro.errors import PackingError

__all__ = ["pack_disks_quadratic"]


class _ScanList:
    """An unsorted pool supporting extract-max by O(n) scan.

    Entries are ``(key, seq, item)``; ties broken FIFO like the heap, so
    extraction order is identical to :class:`repro.core.heap.MaxHeap`.
    """

    def __init__(self, entries) -> None:
        self._entries: List[Tuple[float, int, PackItem]] = []
        self._seq = 0
        for key, item in entries:
            self.push(key, item)

    def push(self, key: float, item: PackItem) -> None:
        self._entries.append((float(key), self._seq, item))
        self._seq += 1

    def pop_max(self) -> Tuple[float, PackItem]:
        if not self._entries:
            raise IndexError("pop from empty list")
        best = 0
        best_key = (self._entries[0][0], -self._entries[0][1])
        for i in range(1, len(self._entries)):
            key = (self._entries[i][0], -self._entries[i][1])
            if key > best_key:
                best = i
                best_key = key
        entry = self._entries.pop(best)
        return entry[0], entry[2]

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class _FlatDisk:
    """Open disk kept as one flat list; eviction requires an O(n) scan."""

    __slots__ = ("entries", "s_sum", "l_sum")

    def __init__(self) -> None:
        # entries: (item, is_size_origin, insertion_seq)
        self.entries: List[Tuple[PackItem, bool, int]] = []
        self.s_sum = 0.0
        self.l_sum = 0.0

    def add(self, item: PackItem, size_origin: bool, seq: int) -> None:
        self.entries.append((item, size_origin, seq))
        self.s_sum += item.size
        self.l_sum += item.load

    def evict_latest(self, size_origin: bool) -> Optional[PackItem]:
        """Remove and return the most recently added item of the given kind.

        Scans the whole disk (the O(n) step that Pack_Disks avoids).
        """
        best = -1
        best_seq = -1
        for i, (_, origin, seq) in enumerate(self.entries):
            if origin == size_origin and seq > best_seq:
                best = i
                best_seq = seq
        if best < 0:
            return None
        item, _, _ = self.entries.pop(best)
        self.s_sum -= item.size
        self.l_sum -= item.load
        return item

    def is_complete(self, rho: float) -> bool:
        threshold = 1.0 - rho - EPS
        return self.s_sum >= threshold and self.l_sum >= threshold

    def items(self) -> List[PackItem]:
        return [item for item, _, _ in self.entries]

    def __len__(self) -> int:
        return len(self.entries)


def pack_disks_quadratic(
    items: Sequence[PackItem],
    rho: Optional[float] = None,
) -> Allocation:
    """Reference O(n^2) packing; same output as :func:`pack_disks`.

    See the module docstring for why this exists.  Prefer
    :func:`repro.core.packing.pack_disks` in production code.
    """
    items = list(items)
    _check_items(items)
    tight_rho = rho_of(items)
    if rho is None:
        rho = tight_rho
    elif rho < tight_rho - EPS:
        raise PackingError(
            f"rho={rho} is below the largest item coordinate {tight_rho:.6f}"
        )
    if not items:
        return Allocation(disks=[], algorithm="pack_disks_quadratic", rho=rho)

    st, ld = split_intensive(items)
    s_pool = _ScanList((item.size - item.load, item) for item in st)
    l_pool = _ScanList((item.load - item.size, item) for item in ld)

    disks: List[PackedDisk] = []
    disk = _FlatDisk()
    seq = 0

    # To keep output bit-identical with pack_disks, disks must list their
    # s-origin items before l-origin items (pack_disks stores two stacks and
    # concatenates s_list + l_list on close).
    def items_in_slist_order(d: _FlatDisk) -> List[PackItem]:
        s_items = [it for it, origin, _ in d.entries if origin]
        l_items = [it for it, origin, _ in d.entries if not origin]
        return s_items + l_items

    def close_disk() -> None:
        nonlocal disk
        disks.append(
            PackedDisk(index=len(disks), items=items_in_slist_order(disk))
        )
        disk = _FlatDisk()

    while (disk.s_sum >= disk.l_sum and l_pool) or (
        disk.s_sum < disk.l_sum and s_pool
    ):
        if disk.s_sum >= disk.l_sum:
            _, item = l_pool.pop_max()
            if disk.s_sum + item.size > 1 + EPS:
                evicted = disk.evict_latest(size_origin=True)
                if evicted is None:
                    l_pool.push(item.load - item.size, item)
                    close_disk()
                    continue
                s_pool.push(evicted.size - evicted.load, evicted)
                disk.add(item, size_origin=False, seq=seq)
            else:
                disk.add(item, size_origin=False, seq=seq)
        else:
            _, item = s_pool.pop_max()
            if disk.l_sum + item.load > 1 + EPS:
                evicted = disk.evict_latest(size_origin=False)
                if evicted is None:
                    s_pool.push(item.size - item.load, item)
                    close_disk()
                    continue
                l_pool.push(evicted.load - evicted.size, evicted)
                disk.add(item, size_origin=True, seq=seq)
            else:
                disk.add(item, size_origin=True, seq=seq)
        seq += 1
        if disk.is_complete(rho):
            close_disk()

    while s_pool:
        _, item = s_pool.pop_max()
        if disk.s_sum + item.size > 1 + EPS:
            close_disk()
        disk.add(item, size_origin=True, seq=seq)
        seq += 1
    while l_pool:
        _, item = l_pool.pop_max()
        if disk.l_sum + item.load > 1 + EPS:
            close_disk()
        disk.add(item, size_origin=False, seq=seq)
        seq += 1

    if len(disk):
        close_disk()

    return Allocation(disks=disks, algorithm="pack_disks_quadratic", rho=rho)
