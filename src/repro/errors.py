"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library signals with a single ``except`` clause while
still distinguishing configuration mistakes from algorithmic infeasibility.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent."""


class PackingError(ReproError):
    """A packing algorithm received infeasible input.

    Raised, for example, when a single item already exceeds the per-disk
    storage or load capacity (no algorithm can place it).
    """


class CapacityError(ReproError):
    """A fixed-size allocation target cannot hold the given items."""


class TraceFormatError(ReproError, ValueError):
    """A workload trace file is malformed."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""
