"""The simulated disk drive: FIFO service, idleness timer, spin transitions.

State machine (paper Figure 1):

* While requests are queued the drive is ``SEEK`` (positioning) then
  ``ACTIVE`` (transferring) per request, FIFO.
* When the queue drains, the drive sits ``IDLE``.  If no request arrives
  within the *idleness threshold*, it transitions ``SPINDOWN`` (10 s) ->
  ``STANDBY``.
* A request arriving in ``STANDBY`` (or during ``SPINDOWN`` — the spin-down
  is not abortable) triggers ``SPINUP`` (15 s) before service resumes.

Energy is integrated from the state timeline against the spec's per-state
power figures.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.disk.power import DiskState, PowerModel
from repro.disk.specs import DiskSpec
from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.monitor import StateTimeline, Tally, TimeWeighted

__all__ = ["DiskDrive", "DiskRequest", "DriveStats"]

READ = "read"
WRITE = "write"


class DiskRequest:
    """One I/O request travelling through a drive.

    Attributes
    ----------
    file_id:
        Identifier of the requested file (opaque to the drive).
    size:
        Bytes to transfer.
    arrival_time:
        Simulation time the request was submitted to the drive.
    done:
        Event succeeding with the response time (completion - arrival).
    kind:
        ``"read"`` or ``"write"`` (identical service; tracked for stats).
    """

    __slots__ = ("file_id", "size", "arrival_time", "done", "kind")

    def __init__(
        self,
        env: Environment,
        file_id: int,
        size: float,
        kind: str = READ,
    ) -> None:
        self.file_id = file_id
        self.size = float(size)
        self.arrival_time = env.now
        self.done = Event(env)
        self.kind = kind


@dataclass
class DriveStats:
    """Counters and aggregates for one drive."""

    arrivals: int = 0
    completions: int = 0
    reads: int = 0
    writes: int = 0
    spinups: int = 0
    spindowns: int = 0
    bytes_transferred: float = 0.0
    response: Tally = field(default_factory=Tally)

    def record_completion(self, response_time: float, size: float, kind: str) -> None:
        self.completions += 1
        self.bytes_transferred += size
        if kind == WRITE:
            self.writes += 1
        else:
            self.reads += 1
        self.response.add(response_time)


class DiskDrive:
    """A single simulated drive bound to an environment.

    Parameters
    ----------
    env:
        Simulation environment.
    spec:
        Drive characteristics (timing + power).
    disk_id:
        Identifier used in results.
    idleness_threshold:
        Seconds of idleness before spinning down.  ``None`` uses the spec's
        break-even threshold (the paper's default policy); ``math.inf``
        disables spin-down entirely; ``0`` spins down immediately.
    initial_state:
        ``DiskState.IDLE`` (spinning, default) or ``DiskState.STANDBY``.
    record_history:
        Keep the full state-transition history (for tests/plots).
    """

    def __init__(
        self,
        env: Environment,
        spec: DiskSpec,
        disk_id: int = 0,
        idleness_threshold: Optional[float] = None,
        initial_state: DiskState = DiskState.IDLE,
        record_history: bool = False,
    ) -> None:
        if initial_state not in (DiskState.IDLE, DiskState.STANDBY):
            raise SimulationError(
                "drives must start IDLE (spinning) or STANDBY (spun down)"
            )
        if idleness_threshold is None:
            idleness_threshold = spec.breakeven_threshold()
        if idleness_threshold < 0:
            raise SimulationError("idleness threshold must be >= 0")
        self.env = env
        self.spec = spec
        self.disk_id = disk_id
        self.threshold = float(idleness_threshold)
        self.power_model = PowerModel(spec)
        self.timeline = StateTimeline(env, initial_state, record_history)
        self.stats = DriveStats()
        self.queue_length = TimeWeighted(env, 0.0)
        self._pending: Deque[DiskRequest] = deque()
        self._wake: Optional[Event] = None
        #: Closed idle gaps in close order: ``(gap_seconds,
        #: threshold_at_drain)`` appended at the arrival that ends the gap.
        #: The control loop (:mod:`repro.control`) consumes this per
        #: interval; whether the gap spun the disk down is derivable
        #: (``gap > threshold``).  The fast kernel logs identical entries.
        #: Populated only while :attr:`log_gaps` is set — uncontrolled
        #: runs must not accumulate telemetry nothing reads.
        self.gap_log: List[Tuple[float, float]] = []
        #: Enable gap telemetry (set by the control loop at attach time).
        self.log_gaps: bool = False
        # The drive counts as drained from construction: its idleness
        # timer is armed at t=0, so the first arrival closes a gap that
        # began at creation time — like the fast kernel's avail=0 start.
        self._drain_time: Optional[float] = env.now
        self._drain_threshold: float = self.threshold
        self.process = env.process(self._run(initial_state))

    # -- public API ------------------------------------------------------------

    @property
    def state(self) -> DiskState:
        """Current power state."""
        return self.timeline.state

    @property
    def spinning(self) -> bool:
        """Whether the platters are (or are being brought) up to speed.

        Duck-typed with :class:`~repro.disk.multistate.MultiStateDiskDrive`
        so the dispatcher's placement context reads either drive kind.
        """
        return self.state.spinning

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting or in service."""
        return len(self._pending)

    def submit(self, file_id: int, size: float, kind: str = READ) -> DiskRequest:
        """Enqueue a request; returns it (wait on ``request.done``)."""
        if size < 0:
            raise SimulationError("request size must be >= 0")
        if self._drain_time is not None:
            # First arrival since the queue drained: close the idle gap.
            if self.log_gaps:
                self.gap_log.append(
                    (self.env.now - self._drain_time, self._drain_threshold)
                )
            self._drain_time = None
        request = DiskRequest(self.env, file_id, size, kind)
        self._pending.append(request)
        self.queue_length.set(len(self._pending))
        self.stats.arrivals += 1
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        self._wake = None
        return request

    def state_durations(self) -> Dict[DiskState, float]:
        """Seconds spent per power state so far."""
        return self.timeline.durations()

    def energy(self) -> float:
        """Energy consumed so far (J)."""
        return self.power_model.energy(self.timeline.durations())

    def mean_power(self) -> float:
        """Average draw so far (W); ``nan`` before any time elapses."""
        total = self.timeline.total_time()
        return self.energy() / total if total else math.nan

    # -- the drive process -------------------------------------------------------

    def _arrival_event(self) -> Event:
        event = Event(self.env)
        self._wake = event
        return event

    def _run(self, initial_state: DiskState):
        env = self.env
        spec = self.spec

        if initial_state is DiskState.STANDBY:
            yield from self._sleep_then_spin_up()

        while True:
            if not self._pending:
                self.timeline.set(DiskState.IDLE)
                # The queue just drained: the gap starting now is governed
                # by the *current* threshold (the timer armed below), even
                # if a control loop changes ``self.threshold`` mid-gap.
                self._drain_time = env.now
                self._drain_threshold = self.threshold
                if math.isinf(self.threshold):
                    yield self._arrival_event()
                else:
                    wake = self._arrival_event()
                    timer = env.timeout(self.threshold)
                    yield env.any_of([wake, timer])
                    if not self._pending:
                        # The idleness threshold expired: power down.
                        yield from self._spin_down()
                        yield from self._sleep_then_spin_up()
                continue

            request = self._pending.popleft()
            self.queue_length.set(len(self._pending))
            self.timeline.set(DiskState.SEEK)
            yield env.timeout(spec.access_overhead)
            self.timeline.set(DiskState.ACTIVE)
            yield env.timeout(spec.transfer_time(request.size))
            self.timeline.set(DiskState.IDLE)
            response = env.now - request.arrival_time
            self.stats.record_completion(response, request.size, request.kind)
            request.done.succeed(response)

    def _spin_down(self):
        self.timeline.set(DiskState.SPINDOWN)
        self.stats.spindowns += 1
        # Not abortable: requests arriving now wait for the full transition.
        yield self.env.timeout(self.spec.spindown_time)
        self.timeline.set(DiskState.STANDBY)

    def _sleep_then_spin_up(self):
        if not self._pending:
            self.timeline.set(DiskState.STANDBY)
            yield self._arrival_event()
        self.timeline.set(DiskState.SPINUP)
        self.stats.spinups += 1
        yield self.env.timeout(self.spec.spinup_time)
        self.timeline.set(DiskState.IDLE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DiskDrive {self.disk_id} state={self.state.value} "
            f"queue={self.queue_depth}>"
        )
