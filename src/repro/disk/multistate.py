"""A drive that descends a multi-state power ladder while idle.

Generalizes :class:`~repro.disk.drive.DiskDrive`'s two-state
idle-threshold behaviour to an arbitrary
:class:`~repro.analysis.dpm.MultiStateDpmPolicy` ladder (e.g. an
intermediate low-RPM "nap" state between idle and standby, as in the DRPM
work the paper cites).  With the two-state ladder derived from the spec it
reproduces the classic drive's energy accounting, which the test suite
asserts.

State accounting maps ladder rungs onto the Figure 1 states where
possible (``idle``/``standby``); additional rungs appear in the timeline
under their own names, with the wake transition billed at spin-up power
for its configured wake time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.disk.dpm import MultiStateDpmPolicy
from repro.disk.drive import DiskRequest, DriveStats, READ
from repro.disk.power import DiskState
from repro.disk.specs import DiskSpec
from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.monitor import StateTimeline, TimeWeighted

__all__ = ["MultiStateDiskDrive"]


class MultiStateDiskDrive:
    """A drive whose idle behaviour follows a DPM state ladder.

    The interface mirrors :class:`~repro.disk.drive.DiskDrive` (submit /
    state_durations / energy / stats), but the timeline records ladder
    state *names* (strings) rather than :class:`DiskState` members, since
    the ladder is user-defined.
    """

    def __init__(
        self,
        env: Environment,
        spec: DiskSpec,
        policy: MultiStateDpmPolicy,
        disk_id: int = 0,
    ) -> None:
        self.env = env
        self.spec = spec
        self.policy = policy
        self.disk_id = disk_id
        self.stats = DriveStats()
        self.queue_length = TimeWeighted(env, 0.0)
        # Power by timeline label: ladder states by name + serving states.
        self._power: Dict[str, float] = {
            state.name: state.power for state in policy.states
        }
        self._power["seek"] = spec.seek_power
        self._power["active"] = spec.active_power
        self._power["waking"] = spec.spinup_power
        self.timeline = StateTimeline(env, policy.states[0].name)
        self._pending: Deque[DiskRequest] = deque()
        self._wake: Optional[Event] = None
        #: Wake energy billed beyond the waking-state residency (J).
        self._wake_energy_billed = 0.0
        self.process = env.process(self._run())

    # -- public API ------------------------------------------------------------

    @property
    def state_name(self) -> str:
        """Current timeline label."""
        return self.timeline.state

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def submit(self, file_id: int, size: float, kind: str = READ) -> DiskRequest:
        """Enqueue a request; wait on ``request.done`` for the response."""
        if size < 0:
            raise SimulationError("request size must be >= 0")
        request = DiskRequest(self.env, file_id, size, kind)
        self._pending.append(request)
        self.queue_length.set(len(self._pending))
        self.stats.arrivals += 1
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        self._wake = None
        return request

    def state_durations(self) -> Dict[str, float]:
        return self.timeline.durations()

    def energy(self) -> float:
        """Energy so far (J): residency plus per-visit wake energies.

        Wake transitions are billed per the ladder's ``wake_energy`` at the
        moment they happen (tracked in ``stats.spinups`` as wake events);
        the residual wake *time* is additionally billed at spin-up power to
        mirror the two-state drive's accounting.
        """
        residency = sum(
            self._power[state] * t
            for state, t in self.timeline.durations().items()
        )
        return residency + self._wake_energy_billed

    def mean_power(self) -> float:
        total = self.timeline.total_time()
        return self.energy() / total if total else float("nan")

    # -- the drive process -------------------------------------------------------

    def _arrival_event(self) -> Event:
        event = Event(self.env)
        self._wake = event
        return event

    def _run(self):
        env = self.env
        spec = self.spec
        while True:
            if not self._pending:
                # Walk the ladder: at each rung, wait for the next
                # threshold or an arrival.
                idle_started = env.now
                schedule = self.policy.schedule
                woke_from = None
                for i, (entry, state) in enumerate(schedule):
                    self.timeline.set(state.name)
                    next_entry = (
                        schedule[i + 1][0] if i + 1 < len(schedule) else None
                    )
                    wake = self._arrival_event()
                    if next_entry is None:
                        yield wake
                    else:
                        remaining = (idle_started + next_entry) - env.now
                        timer = env.timeout(max(0.0, remaining))
                        yield env.any_of([wake, timer])
                    if self._pending:
                        woke_from = state
                        break
                if woke_from is None:
                    # Deepest state; the final `yield wake` above only
                    # returns on an arrival.
                    woke_from = schedule[-1][1]
                if woke_from.wake_time > 0 or woke_from.wake_energy > 0:
                    self.timeline.set("waking")
                    self.stats.spinups += 1
                    # Bill the ladder's wake energy beyond what the waking
                    # residency at spin-up power covers.
                    residency = spec.spinup_power * woke_from.wake_time
                    self._wake_energy_billed += max(
                        0.0, woke_from.wake_energy - residency
                    )
                    yield env.timeout(woke_from.wake_time)
                continue

            request = self._pending.popleft()
            self.queue_length.set(len(self._pending))
            self.timeline.set("seek")
            yield env.timeout(spec.access_overhead)
            self.timeline.set("active")
            yield env.timeout(spec.transfer_time(request.size))
            self.timeline.set(self.policy.states[0].name)
            response = env.now - request.arrival_time
            self.stats.record_completion(response, request.size, request.kind)
            request.done.succeed(response)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MultiStateDiskDrive {self.disk_id} state={self.state_name} "
            f"queue={self.queue_depth}>"
        )
