"""A drive that descends a multi-state power ladder while idle.

Generalizes :class:`~repro.disk.drive.DiskDrive`'s two-state
idle-threshold behaviour to an arbitrary :class:`~repro.disk.dpm.DpmLadder`
(e.g. an intermediate low-RPM "nap" state between idle and standby, as in
the DRPM work the paper cites).  Semantics per idle gap:

* the disk parks in rung 0 when its queue drains; at each rung's
  (possibly control-scaled) entry time it starts a **non-abortable
  descent** into the next rung, billed at that rung's ``down_power`` for
  ``down_time`` seconds — Figure 1's spin-down, generalized per rung;
* a request arriving while parked in rung ``i`` (or mid-descent into it;
  the descent finishes first) pays the rung's ``wake_time``, billed at
  ``wake_power`` for exactly the configured wake time — no folded lump
  sums, so energy is conserved across every descent/ascent cycle.

With the ``two_state`` ladder derived from the spec this reproduces the
classic drive's timing and energy accounting bit for bit, which the test
suite asserts.  The per-disk ``threshold`` attribute (consumed at each
queue drain, like the classic drive's armed idleness timer) lets the
online control loop (:mod:`repro.control`) steer ladder descent: entries
scale by ``threshold / base_threshold`` via
:meth:`~repro.disk.dpm.DpmLadder.scaled_entries`.

The timeline records ladder state *names* (strings): rung names while
parked, ``down:<name>`` during descents, ``wake:<name>`` during wakes,
plus ``seek``/``active`` while serving.  The fast kernel's
:class:`~repro.sim.fastkernel._LadderBank` replays identical semantics and
uses the same labels.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.disk.dpm import DpmLadder, MultiStateDpmPolicy
from repro.disk.drive import DiskRequest, DriveStats, READ
from repro.disk.specs import DiskSpec
from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.monitor import StateTimeline, TimeWeighted

__all__ = ["MultiStateDiskDrive"]


class MultiStateDiskDrive:
    """A drive whose idle behaviour follows a DPM state ladder.

    The interface mirrors :class:`~repro.disk.drive.DiskDrive` (submit /
    state_durations / energy / stats / threshold / gap_log), so the
    dispatcher, array aggregation and the event control loop drive both
    classes interchangeably.

    Parameters
    ----------
    env, spec:
        As for the classic drive.
    ladder:
        A :class:`~repro.disk.dpm.DpmLadder`, or a
        :class:`~repro.disk.dpm.MultiStateDpmPolicy` (bridged via
        :meth:`DpmLadder.from_policy`).
    idleness_threshold:
        First-descent threshold; ``None`` uses the ladder's native entry.
        Deeper entries scale proportionally (see
        :meth:`DpmLadder.scaled_entries`).
    record_history:
        Keep the full state-transition history (for tests/plots), like
        the classic drive.
    """

    def __init__(
        self,
        env: Environment,
        spec: DiskSpec,
        ladder: Union[DpmLadder, MultiStateDpmPolicy],
        disk_id: int = 0,
        idleness_threshold: Optional[float] = None,
        record_history: bool = False,
    ) -> None:
        if isinstance(ladder, MultiStateDpmPolicy):
            ladder = DpmLadder.from_policy(ladder, spec)
        if idleness_threshold is None:
            idleness_threshold = ladder.base_threshold
        if idleness_threshold < 0:
            raise SimulationError("idleness threshold must be >= 0")
        self.env = env
        self.spec = spec
        self.ladder = ladder
        self.disk_id = disk_id
        #: First-descent threshold; the control loop overwrites this and
        #: the value is consumed at the next queue drain (like the classic
        #: drive's already-armed idleness timer).
        self.threshold = float(idleness_threshold)
        self.stats = DriveStats()
        self.queue_length = TimeWeighted(env, 0.0)
        self._power: Dict[str, float] = ladder.power_table(spec)
        self.timeline = StateTimeline(
            env, ladder.rungs[0].name, record_history
        )
        self._pending: Deque[DiskRequest] = deque()
        self._wake: Optional[Event] = None
        #: Closed idle gaps ``(gap_seconds, threshold_at_drain)`` appended
        #: at the arrival ending each gap — same telemetry contract as the
        #: classic drive; populated only while :attr:`log_gaps` is set.
        self.gap_log: List[Tuple[float, float]] = []
        self.log_gaps: bool = False
        self._drain_time: Optional[float] = env.now
        self._drain_threshold: float = self.threshold
        self.process = env.process(self._run())

    # -- public API ------------------------------------------------------------

    @property
    def state_name(self) -> str:
        """Current timeline label."""
        return self.timeline.state

    @property
    def spinning(self) -> bool:
        """Whether the platters are (or are being brought) up to speed.

        Matches the classic drive's convention: only a disk *parked in
        the deepest rung* counts as spun down — descents (like Figure 1's
        SPINDOWN), intermediate reduced-RPM rungs and wakes all spin.
        """
        rungs = self.ladder.rungs
        return not (
            len(rungs) > 1 and self.timeline.state == rungs[-1].name
        )

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def submit(self, file_id: int, size: float, kind: str = READ) -> DiskRequest:
        """Enqueue a request; wait on ``request.done`` for the response."""
        if size < 0:
            raise SimulationError("request size must be >= 0")
        if self._drain_time is not None:
            if self.log_gaps:
                self.gap_log.append(
                    (self.env.now - self._drain_time, self._drain_threshold)
                )
            self._drain_time = None
        request = DiskRequest(self.env, file_id, size, kind)
        self._pending.append(request)
        self.queue_length.set(len(self._pending))
        self.stats.arrivals += 1
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        self._wake = None
        return request

    def state_durations(self) -> Dict[str, float]:
        return self.timeline.durations()

    def energy(self) -> float:
        """Energy so far (J): every timeline label billed at its power."""
        return sum(
            self._power[state] * t
            for state, t in self.timeline.durations().items()
        )

    def mean_power(self) -> float:
        total = self.timeline.total_time()
        return self.energy() / total if total else float("nan")

    # -- the drive process -------------------------------------------------------

    def _arrival_event(self) -> Event:
        event = Event(self.env)
        self._wake = event
        return event

    def _run(self):
        env = self.env
        spec = self.spec
        rungs = self.ladder.rungs
        depth = len(rungs)
        while True:
            if not self._pending:
                drain = env.now
                threshold = self.threshold
                self._drain_time = drain
                self._drain_threshold = threshold
                entries = self.ladder.scaled_entries(threshold)
                self.timeline.set(rungs[0].name)
                woke = 0
                if depth == 1 or math.isinf(entries[1]):
                    yield self._arrival_event()
                else:
                    i = 1
                    while True:
                        # Parked in rung i-1: wait for the next descent
                        # or an arrival, whichever comes first.
                        wake = self._arrival_event()
                        remaining = entries[i] - (env.now - drain)
                        timer = env.timeout(max(0.0, remaining))
                        yield env.any_of([wake, timer])
                        if self._pending:
                            woke = i - 1
                            break
                        # Non-abortable descent into rung i: an arrival
                        # during it waits for the transition to finish.
                        self.timeline.set(f"down:{rungs[i].name}")
                        self.stats.spindowns += 1
                        yield env.timeout(rungs[i].down_time)
                        self.timeline.set(rungs[i].name)
                        if self._pending:
                            woke = i
                            break
                        if i + 1 < depth:
                            i += 1
                            continue
                        # Deepest rung: only an arrival ends the gap.
                        yield self._arrival_event()
                        woke = depth - 1
                        break
                if woke > 0:
                    rung = rungs[woke]
                    self.timeline.set(f"wake:{rung.name}")
                    self.stats.spinups += 1
                    if rung.wake_time > 0:
                        yield env.timeout(rung.wake_time)
                continue

            request = self._pending.popleft()
            self.queue_length.set(len(self._pending))
            self.timeline.set("seek")
            yield env.timeout(spec.access_overhead)
            self.timeline.set("active")
            yield env.timeout(spec.transfer_time(request.size))
            self.timeline.set(rungs[0].name)
            response = env.now - request.arrival_time
            self.stats.record_completion(response, request.size, request.kind)
            request.done.succeed(response)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MultiStateDiskDrive {self.disk_id} state={self.state_name} "
            f"queue={self.queue_depth}>"
        )
