"""Disk power states and energy accounting (the paper's Figure 1)."""

from __future__ import annotations

from enum import Enum
from typing import Dict, Mapping

from repro.disk.specs import DiskSpec

__all__ = ["DiskState", "PowerModel"]


class DiskState(Enum):
    """The power modes of Figure 1.

    ``SEEK`` and ``ACTIVE`` are both "serving" states (positioning vs
    transferring) with distinct power draws; ``SPINUP``/``SPINDOWN`` are the
    transitions between the spinning (``IDLE``) and spun-down (``STANDBY``)
    modes.
    """

    IDLE = "idle"
    STANDBY = "standby"
    SEEK = "seek"
    ACTIVE = "active"
    SPINUP = "spinup"
    SPINDOWN = "spindown"

    @property
    def spinning(self) -> bool:
        """Whether the platters are (or are being brought) up to speed."""
        return self is not DiskState.STANDBY

    @property
    def serving(self) -> bool:
        """Whether the disk is actively working on a request."""
        return self in (DiskState.SEEK, DiskState.ACTIVE)


class PowerModel:
    """Maps :class:`DiskState` durations to energy for a given spec."""

    def __init__(self, spec: DiskSpec) -> None:
        self.spec = spec
        self._power: Dict[DiskState, float] = {
            DiskState.IDLE: spec.idle_power,
            DiskState.STANDBY: spec.standby_power,
            DiskState.SEEK: spec.seek_power,
            DiskState.ACTIVE: spec.active_power,
            DiskState.SPINUP: spec.spinup_power,
            DiskState.SPINDOWN: spec.spindown_power,
        }

    def power(self, state: DiskState) -> float:
        """Instantaneous draw (W) in ``state``."""
        return self._power[state]

    def power_table(self) -> Dict[DiskState, float]:
        """Copy of the full state -> watts mapping."""
        return dict(self._power)

    def energy(self, durations: Mapping[DiskState, float]) -> float:
        """Total energy (J) for the given per-state durations.

        Unknown states raise ``KeyError`` to surface accounting bugs.
        """
        return sum(self._power[state] * t for state, t in durations.items())

    def always_on_energy(self, duration: float, serving_fraction: float = 0.0) -> float:
        """Energy of a disk that never spins down over ``duration``.

        ``serving_fraction`` of the time is billed at active power; the
        rest at idle power.  With the default 0 this is the paper's
        Figure 5 normalization baseline ("spinning N disks without any
        power-saving mechanism").
        """
        busy = duration * serving_fraction
        return busy * self.spec.active_power + (duration - busy) * self.spec.idle_power
