"""Request service-time model and file-load computation.

The paper defines the load of file *i* as ``l_i = R * p_i * mu_i`` where
``mu_i = f(s_i)`` is the service time of the file and "any function f can be
used".  Two models are provided:

* ``"full"`` (default): ``f(s) = t_seek + t_rot + s / transfer_rate`` — the
  physical service time of a whole-file read;
* ``"transfer"``: ``f(s) = s / transfer_rate`` — the simplification the
  paper's simulation section uses (``l_i = r_i * s_i`` normalized by the
  72 MB/s transfer rate).

For the multi-hundred-MB files of both workloads the two differ by ~0.3%,
but the distinction matters for small-file workloads.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.disk.specs import DiskSpec
from repro.errors import ConfigError

__all__ = ["ServiceModel"]


class ServiceModel:
    """Computes per-request service times and per-file loads.

    Parameters
    ----------
    spec:
        The drive the times refer to.
    mode:
        ``"full"`` or ``"transfer"`` (see module docstring).
    """

    MODES = ("full", "transfer")

    def __init__(self, spec: DiskSpec, mode: str = "full") -> None:
        if mode not in self.MODES:
            raise ConfigError(
                f"unknown service model mode {mode!r}; choose from {self.MODES}"
            )
        self.spec = spec
        self.mode = mode

    @property
    def overhead(self) -> float:
        """Positioning overhead charged per request (0 in transfer mode)."""
        return self.spec.access_overhead if self.mode == "full" else 0.0

    def service_time(self, size: Union[float, np.ndarray]):
        """``f(size)`` — scalar or vectorized over an array of sizes."""
        base = np.asarray(size, dtype=float) / self.spec.transfer_rate
        result = base + self.overhead
        if np.ndim(size) == 0:
            return float(result)
        return result

    def service_moments(self, sizes, weights) -> tuple:
        """First and second moments of the service time under a file mix.

        Parameters
        ----------
        sizes:
            File sizes (bytes).
        weights:
            Probability of each file being the one requested
            (normalized internally).

        Returns
        -------
        (E[S], E[S^2])
        """
        sizes = np.asarray(sizes, dtype=float)
        w = np.asarray(weights, dtype=float)
        if sizes.shape != w.shape:
            raise ConfigError("sizes and weights must have the same shape")
        total = w.sum()
        if total <= 0:
            raise ConfigError("weights must have positive sum")
        w = w / total
        s = self.service_time(sizes)
        return float(np.dot(w, s)), float(np.dot(w, s * s))

    def loads(
        self,
        sizes,
        popularities,
        arrival_rate: float,
    ) -> np.ndarray:
        """Per-file absolute loads ``l_i = R * p_i * f(s_i)``.

        The result is the fraction of one disk's service time each file
        consumes; divide by the load constraint ``L`` to normalize for
        packing.
        """
        if arrival_rate < 0:
            raise ConfigError("arrival rate must be non-negative")
        sizes = np.asarray(sizes, dtype=float)
        p = np.asarray(popularities, dtype=float)
        if sizes.shape != p.shape:
            raise ConfigError("sizes and popularities must have the same shape")
        return arrival_rate * p * self.service_time(sizes)
