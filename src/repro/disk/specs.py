"""Disk drive specifications (the paper's Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import ConfigError
from repro.units import GB, MB, MS

__all__ = ["DiskSpec", "ST3500630AS", "WD10EADS"]


@dataclass(frozen=True)
class DiskSpec:
    """Physical and power characteristics of one disk drive model.

    All times in seconds, sizes in bytes, power in watts.  Matches the rows
    of the paper's Table 2.
    """

    model: str
    capacity: float
    transfer_rate: float
    avg_seek_time: float
    avg_rotation_time: float
    rotational_speed_rpm: float
    idle_power: float
    standby_power: float
    active_power: float
    seek_power: float
    spinup_power: float
    spindown_power: float
    spinup_time: float
    spindown_time: float
    interface: str = "SATA"

    def __post_init__(self) -> None:
        for name in (
            "capacity",
            "transfer_rate",
            "avg_seek_time",
            "avg_rotation_time",
            "idle_power",
            "standby_power",
            "active_power",
            "seek_power",
            "spinup_power",
            "spindown_power",
            "spinup_time",
            "spindown_time",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"DiskSpec.{name} must be non-negative")
        if self.standby_power >= self.idle_power:
            raise ConfigError(
                "standby power must be below idle power, otherwise spinning "
                "down can never save energy"
            )
        if self.transfer_rate <= 0 or self.capacity <= 0:
            raise ConfigError("capacity and transfer rate must be positive")

    @property
    def access_overhead(self) -> float:
        """Positioning time per request: average seek + average rotation."""
        return self.avg_seek_time + self.avg_rotation_time

    @property
    def spindown_energy(self) -> float:
        """Energy of one spin-down transition (J)."""
        return self.spindown_power * self.spindown_time

    @property
    def spinup_energy(self) -> float:
        """Energy of one spin-up transition (J)."""
        return self.spinup_power * self.spinup_time

    @property
    def transition_energy(self) -> float:
        """Energy of a full spin-down + spin-up cycle (J)."""
        return self.spindown_energy + self.spinup_energy

    def breakeven_threshold(self) -> float:
        """The break-even idleness threshold (Table 2's 53.3 s).

        Time the disk must stay in standby so that the power saved
        (idle minus standby) repays the spin-down + spin-up energy:

        ``(E_down + E_up) / (P_idle - P_standby)``.
        """
        return self.transition_energy / (self.idle_power - self.standby_power)

    def transfer_time(self, size: float) -> float:
        """Pure data-transfer time for ``size`` bytes."""
        return size / self.transfer_rate

    def with_overrides(self, **kwargs) -> "DiskSpec":
        """A copy of this spec with some fields replaced."""
        return replace(self, **kwargs)

    def table2_rows(self) -> Dict[str, str]:
        """The paper's Table 2, regenerated from this spec."""
        return {
            "Disk model": self.model,
            "Standard interface": self.interface,
            "Rotational speed": f"{self.rotational_speed_rpm:.0f} rpm",
            "Avg. seek time": f"{self.avg_seek_time * 1e3:.1f} msecs",
            "Avg. rotation time": f"{self.avg_rotation_time * 1e3:.2f} msecs",
            "Disk size": f"{self.capacity / GB:.0f}GB",
            "Disk load (Transfer rate)": f"{self.transfer_rate / MB:.0f} MBytes/sec",
            "Idle power": f"{self.idle_power:.1f} Watts",
            "Standby power": f"{self.standby_power:.1f} Watts",
            "Active power": f"{self.active_power:.0f} Watts",
            "Seek power": f"{self.seek_power:.1f} Watts",
            "Spin up power": f"{self.spinup_power:.0f} Watts",
            "Spin down power": f"{self.spindown_power:.1f} Watts",
            "Spin up time": f"{self.spinup_time:.0f} secs",
            "Spin down time": f"{self.spindown_time:.0f} secs",
            "Idleness threshold": f"{self.breakeven_threshold():.1f} secs",
        }


#: The paper's disk: Seagate Barracuda 7200.10 ST3500630AS (Table 2).
ST3500630AS = DiskSpec(
    model="Seagate ST3500630AS",
    capacity=500 * GB,
    transfer_rate=72 * MB,
    avg_seek_time=8.5 * MS,
    avg_rotation_time=4.16 * MS,
    rotational_speed_rpm=7200,
    idle_power=9.3,
    standby_power=0.8,
    active_power=13.0,
    seek_power=12.6,
    spinup_power=24.0,
    spindown_power=9.3,
    spinup_time=15.0,
    spindown_time=10.0,
)

#: A newer-generation green drive (WD Caviar Green class): twice the
#: capacity, a faster sustained transfer rate, and roughly a third of the
#: Seagate's idle draw, at the price of slower positioning.  Its cheap,
#: quick spin transitions pull the break-even threshold (~46 s) below the
#: Seagate's 53.3 s — exactly the asymmetry heterogeneous placement and
#: per-disk DPM control exist to exploit (the ``mixed_generation`` fleet
#: preset in :mod:`repro.disk.fleet` pairs the two).
WD10EADS = DiskSpec(
    model="WD Caviar Green WD10EADS",
    capacity=1000 * GB,
    transfer_rate=100 * MB,
    avg_seek_time=12.0 * MS,
    avg_rotation_time=5.56 * MS,
    rotational_speed_rpm=5400,
    idle_power=2.8,
    standby_power=0.4,
    active_power=5.4,
    seek_power=6.0,
    spinup_power=12.0,
    spindown_power=2.8,
    spinup_time=8.0,
    spindown_time=5.0,
)
