"""An array of simulated drives (uniform or mixed) with aggregate accounting."""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.disk.dpm import DpmLadder
from repro.disk.drive import DiskDrive, DiskRequest
from repro.disk.fleet import ResolvedFleet
from repro.disk.multistate import MultiStateDiskDrive
from repro.disk.power import DiskState, PowerModel
from repro.disk.specs import DiskSpec
from repro.errors import ConfigError
from repro.sim.environment import Environment

__all__ = ["DiskArray"]


class DiskArray:
    """``num_disks`` drives sharing one environment.

    Parameters
    ----------
    env, spec:
        As for :class:`~repro.disk.drive.DiskDrive`.
    num_disks:
        Pool size.
    idleness_threshold:
        Shared spin-down threshold (``None`` = break-even, or the
        ladder's native first entry when a ladder is given).
    initial_state:
        Starting state for every drive (classic drives only).
    ladder:
        Optional :class:`~repro.disk.dpm.DpmLadder`: the pool is built
        from :class:`~repro.disk.multistate.MultiStateDiskDrive` instead
        of the classic two-state drive, descending the ladder while idle.
    fleet:
        Optional :class:`~repro.disk.fleet.ResolvedFleet`: per-drive
        specs, ladders and thresholds (overriding ``spec``/
        ``idleness_threshold``/``ladder``, which remain the uniform-pool
        sugar).  Each drive is built from *its own* slot, so a
        mixed-generation pool simulates every drive against its own
        power figures and break-even.
    """

    def __init__(
        self,
        env: Environment,
        spec: DiskSpec,
        num_disks: int,
        idleness_threshold: Optional[float] = None,
        initial_state: DiskState = DiskState.IDLE,
        record_history: bool = False,
        ladder: Optional[DpmLadder] = None,
        fleet: Optional[ResolvedFleet] = None,
    ) -> None:
        if num_disks < 1:
            raise ConfigError(f"num_disks must be >= 1, got {num_disks}")
        self.env = env
        if fleet is not None:
            if fleet.num_disks != num_disks:
                raise ConfigError(
                    f"fleet resolves {fleet.num_disks} disks but the array "
                    f"was asked for {num_disks}"
                )
            specs = fleet.specs
            ladders = fleet.ladders
            thresholds: List[Optional[float]] = [
                float(t) for t in fleet.thresholds
            ]
        else:
            specs = (spec,) * num_disks
            ladders = (ladder,) * num_disks
            thresholds = [idleness_threshold] * num_disks
        self.specs = tuple(specs)
        self.homogeneous_specs = len(set(self.specs)) == 1
        self.spec = self.specs[0]
        self.power_model = PowerModel(self.spec)
        if ladders[0] is not None:
            if initial_state is not DiskState.IDLE:
                raise ConfigError(
                    "ladder-backed arrays start spinning (rung 0)"
                )
            self.disks: List = [
                MultiStateDiskDrive(
                    env,
                    specs[i],
                    ladders[i],
                    disk_id=i,
                    idleness_threshold=thresholds[i],
                    record_history=record_history,
                )
                for i in range(num_disks)
            ]
        else:
            self.disks = [
                DiskDrive(
                    env,
                    specs[i],
                    disk_id=i,
                    idleness_threshold=thresholds[i],
                    initial_state=initial_state,
                    record_history=record_history,
                )
                for i in range(num_disks)
            ]

    def __len__(self) -> int:
        return len(self.disks)

    def __getitem__(self, disk_id: int) -> DiskDrive:
        return self.disks[disk_id]

    def submit(self, disk_id: int, file_id: int, size: float, kind: str = "read") -> DiskRequest:
        """Enqueue a request on drive ``disk_id``."""
        return self.disks[disk_id].submit(file_id, size, kind)

    # -- aggregate accounting ---------------------------------------------------

    def energy_per_disk(self) -> np.ndarray:
        """Energy consumed so far by each drive (J)."""
        return np.array([d.energy() for d in self.disks], dtype=float)

    def total_energy(self) -> float:
        """Energy consumed so far by the whole array (J)."""
        return float(self.energy_per_disk().sum())

    def state_durations(self) -> Dict[DiskState, float]:
        """Per-state time summed over all drives."""
        totals: Dict[DiskState, float] = {}
        for d in self.disks:
            for state, t in d.state_durations().items():
                totals[state] = totals.get(state, 0.0) + t
        return totals

    def total_spinups(self) -> int:
        return sum(d.stats.spinups for d in self.disks)

    def total_spindowns(self) -> int:
        return sum(d.stats.spindowns for d in self.disks)

    def total_completions(self) -> int:
        return sum(d.stats.completions for d in self.disks)

    def requests_per_disk(self) -> np.ndarray:
        return np.array([d.stats.arrivals for d in self.disks], dtype=np.int64)

    # -- per-drive spec views (vectors the dispatcher/placement consume) --------

    def _spec_vector(self, attr: str) -> np.ndarray:
        return np.array(
            [float(getattr(s, attr)) for s in self.specs], dtype=float
        )

    @property
    def capacities(self) -> np.ndarray:
        """Raw per-drive capacities (bytes)."""
        return self._spec_vector("capacity")

    @property
    def access_overheads(self) -> np.ndarray:
        """Per-drive positioning time (seek + rotation, seconds)."""
        return self._spec_vector("access_overhead")

    @property
    def transfer_rates(self) -> np.ndarray:
        """Per-drive transfer rates (bytes/second)."""
        return self._spec_vector("transfer_rate")

    @property
    def active_power(self) -> np.ndarray:
        """Per-drive active power draw (W) — the placement power rank."""
        return self._spec_vector("active_power")

    def always_on_energy(self, duration: float) -> float:
        """Figure 5 normalization: all drives spinning idle for ``duration``."""
        if duration < 0:
            raise ConfigError("duration must be >= 0")
        if self.homogeneous_specs:
            return len(self.disks) * self.power_model.always_on_energy(duration)
        return float(
            sum(
                PowerModel(s).always_on_energy(duration) for s in self.specs
            )
        )

    def normalized_power_cost(self, duration: Optional[float] = None) -> float:
        """Energy so far as a fraction of the always-spinning baseline."""
        if duration is None:
            duration = self.env.now
        baseline = self.always_on_energy(duration)
        if baseline <= 0:
            return math.nan
        return self.total_energy() / baseline
