"""Disk drive substrate: datasheet specs, power states, service times and the
simulated drive process.

The power/timing figures come from the paper's Table 2 / Figure 1 (Seagate
ST3500630AS, 7200 rpm SATA): active 13 W, seek 12.6 W, idle 9.3 W, standby
0.8 W, spin-up 24 W for 15 s, spin-down 9.3 W for 10 s, 72 MB/s transfer.
A drive that stays idle for the *idleness threshold* spins down to standby;
the first request afterwards pays the spin-up latency.  The default threshold
is the break-even time (Table 2's 53.3 s).
"""

from repro.disk.array import DiskArray
from repro.disk.dpm import (
    DPM_LADDERS,
    DpmLadder,
    DpmState,
    LadderRung,
    MultiStateDpmPolicy,
    dpm_ladder_names,
    make_dpm_ladder,
)
from repro.disk.drive import DiskDrive, DiskRequest, DriveStats
from repro.disk.multistate import MultiStateDiskDrive
from repro.disk.power import DiskState, PowerModel
from repro.disk.service import ServiceModel
from repro.disk.specs import DiskSpec, ST3500630AS

__all__ = [
    "DPM_LADDERS",
    "DiskArray",
    "DiskDrive",
    "DiskRequest",
    "DiskSpec",
    "DpmLadder",
    "DpmState",
    "DiskState",
    "DriveStats",
    "LadderRung",
    "MultiStateDiskDrive",
    "MultiStateDpmPolicy",
    "PowerModel",
    "ST3500630AS",
    "ServiceModel",
    "dpm_ladder_names",
    "make_dpm_ladder",
]
