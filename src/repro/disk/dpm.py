"""Multi-state dynamic power management (the paper's §2 framework).

The related work the paper builds on (Irani, Singh, Shukla & Gupta's
survey) models a disk with ``n`` power states: state ``i`` draws
``power_i`` watts and charges a wake penalty ``beta_i`` (energy to return
to the serving state), with deeper states drawing less and costing more to
wake; the active/idle state has ``beta = 0``.  The classic *lower-envelope*
(balance) strategy moves to the state minimizing

.. math:: f_i(t) = \\beta_i + power_i \\cdot t

if the idle gap were to end exactly at ``t``; the switch times are the
crossing points of the ``f_i`` lines, and the strategy is **2-competitive**
against the clairvoyant optimum on every gap sequence — the bound the
paper quotes for the two-state case.  With Table 2's two states the single
crossing point is exactly the 53.3 s break-even threshold.

This module computes the schedule, per-gap energies and penalties, the
offline optimum, and expected power under Poisson gaps (closed form).

For *simulation*, the ladder is expressed as a :class:`DpmLadder` — the
analysis model plus explicit, non-abortable descent transitions (the
Figure 1 spin-down generalized per rung) — so that energy and timing can
be accounted exactly: parked time at each rung's power, descents at their
``down_power``, wakes billed at ``wake_power`` for the *configured* wake
time (no folded lump sums).  The ``two_state`` preset built from a
:class:`~repro.disk.specs.DiskSpec` reproduces the classic
:class:`~repro.disk.drive.DiskDrive` bit for bit; :mod:`repro.disk.multistate`
runs ladders inside the event engine and
:mod:`repro.sim.fastkernel` runs the same semantics batched
(``StorageConfig(dpm_ladder=...)`` selects a preset by name).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.disk.specs import DiskSpec
from repro.errors import ConfigError

__all__ = [
    "DPM_LADDERS",
    "DpmLadder",
    "DpmState",
    "LadderRung",
    "MultiStateDpmPolicy",
    "dpm_ladder_names",
    "make_dpm_ladder",
    "offline_optimal_gap_energy",
    "states_from_spec",
]


@dataclass(frozen=True)
class DpmState:
    """One rung of the power-state ladder.

    Attributes
    ----------
    name:
        Human-readable label.
    power:
        Draw while parked in this state (W).
    wake_energy:
        The penalty ``beta_i``: energy to return to service (J); 0 for the
        shallowest (idle) state.
    wake_time:
        Latency imposed on the request that wakes the disk (s).
    """

    name: str
    power: float
    wake_energy: float
    wake_time: float = 0.0

    def __post_init__(self) -> None:
        if self.power < 0 or self.wake_energy < 0 or self.wake_time < 0:
            raise ConfigError(f"state {self.name!r} has negative figures")

    def gap_cost(self, t: float) -> float:
        """``f_i(t) = beta_i + power_i * t`` — cost if the gap ends at t."""
        return self.wake_energy + self.power * t


def _validated_ladder(states: Sequence[DpmState]) -> List[DpmState]:
    states = list(states)
    if not states:
        raise ConfigError("at least one power state is required")
    if states[0].wake_energy != 0.0:
        raise ConfigError(
            "the first (shallowest) state must have wake_energy == 0"
        )
    for prev, nxt in zip(states, states[1:]):
        if not (nxt.power < prev.power):
            raise ConfigError(
                f"powers must strictly decrease down the ladder "
                f"({prev.name} -> {nxt.name})"
            )
        if not (nxt.wake_energy > prev.wake_energy):
            raise ConfigError(
                f"wake energies must strictly increase down the ladder "
                f"({prev.name} -> {nxt.name})"
            )
    return states


class MultiStateDpmPolicy:
    """The lower-envelope threshold schedule over a state ladder.

    Parameters
    ----------
    states:
        Shallow-to-deep ladder: strictly decreasing power, strictly
        increasing wake energy, first state with ``wake_energy = 0``.

    Notes
    -----
    Some states may never be entered (their line never forms part of the
    lower envelope); they are skipped automatically, exactly like the
    envelope construction in the competitive-analysis literature.
    """

    def __init__(self, states: Sequence[DpmState]) -> None:
        ladder = _validated_ladder(states)
        # Build the lower envelope greedily: from the current state, the
        # next state entered is the one whose line crosses lowest.
        schedule: List[Tuple[float, DpmState]] = [(0.0, ladder[0])]
        current = ladder[0]
        t = 0.0
        remaining = ladder[1:]
        while remaining:
            best = None
            best_t = math.inf
            for cand in remaining:
                # f_cand(t*) = f_current(t*)
                cross = (cand.wake_energy - current.wake_energy) / (
                    current.power - cand.power
                )
                if cross < best_t:
                    best_t = cross
                    best = cand
            if best is None or best_t <= t:
                # Degenerate crossing (dominated state); drop and continue.
                remaining = [s for s in remaining if s is not best]
                continue
            schedule.append((best_t, best))
            remaining = remaining[remaining.index(best) + 1 :]
            current = best
            t = best_t
        self.states = ladder
        #: ``(entry_time, state)`` pairs, entry times strictly increasing.
        self.schedule = schedule

    @classmethod
    def two_state(cls, spec: DiskSpec) -> "MultiStateDpmPolicy":
        """The paper's idle/standby ladder for a given disk spec."""
        return cls(states_from_spec(spec))

    def thresholds(self) -> List[float]:
        """Entry times of the non-initial states (the policy's thresholds)."""
        return [t for t, _ in self.schedule[1:]]

    def state_at(self, idle_time: float) -> DpmState:
        """The state the policy occupies ``idle_time`` into a gap."""
        if idle_time < 0:
            raise ConfigError("idle_time must be >= 0")
        current = self.schedule[0][1]
        for entry, state in self.schedule[1:]:
            if idle_time >= entry:
                current = state
            else:
                break
        return current

    def gap_energy(self, gap: float) -> float:
        """Online energy spent on one idle gap of length ``gap``.

        Residency energy along the schedule plus the wake penalty of the
        state occupied when the gap ends.
        """
        if gap < 0:
            raise ConfigError("gap must be >= 0")
        energy = 0.0
        for (entry, state), nxt in zip(
            self.schedule, self.schedule[1:] + [(math.inf, None)]
        ):
            start = min(gap, entry)
            end = min(gap, nxt[0])
            energy += state.power * (end - start)
            if end >= gap:
                break
        return energy + self.state_at(gap).wake_energy

    def wake_penalty(self, gap: float) -> float:
        """Latency charged to the request arriving after ``gap`` seconds."""
        return self.state_at(gap).wake_time

    def expected_gap_energy(self, rate: float) -> float:
        """``E[gap_energy(X)]`` for ``X ~ Exp(rate)`` (closed form)."""
        if rate <= 0:
            raise ConfigError("rate must be positive")
        lam = rate
        total = 0.0
        pairs = self.schedule + [(math.inf, None)]
        for (entry, state), (nxt_entry, _) in zip(pairs, pairs[1:]):
            # Residency: E[min(X, nxt) - min(X, entry)].
            hi = 0.0 if math.isinf(nxt_entry) else math.exp(-lam * nxt_entry)
            lo = math.exp(-lam * entry)
            total += state.power * (lo - hi) / lam
            # Wake penalty charged if the gap ends inside this segment.
            total += state.wake_energy * (lo - hi)
        return total

    def sequence_energy(self, gaps: Iterable[float]) -> float:
        """Total online energy over a recorded gap sequence."""
        return sum(self.gap_energy(g) for g in gaps)


def offline_optimal_gap_energy(
    states: Sequence[DpmState], gap: float
) -> float:
    """Clairvoyant optimum for one gap: park in the single best state."""
    if gap < 0:
        raise ConfigError("gap must be >= 0")
    return min(state.gap_cost(gap) for state in _validated_ladder(states))


def states_from_spec(spec: DiskSpec) -> List[DpmState]:
    """Table 2's disk as a two-state ladder.

    The standby wake energy folds the full spin-down + spin-up cycle
    (charged once per visit, as in the break-even derivation); the wake
    latency is the spin-up time.
    """
    return [
        DpmState("idle", spec.idle_power, 0.0, 0.0),
        DpmState(
            "standby",
            spec.standby_power,
            spec.transition_energy,
            spec.spinup_time,
        ),
    ]


# -- simulation ladders ----------------------------------------------------------


@dataclass(frozen=True)
class LadderRung:
    """One rung of a *simulation* ladder (explicit transitions).

    Attributes
    ----------
    name:
        Timeline label for the parked state (must be unique per ladder).
    power:
        Draw while parked (W).
    entry:
        Seconds of idleness at which the (non-abortable) descent *into*
        this rung begins; 0 for the shallowest rung.
    down_time / down_power:
        Duration (s) and draw (W) of the descent transition — the
        Figure 1 spin-down, generalized per rung.  A request arriving
        mid-descent waits for it to finish before the wake starts.
    wake_time / wake_power:
        Duration (s) and draw (W) of the wake transition charged to the
        request that ends an idle gap while the disk is in (or
        descending into) this rung.
    """

    name: str
    power: float
    entry: float = 0.0
    down_time: float = 0.0
    down_power: float = 0.0
    wake_time: float = 0.0
    wake_power: float = 0.0

    def __post_init__(self) -> None:
        for field in ("power", "entry", "down_time", "down_power",
                      "wake_time", "wake_power"):
            if getattr(self, field) < 0:
                raise ConfigError(
                    f"rung {self.name!r}: {field} must be >= 0"
                )
        if not self.name or self.name.startswith(("down:", "wake:")):
            raise ConfigError(
                "rung names must be non-empty and not use the reserved "
                "'down:'/'wake:' prefixes"
            )
        if self.name in ("seek", "active"):
            raise ConfigError(
                f"rung name {self.name!r} collides with a serving state"
            )


@dataclass(frozen=True)
class DpmLadder:
    """A validated shallow-to-deep simulation ladder.

    Rung 0 is the serving/idle rung (``entry = down_time = wake_time =
    0``); deeper rungs draw strictly less power and are entered after
    strictly longer idleness.  Descents must fit between entries
    (``entry[i] >= entry[i-1] + down_time[i-1]``) so a disk never starts
    a descent before finishing the previous one.

    The online threshold control loop (:mod:`repro.control`) steers a
    ladder through one scalar per disk — the first-descent threshold.
    :meth:`scaled_entries` maps that scalar onto per-rung descent times
    by scaling every entry proportionally (``sigma = threshold /
    base_threshold``), cascading descents forward where the scaled
    entries would overlap a still-running transition.  With the
    ``two_state`` preset this degenerates to exactly the classic
    single-threshold drive.
    """

    name: str
    rungs: Tuple[LadderRung, ...]

    def __post_init__(self) -> None:
        rungs = tuple(self.rungs)
        object.__setattr__(self, "rungs", rungs)
        if not rungs:
            raise ConfigError("a ladder needs at least one rung")
        first = rungs[0]
        if first.entry != 0.0 or first.down_time != 0.0 or first.wake_time != 0.0:
            raise ConfigError(
                "rung 0 must have entry == down_time == wake_time == 0"
            )
        names = [r.name for r in rungs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate rung names in ladder {self.name!r}")
        for prev, nxt in zip(rungs, rungs[1:]):
            if not nxt.power < prev.power:
                raise ConfigError(
                    f"powers must strictly decrease down the ladder "
                    f"({prev.name} -> {nxt.name})"
                )
            if not nxt.entry > prev.entry:
                raise ConfigError(
                    f"entry times must strictly increase down the ladder "
                    f"({prev.name} -> {nxt.name})"
                )
            if not math.isfinite(nxt.entry):
                raise ConfigError("entry times must be finite")
            if nxt.entry < prev.entry + prev.down_time:
                raise ConfigError(
                    f"descent into {nxt.name!r} starts before the descent "
                    f"into {prev.name!r} finishes"
                )

    @property
    def base_threshold(self) -> float:
        """The first-descent threshold (``inf`` for a descent-free ladder)."""
        if len(self.rungs) < 2:
            return math.inf
        return self.rungs[1].entry

    @property
    def entries(self) -> Tuple[float, ...]:
        """Native per-rung descent-start times (``entries[0] == 0``)."""
        return tuple(r.entry for r in self.rungs)

    def scaled_entries(self, threshold: float) -> Tuple[float, ...]:
        """Effective descent-start times under a controlled threshold.

        ``threshold`` replaces the first rung's entry exactly (so the
        classic single-threshold semantics are preserved bit for bit when
        ``threshold == base_threshold``); deeper entries scale by
        ``threshold / base_threshold`` and are pushed forward where a
        scaled entry would land inside the previous rung's descent.
        ``inf`` disables descent entirely; ``0`` cascades straight down.
        """
        rungs = self.rungs
        if len(rungs) < 2:
            return (0.0,)
        th = float(threshold)
        if th < 0:
            raise ConfigError("threshold must be >= 0")
        if th == rungs[1].entry:
            return self.entries
        if math.isinf(th):
            return (0.0,) + (math.inf,) * (len(rungs) - 1)
        sigma = th / rungs[1].entry
        out = [0.0, th]
        prev = th
        for i in range(2, len(rungs)):
            start = sigma * rungs[i].entry
            floor = prev + rungs[i - 1].down_time
            if start < floor:
                start = floor
            out.append(start)
            prev = start
        return tuple(out)

    def power_table(self, spec: DiskSpec) -> Dict[str, float]:
        """Timeline label -> watts for every state a ladder run can enter."""
        table: Dict[str, float] = {}
        for rung in self.rungs:
            table[rung.name] = rung.power
            table[f"down:{rung.name}"] = rung.down_power
            table[f"wake:{rung.name}"] = rung.wake_power
        table["seek"] = spec.seek_power
        table["active"] = spec.active_power
        return table

    @classmethod
    def from_policy(
        cls, policy: MultiStateDpmPolicy, spec: DiskSpec,
        name: str = "custom",
    ) -> "DpmLadder":
        """Express an analysis-side envelope schedule as a simulation ladder.

        Each scheduled state's wake penalty ``beta`` is split into an
        explicit wake transition (``wake_time`` at spin-up power) plus a
        descent transition billing the residue at spin-down power —
        ``beta = down_time * P_down + wake_time * P_up`` — so the
        simulated energy per visited rung equals the analysis model's
        ``beta`` while standby residency is counted from the descent's
        *end* (the physically conserving convention; the analysis closed
        forms count it from the threshold instant).  For
        :meth:`MultiStateDpmPolicy.two_state` this recovers exactly the
        classic drive's spin-down/spin-up cycle.  Descents too long to
        fit before the next scheduled entry are clamped to the gap.
        """
        schedule = policy.schedule
        rungs = [LadderRung(schedule[0][1].name, schedule[0][1].power)]
        for i, (entry, state) in enumerate(schedule[1:], start=1):
            wake_covered = spec.spinup_power * state.wake_time
            residue = max(0.0, state.wake_energy - wake_covered)
            down_time = (
                residue / spec.spindown_power if spec.spindown_power > 0
                else 0.0
            )
            next_entry = (
                schedule[i + 1][0] if i + 1 < len(schedule) else math.inf
            )
            down_time = min(down_time, next_entry - entry)
            rungs.append(
                LadderRung(
                    name=state.name,
                    power=state.power,
                    entry=entry,
                    down_time=down_time,
                    down_power=spec.spindown_power,
                    wake_time=state.wake_time,
                    wake_power=spec.spinup_power,
                )
            )
        return cls(name=name, rungs=tuple(rungs))


def _entries_from_transitions(
    powers: Sequence[float],
    betas: Sequence[float],
) -> List[float]:
    """Lower-envelope entry times: rung ``i`` is entered where its cost line
    ``f_i(t) = beta_i + p_i * t`` crosses below rung ``i-1``'s, i.e. at
    ``(b_i - b_{i-1}) / (p_{i-1} - p_i)`` (the same crossing the analysis
    schedule computes)."""
    entries = [0.0]
    for i in range(1, len(powers)):
        entries.append(
            (betas[i] - betas[i - 1]) / (powers[i - 1] - powers[i])
        )
    return entries


def _two_state_ladder(spec: DiskSpec) -> DpmLadder:
    """The paper's Figure 1 drive as a ladder (classic, bit for bit)."""
    return DpmLadder(
        name="two_state",
        rungs=(
            LadderRung("idle", spec.idle_power),
            LadderRung(
                "standby",
                spec.standby_power,
                entry=spec.breakeven_threshold(),
                down_time=spec.spindown_time,
                down_power=spec.spindown_power,
                wake_time=spec.spinup_time,
                wake_power=spec.spinup_power,
            ),
        ),
    )


def _interpolated_ladder(
    spec: DiskSpec,
    name: str,
    levels: Sequence[Tuple[str, float, float, float]],
) -> DpmLadder:
    """Build a ladder from ``(name, power_fraction, down_frac, wake_frac)``
    intermediate levels between idle (fraction 1) and standby (fraction 0).

    Rung powers sit at ``standby + fraction * (idle - standby)``; descent
    and wake transitions are the given fractions of the spec's spin-down/
    spin-up; entries are the lower-envelope crossings of the resulting
    ``beta_i = down_i * P_down + wake_i * P_up`` lines, so each rung is
    entered exactly when it becomes the cheapest place to wait.
    """
    span = spec.idle_power - spec.standby_power
    names = ["idle"] + [lv[0] for lv in levels] + ["standby"]
    powers = (
        [spec.idle_power]
        + [spec.standby_power + lv[1] * span for lv in levels]
        + [spec.standby_power]
    )
    downs = [0.0] + [lv[2] * spec.spindown_time for lv in levels] + [
        spec.spindown_time
    ]
    wakes = [0.0] + [lv[3] * spec.spinup_time for lv in levels] + [
        spec.spinup_time
    ]
    betas = [
        d * spec.spindown_power + w * spec.spinup_power
        for d, w in zip(downs, wakes)
    ]
    entries = _entries_from_transitions(powers, betas)
    rungs = [
        LadderRung(
            name=n,
            power=p,
            entry=e,
            down_time=d,
            down_power=spec.spindown_power if i else 0.0,
            wake_time=w,
            wake_power=spec.spinup_power if i else 0.0,
        )
        for i, (n, p, e, d, w) in enumerate(
            zip(names, powers, entries, downs, wakes)
        )
    ]
    return DpmLadder(name=name, rungs=tuple(rungs))


def _nap_ladder(spec: DiskSpec) -> DpmLadder:
    """Idle / low-RPM nap / standby — the three-state DRPM-style ladder."""
    return _interpolated_ladder(spec, "nap", [("nap", 0.40, 0.25, 0.20)])


def _drpm4_ladder(spec: DiskSpec) -> DpmLadder:
    """Four DRPM speed levels: idle, two reduced-RPM rungs, standby."""
    return _interpolated_ladder(
        spec,
        "drpm4",
        [("rpm_hi", 0.55, 0.15, 0.15), ("rpm_lo", 0.25, 0.30, 0.40)],
    )


#: name -> builder(spec); the presets ``StorageConfig(dpm_ladder=...)``
#: accepts by name.  ``two_state`` is the classic Figure 1 drive.
DPM_LADDERS: Dict[str, Callable[[DiskSpec], DpmLadder]] = {
    "two_state": _two_state_ladder,
    "nap": _nap_ladder,
    "drpm4": _drpm4_ladder,
}


def dpm_ladder_names() -> Tuple[str, ...]:
    """All registered ladder preset names."""
    return tuple(DPM_LADDERS)


def make_dpm_ladder(
    ladder: Union[None, str, DpmLadder], spec: DiskSpec
) -> Optional[DpmLadder]:
    """Resolve a preset name (or pass a ready ladder through); ``None`` stays
    ``None`` (the classic two-state code path, no ladder machinery)."""
    if ladder is None or isinstance(ladder, DpmLadder):
        return ladder
    try:
        builder = DPM_LADDERS[ladder]
    except KeyError:
        raise ConfigError(
            f"unknown DPM ladder {ladder!r}; choose from {dpm_ladder_names()}"
        ) from None
    return builder(spec)
