"""Multi-state dynamic power management (the paper's §2 framework).

The related work the paper builds on (Irani, Singh, Shukla & Gupta's
survey) models a disk with ``n`` power states: state ``i`` draws
``power_i`` watts and charges a wake penalty ``beta_i`` (energy to return
to the serving state), with deeper states drawing less and costing more to
wake; the active/idle state has ``beta = 0``.  The classic *lower-envelope*
(balance) strategy moves to the state minimizing

.. math:: f_i(t) = \\beta_i + power_i \\cdot t

if the idle gap were to end exactly at ``t``; the switch times are the
crossing points of the ``f_i`` lines, and the strategy is **2-competitive**
against the clairvoyant optimum on every gap sequence — the bound the
paper quotes for the two-state case.  With Table 2's two states the single
crossing point is exactly the 53.3 s break-even threshold.

This module computes the schedule, per-gap energies and penalties, the
offline optimum, and expected power under Poisson gaps (closed form).
:mod:`repro.disk.multistate` runs the same ladder inside the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.disk.specs import DiskSpec
from repro.errors import ConfigError

__all__ = [
    "DpmState",
    "MultiStateDpmPolicy",
    "offline_optimal_gap_energy",
    "states_from_spec",
]


@dataclass(frozen=True)
class DpmState:
    """One rung of the power-state ladder.

    Attributes
    ----------
    name:
        Human-readable label.
    power:
        Draw while parked in this state (W).
    wake_energy:
        The penalty ``beta_i``: energy to return to service (J); 0 for the
        shallowest (idle) state.
    wake_time:
        Latency imposed on the request that wakes the disk (s).
    """

    name: str
    power: float
    wake_energy: float
    wake_time: float = 0.0

    def __post_init__(self) -> None:
        if self.power < 0 or self.wake_energy < 0 or self.wake_time < 0:
            raise ConfigError(f"state {self.name!r} has negative figures")

    def gap_cost(self, t: float) -> float:
        """``f_i(t) = beta_i + power_i * t`` — cost if the gap ends at t."""
        return self.wake_energy + self.power * t


def _validated_ladder(states: Sequence[DpmState]) -> List[DpmState]:
    states = list(states)
    if not states:
        raise ConfigError("at least one power state is required")
    if states[0].wake_energy != 0.0:
        raise ConfigError(
            "the first (shallowest) state must have wake_energy == 0"
        )
    for prev, nxt in zip(states, states[1:]):
        if not (nxt.power < prev.power):
            raise ConfigError(
                f"powers must strictly decrease down the ladder "
                f"({prev.name} -> {nxt.name})"
            )
        if not (nxt.wake_energy > prev.wake_energy):
            raise ConfigError(
                f"wake energies must strictly increase down the ladder "
                f"({prev.name} -> {nxt.name})"
            )
    return states


class MultiStateDpmPolicy:
    """The lower-envelope threshold schedule over a state ladder.

    Parameters
    ----------
    states:
        Shallow-to-deep ladder: strictly decreasing power, strictly
        increasing wake energy, first state with ``wake_energy = 0``.

    Notes
    -----
    Some states may never be entered (their line never forms part of the
    lower envelope); they are skipped automatically, exactly like the
    envelope construction in the competitive-analysis literature.
    """

    def __init__(self, states: Sequence[DpmState]) -> None:
        ladder = _validated_ladder(states)
        # Build the lower envelope greedily: from the current state, the
        # next state entered is the one whose line crosses lowest.
        schedule: List[Tuple[float, DpmState]] = [(0.0, ladder[0])]
        current = ladder[0]
        t = 0.0
        remaining = ladder[1:]
        while remaining:
            best = None
            best_t = math.inf
            for cand in remaining:
                # f_cand(t*) = f_current(t*)
                cross = (cand.wake_energy - current.wake_energy) / (
                    current.power - cand.power
                )
                if cross < best_t:
                    best_t = cross
                    best = cand
            if best is None or best_t <= t:
                # Degenerate crossing (dominated state); drop and continue.
                remaining = [s for s in remaining if s is not best]
                continue
            schedule.append((best_t, best))
            remaining = remaining[remaining.index(best) + 1 :]
            current = best
            t = best_t
        self.states = ladder
        #: ``(entry_time, state)`` pairs, entry times strictly increasing.
        self.schedule = schedule

    @classmethod
    def two_state(cls, spec: DiskSpec) -> "MultiStateDpmPolicy":
        """The paper's idle/standby ladder for a given disk spec."""
        return cls(states_from_spec(spec))

    def thresholds(self) -> List[float]:
        """Entry times of the non-initial states (the policy's thresholds)."""
        return [t for t, _ in self.schedule[1:]]

    def state_at(self, idle_time: float) -> DpmState:
        """The state the policy occupies ``idle_time`` into a gap."""
        if idle_time < 0:
            raise ConfigError("idle_time must be >= 0")
        current = self.schedule[0][1]
        for entry, state in self.schedule[1:]:
            if idle_time >= entry:
                current = state
            else:
                break
        return current

    def gap_energy(self, gap: float) -> float:
        """Online energy spent on one idle gap of length ``gap``.

        Residency energy along the schedule plus the wake penalty of the
        state occupied when the gap ends.
        """
        if gap < 0:
            raise ConfigError("gap must be >= 0")
        energy = 0.0
        for (entry, state), nxt in zip(
            self.schedule, self.schedule[1:] + [(math.inf, None)]
        ):
            start = min(gap, entry)
            end = min(gap, nxt[0])
            energy += state.power * (end - start)
            if end >= gap:
                break
        return energy + self.state_at(gap).wake_energy

    def wake_penalty(self, gap: float) -> float:
        """Latency charged to the request arriving after ``gap`` seconds."""
        return self.state_at(gap).wake_time

    def expected_gap_energy(self, rate: float) -> float:
        """``E[gap_energy(X)]`` for ``X ~ Exp(rate)`` (closed form)."""
        if rate <= 0:
            raise ConfigError("rate must be positive")
        lam = rate
        total = 0.0
        pairs = self.schedule + [(math.inf, None)]
        for (entry, state), (nxt_entry, _) in zip(pairs, pairs[1:]):
            # Residency: E[min(X, nxt) - min(X, entry)].
            hi = 0.0 if math.isinf(nxt_entry) else math.exp(-lam * nxt_entry)
            lo = math.exp(-lam * entry)
            total += state.power * (lo - hi) / lam
            # Wake penalty charged if the gap ends inside this segment.
            total += state.wake_energy * (lo - hi)
        return total

    def sequence_energy(self, gaps: Iterable[float]) -> float:
        """Total online energy over a recorded gap sequence."""
        return sum(self.gap_energy(g) for g in gaps)


def offline_optimal_gap_energy(
    states: Sequence[DpmState], gap: float
) -> float:
    """Clairvoyant optimum for one gap: park in the single best state."""
    if gap < 0:
        raise ConfigError("gap must be >= 0")
    return min(state.gap_cost(gap) for state in _validated_ladder(states))


def states_from_spec(spec: DiskSpec) -> List[DpmState]:
    """Table 2's disk as a two-state ladder.

    The standby wake energy folds the full spin-down + spin-up cycle
    (charged once per visit, as in the break-even derivation); the wake
    latency is the spin-up time.
    """
    return [
        DpmState("idle", spec.idle_power, 0.0, 0.0),
        DpmState(
            "standby",
            spec.standby_power,
            spec.transition_energy,
            spec.spinup_time,
        ),
    ]
