"""Heterogeneous disk fleets: per-disk specs, ladders, and thresholds.

Every layer of the reproduction originally assumed the paper's
homogeneous array — one :class:`~repro.disk.specs.DiskSpec`, one scalar
capacity, one break-even threshold shared by all disks.  A
:class:`Fleet` lifts that assumption: it is a repeating *profile* of
:class:`FleetDisk` slots (spec + optional per-disk ladder/threshold)
that :meth:`Fleet.resolve` expands into a concrete per-disk
:class:`ResolvedFleet` for a given pool size.  ``StorageConfig(fleet=...)``
selects one by preset name or instance; ``spec=`` remains sugar for a
uniform fleet and keeps its byte-identical pre-fleet behavior.

The ``mixed_generation`` preset pairs Table 2's Seagate with a
newer-generation green drive (:data:`~repro.disk.specs.WD10EADS`):
double the capacity, ~1/3 the idle draw, cheaper spin transitions and a
lower break-even — the asymmetry that spec-aware placement
(``cheapest_spinning``) and per-disk DPM control exist to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
import numpy.typing as npt

from repro.disk.dpm import DpmLadder, dpm_ladder_names, make_dpm_ladder
from repro.disk.power import DiskState, PowerModel
from repro.disk.specs import ST3500630AS, WD10EADS, DiskSpec
from repro.errors import ConfigError

__all__ = [
    "FLEETS",
    "Fleet",
    "FleetDisk",
    "ResolvedFleet",
    "fleet_names",
    "make_fleet",
]


@dataclass(frozen=True)
class FleetDisk:
    """One slot of a fleet profile.

    Attributes
    ----------
    spec:
        The drive model occupying this slot.
    ladder:
        Optional per-disk DPM ladder: a preset name from
        :data:`repro.disk.dpm.DPM_LADDERS` (resolved against *this*
        slot's spec) or a ready :class:`~repro.disk.dpm.DpmLadder`.
        ``None`` falls back to the config-wide ``dpm_ladder``.
    threshold:
        Optional per-disk idleness threshold (seconds).  ``None`` falls
        back to the config-wide ``idleness_threshold``, then to the
        slot's ladder entry / spec break-even.
    """

    spec: DiskSpec
    ladder: Union[None, str, DpmLadder] = None
    threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.spec, DiskSpec):
            raise ConfigError("FleetDisk.spec must be a DiskSpec")
        if isinstance(self.ladder, str) and self.ladder not in dpm_ladder_names():
            raise ConfigError(
                f"unknown DPM ladder {self.ladder!r}; "
                f"choose from {dpm_ladder_names()}"
            )
        if self.ladder is not None and not isinstance(
            self.ladder, (str, DpmLadder)
        ):
            raise ConfigError("FleetDisk.ladder must be a name or a DpmLadder")
        if self.threshold is not None and self.threshold < 0:
            raise ConfigError("FleetDisk.threshold must be >= 0")


@dataclass(frozen=True)
class Fleet:
    """A named, repeating profile of per-disk slots.

    ``resolve(num_disks)`` tiles the profile across the pool
    (``disk d`` gets ``profile[d % len(profile)]``), so a two-slot
    profile yields an alternating old/new array at any pool size.
    """

    name: str
    profile: Tuple[FleetDisk, ...]

    def __post_init__(self) -> None:
        profile = tuple(self.profile)
        object.__setattr__(self, "profile", profile)
        if not profile:
            raise ConfigError("a fleet needs at least one disk slot")
        for slot in profile:
            if not isinstance(slot, FleetDisk):
                raise ConfigError("Fleet.profile must contain FleetDisk slots")

    @staticmethod
    def uniform(
        spec: DiskSpec,
        ladder: Union[None, str, DpmLadder] = None,
        threshold: Optional[float] = None,
        name: str = "uniform",
    ) -> "Fleet":
        """A homogeneous fleet (what bare ``StorageConfig(spec=...)`` means)."""
        return Fleet(
            name=name,
            profile=(FleetDisk(spec, ladder=ladder, threshold=threshold),),
        )

    def resolve(
        self,
        num_disks: int,
        default_ladder: Union[None, str, DpmLadder] = None,
        default_threshold: Optional[float] = None,
    ) -> "ResolvedFleet":
        """Expand the profile into per-disk specs/ladders/thresholds.

        Per-slot fields win over the config-wide defaults; a slot
        threshold falls back to ``default_threshold``, then the slot
        ladder's native first entry, then the slot spec's break-even.
        If *any* disk resolves to a ladder, ladderless disks get their
        spec's ``two_state`` ladder (bit-equal to the classic drive), so
        one machinery runs the whole pool.
        """
        if num_disks < 1:
            raise ConfigError(f"num_disks must be >= 1, got {num_disks}")
        slots = [self.profile[d % len(self.profile)] for d in range(num_disks)]
        specs = [s.spec for s in slots]
        ladders: List[Optional[DpmLadder]] = [
            make_dpm_ladder(
                s.ladder if s.ladder is not None else default_ladder, s.spec
            )
            for s in slots
        ]
        if any(l is not None for l in ladders) and any(
            l is None for l in ladders
        ):
            ladders = [
                l if l is not None else make_dpm_ladder("two_state", sp)
                for l, sp in zip(ladders, specs)
            ]
        thresholds: List[float] = []
        for slot, spec, lad in zip(slots, specs, ladders):
            if slot.threshold is not None:
                th = slot.threshold
            elif default_threshold is not None:
                th = default_threshold
            elif lad is not None:
                th = lad.base_threshold
            else:
                th = spec.breakeven_threshold()
            thresholds.append(float(th))
        return ResolvedFleet(specs, ladders, thresholds)


class ResolvedFleet:
    """Per-disk view of a fleet at a concrete pool size.

    Exposes the vectors both engines consume: capacities, transfer
    rates, access overheads, spin times, per-state power draws, and the
    per-disk break-even thresholds.  ``ladders`` is either all-``None``
    (classic two-state pool) or has a :class:`~repro.disk.dpm.DpmLadder`
    on every disk — :meth:`Fleet.resolve` guarantees the invariant.
    """

    def __init__(
        self,
        specs: Sequence[DiskSpec],
        ladders: Sequence[Optional[DpmLadder]],
        thresholds: Sequence[float],
    ) -> None:
        self.specs: Tuple[DiskSpec, ...] = tuple(specs)
        self.ladders: Tuple[Optional[DpmLadder], ...] = tuple(ladders)
        self.thresholds: npt.NDArray[np.float64] = np.asarray(
            thresholds, dtype=float
        )
        n = len(self.specs)
        if not (n == len(self.ladders) == self.thresholds.size):
            raise ConfigError("specs/ladders/thresholds lengths differ")
        with_ladder = sum(l is not None for l in self.ladders)
        if with_ladder not in (0, n):
            raise ConfigError(
                "a resolved fleet must give every disk a ladder or none"
            )
        self.num_disks = n
        self.has_ladders = with_ladder == n
        #: All disks share one spec (power/capacity vectors are constant).
        self.homogeneous_specs = len(set(self.specs)) == 1
        #: Fully uniform: one spec, one ladder, one threshold — the
        #: pre-fleet code paths apply byte-identically.
        self.homogeneous = (
            self.homogeneous_specs
            and len(set(self.ladders)) == 1
            and len(set(self.thresholds.tolist())) == 1
        )

    def _vec(self, attr: str) -> npt.NDArray[np.float64]:
        return np.array(
            [float(getattr(s, attr)) for s in self.specs], dtype=float
        )

    @property
    def spec(self) -> DiskSpec:
        """Representative spec (disk 0) — for homogeneous-only callers."""
        return self.specs[0]

    @property
    def capacities(self) -> npt.NDArray[np.float64]:
        return self._vec("capacity")

    @property
    def transfer_rates(self) -> npt.NDArray[np.float64]:
        return self._vec("transfer_rate")

    @property
    def access_overheads(self) -> npt.NDArray[np.float64]:
        return self._vec("access_overhead")

    @property
    def spinup_times(self) -> npt.NDArray[np.float64]:
        return self._vec("spinup_time")

    @property
    def spindown_times(self) -> npt.NDArray[np.float64]:
        return self._vec("spindown_time")

    @property
    def idle_power(self) -> npt.NDArray[np.float64]:
        return self._vec("idle_power")

    @property
    def standby_power(self) -> npt.NDArray[np.float64]:
        return self._vec("standby_power")

    @property
    def active_power(self) -> npt.NDArray[np.float64]:
        return self._vec("active_power")

    @property
    def seek_power(self) -> npt.NDArray[np.float64]:
        return self._vec("seek_power")

    @property
    def spinup_power(self) -> npt.NDArray[np.float64]:
        return self._vec("spinup_power")

    @property
    def spindown_power(self) -> npt.NDArray[np.float64]:
        return self._vec("spindown_power")

    @property
    def breakevens(self) -> npt.NDArray[np.float64]:
        """Per-disk break-even thresholds (the control policies' floor)."""
        return np.array(
            [s.breakeven_threshold() for s in self.specs], dtype=float
        )

    def power_vector(self, state: DiskState) -> npt.NDArray[np.float64]:
        """Per-disk draw (W) in one classic :class:`DiskState`."""
        return self._vec(
            {
                DiskState.IDLE: "idle_power",
                DiskState.STANDBY: "standby_power",
                DiskState.SEEK: "seek_power",
                DiskState.ACTIVE: "active_power",
                DiskState.SPINUP: "spinup_power",
                DiskState.SPINDOWN: "spindown_power",
            }[state]
        )

    def ladder_groups(
        self,
    ) -> List[Tuple[Optional[DpmLadder], npt.NDArray[np.intp]]]:
        """Disks grouped by identical ladder, in first-seen order.

        The fast kernel assembles ladder energy per group; a uniform
        fleet is a single group over the full pool, which keeps the
        pre-fleet vectorized assembly (and its bit-exact summation
        order) intact.
        """
        groups: List[Tuple[Optional[DpmLadder], List[int]]] = []
        for d, lad in enumerate(self.ladders):
            for known, members in groups:
                if known == lad:
                    members.append(d)
                    break
            else:
                groups.append((lad, [d]))
        return [
            (lad, np.asarray(members, dtype=np.intp))
            for lad, members in groups
        ]

    def always_on_energy(self, duration: float) -> float:
        """Figure 5 baseline: every drive spinning idle for ``duration``."""
        if duration < 0:
            raise ConfigError("duration must be >= 0")
        if self.homogeneous_specs:
            return self.num_disks * PowerModel(self.specs[0]).always_on_energy(
                duration
            )
        return float(
            sum(
                PowerModel(s).always_on_energy(duration) for s in self.specs
            )
        )

    def describe(self) -> str:
        """Short human-readable fleet summary (for labels and errors)."""
        counts: Dict[str, int] = {}
        for s in self.specs:
            counts[s.model] = counts.get(s.model, 0) + 1
        return ", ".join(f"{n}x {m}" for m, n in counts.items())


#: Named fleet presets ``StorageConfig(fleet=...)`` accepts.  The
#: ``mixed_generation`` fleet alternates the paper's Seagate with the
#: newer green drive — per-disk capacities (500 GB vs 1 TB), idle draws
#: (9.3 W vs 2.8 W) and break-evens (53.3 s vs ~45.8 s) all differ.
FLEETS: Dict[str, Fleet] = {
    "mixed_generation": Fleet(
        name="mixed_generation",
        profile=(FleetDisk(ST3500630AS), FleetDisk(WD10EADS)),
    ),
}


def fleet_names() -> Tuple[str, ...]:
    """All registered fleet preset names."""
    return tuple(FLEETS)


def make_fleet(fleet: Union[None, str, Fleet]) -> Optional[Fleet]:
    """Resolve a preset name (or pass a ready fleet through); ``None``
    stays ``None`` (the uniform-``spec`` sugar path)."""
    if fleet is None or isinstance(fleet, Fleet):
        return fleet
    try:
        return FLEETS[fleet]
    except KeyError:
        raise ConfigError(
            f"unknown fleet {fleet!r}; choose from {fleet_names()}"
        ) from None
