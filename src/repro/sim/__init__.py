"""Discrete-event simulation kernel.

A from-scratch substitute for SimPy (the framework the paper's simulator was
written in), providing the same process-based modelling style:

* :class:`~repro.sim.environment.Environment` — the event loop and clock,
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.Process` — generator-coroutine processes that
  ``yield`` events to wait on them,
* :class:`~repro.sim.events.AnyOf` / :class:`~repro.sim.events.AllOf` —
  condition events,
* :class:`~repro.sim.events.Interrupt` — asynchronous process interruption,
* :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.PriorityResource`,
  :class:`~repro.sim.resources.Store` — shared-resource primitives,
* :mod:`~repro.sim.monitor` — state timelines and streaming statistics used
  for energy accounting and response-time measurement,
* :mod:`~repro.sim.fastkernel` — a batched fast path for array-backed
  streams, covering read/write mixes (§1.1 write allocation) and shared
  caches as well as the read-only case (select with
  ``StorageConfig(engine="fast")``), validated against the event kernel
  and typically 5-50x faster.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def clock(env, name, tick):
...     while True:
...         yield env.timeout(tick)
...         log.append((name, env.now))
>>> _ = env.process(clock(env, "fast", 1))
>>> _ = env.process(clock(env, "slow", 2))
>>> env.run(until=4.5)
>>> log
[('fast', 1.0), ('slow', 2.0), ('fast', 2.0), ('fast', 3.0), ('slow', 4.0), ('fast', 4.0)]
"""

from repro.sim.environment import Environment, EmptySchedule, NORMAL, URGENT
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.monitor import StateTimeline, Tally, TimeWeighted
from repro.sim.resources import (
    PriorityResource,
    Release,
    Request,
    Resource,
    Store,
    StoreGet,
    StorePut,
)
from repro.sim.rng import rng_from_seed, spawn_rngs

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "NORMAL",
    "PriorityResource",
    "Process",
    "Release",
    "Request",
    "Resource",
    "StateTimeline",
    "Store",
    "StoreGet",
    "StorePut",
    "Tally",
    "TimeWeighted",
    "Timeout",
    "URGENT",
    "rng_from_seed",
    "spawn_rngs",
]
