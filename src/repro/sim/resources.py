"""Shared-resource primitives: :class:`Resource`, :class:`PriorityResource`
and :class:`Store`.

These follow SimPy's request/release model.  ``Resource.request()`` returns a
:class:`Request` event that succeeds when a capacity slot is granted; requests
are granted in FIFO order (or priority order for :class:`PriorityResource`).
``Store`` is a FIFO buffer of Python objects with blocking ``put``/``get``.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import count
from math import inf
from typing import Any

from repro.errors import SimulationError
from repro.sim.events import Event

__all__ = [
    "PriorityResource",
    "Release",
    "Request",
    "Resource",
    "Store",
    "StoreGet",
    "StorePut",
]


class Request(Event):
    """A pending or granted claim on one unit of a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ...  # the slot is held here
        # released on exit
    """

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._key = None
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        if not self.triggered:
            self.resource._withdraw(self)


class Release(Event):
    """Event representing a completed release (always already succeeded)."""

    __slots__ = ("request",)

    def __init__(self, env, request: Request) -> None:
        super().__init__(env)
        self.request = request
        self._ok = True
        self._value = None
        env._schedule(self)


class Resource:
    """A capacity-limited resource with FIFO granting.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of concurrent users (>= 1).
    """

    def __init__(self, env, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = int(capacity)
        self.users: list = []
        self.queue: deque = deque()

    @property
    def capacity(self) -> int:
        """Maximum number of concurrent users."""
        return self._capacity

    @property
    def count(self) -> int:
        """Current number of users holding the resource."""
        return len(self.users)

    def request(self) -> Request:
        """Claim one slot; the returned event succeeds once granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release a previously granted ``request``.

        Releasing an ungranted (still queued) request cancels it instead.
        """
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            self._withdraw(request)
        return Release(self.env, request)

    # -- internals -----------------------------------------------------------

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _withdraw(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.popleft()
            if nxt.triggered:  # cancelled/raced
                continue
            self.users.append(nxt)
            nxt.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` granting queued requests by ascending priority.

    Ties are broken FIFO.  Request with ``priority=-1`` beats ``priority=0``.
    """

    def __init__(self, env, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self.queue: list = []  # heap of (priority, seq, request)
        self._seq = count()

    def request(self, priority: int = 0) -> Request:  # type: ignore[override]
        """Claim one slot with the given ``priority`` (lower = sooner)."""
        return Request(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            key = (request.priority, next(self._seq))
            request._key = key
            heappush(self.queue, (key, request))

    def _withdraw(self, request: Request) -> None:
        # Lazy deletion: mark and skip at grant time.
        request._key = None

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            key, nxt = heappop(self.queue)
            if nxt.triggered or nxt._key is None:
                continue
            self.users.append(nxt)
            nxt.succeed()


class StorePut(Event):
    """Pending ``put`` into a full :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, env, item: Any) -> None:
        super().__init__(env)
        self.item = item


class StoreGet(Event):
    """Pending ``get`` from a :class:`Store`; value is the retrieved item."""

    __slots__ = ("_cancelled",)

    def __init__(self, env) -> None:
        super().__init__(env)
        self._cancelled = False

    def cancel(self) -> None:
        """Withdraw the get; it will never receive an item."""
        if self.triggered:
            raise SimulationError("cannot cancel a fulfilled get")
        self._cancelled = True


class Store:
    """A FIFO object buffer with blocking put/get.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum buffered items (default: unbounded).
    """

    def __init__(self, env, capacity: float = inf) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque = deque()
        self._getters: deque = deque()
        self._putters: deque = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Deposit ``item``; the returned event succeeds once buffered."""
        event = StorePut(self.env, item)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._serve()
        else:
            self._putters.append(event)
        return event

    def get(self) -> StoreGet:
        """Retrieve the oldest item; the event's value is the item."""
        event = StoreGet(self.env)
        self._getters.append(event)
        self._serve()
        return event

    def _serve(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            if getter._cancelled:
                continue
            getter.succeed(self.items.popleft())
            while self._putters and len(self.items) < self.capacity:
                putter = self._putters.popleft()
                self.items.append(putter.item)
                putter.succeed()
