"""Batched fast-path simulation kernel (``StorageConfig(engine="fast")``).

The event kernel (:mod:`repro.sim.environment`) replays one request at a
time through generator processes: every arrival costs several heap
operations, event allocations and coroutine hops.  That is flexible — it
supports caches, write allocation and arbitrary process interleavings — but
it makes large parameter sweeps (the paper's Figures 2-6 grids) simulation
bound.

This module is a drop-in fast path for the dominant scenario class: a
read-only request stream replayed against a *static* file-to-disk mapping
with no shared cache.  Because each drive is then a completely independent
FIFO queue with the paper's Figure 1 power state machine, the whole run can
be computed directly:

1. the stream is pre-sorted into per-disk NumPy arrays,
2. each disk's queue is advanced with a tight float recursion (a Lindley
   recursion extended with the idleness-threshold spin-down / spin-up
   transitions) — no per-request generator hop or event objects,
3. all state-time, energy and response accounting is vectorized and
   truncated at the measurement horizon exactly like the event kernel's
   cutoff.

Semantics mirror :class:`~repro.disk.drive.DiskDrive`: drives start IDLE
with the idleness timer armed at t=0, spin-downs are not abortable
(a request arriving mid-transition waits for spin-down + spin-up), and
requests arriving at or after the horizon are censored (counted as neither
arrivals nor completions).  Agreement with the event kernel is tested to
tight tolerances in ``tests/sim/test_fastkernel.py``; the only differences
are ~1 ulp float drift (the event loop accumulates arrival times as
``now + (t - now)``) and tie-breaking at measure-zero coincidences.

Select the engine per run via ``StorageConfig(engine="fast")``; scenarios
the fast kernel cannot express (shared cache, write requests, non-array
streams) raise :class:`~repro.errors.ConfigError` — use the default
``engine="event"`` for those.
"""

from __future__ import annotations

from math import isinf
from typing import Optional

import numpy as np

from repro.disk.power import DiskState, PowerModel
from repro.disk.specs import DiskSpec
from repro.errors import ConfigError, SimulationError
from repro.system.metrics import SimulationResult

__all__ = ["fast_unsupported_reason", "simulate_fast"]


def fast_unsupported_reason(config, stream) -> Optional[str]:
    """Why ``engine="fast"`` cannot run this scenario (``None`` if it can).

    The fast kernel requires per-disk independence and a static mapping:
    no shared cache (cross-request coupling) and no writes (the write
    allocation policy inspects global spin state).
    """
    if config.cache_policy:
        return "a shared cache couples requests across disks"
    if not hasattr(stream, "times") or not hasattr(stream, "file_ids"):
        return "the stream is not array-backed (needs .times/.file_ids)"
    kinds = getattr(stream, "kinds", None)
    if kinds is not None and np.any(np.asarray(kinds) != "read"):
        return "write requests mutate the mapping via the allocation policy"
    return None


def simulate_fast(
    sizes: np.ndarray,
    mapping: np.ndarray,
    spec: DiskSpec,
    num_disks: int,
    threshold: float,
    stream,
    duration: float,
    label: str = "run",
) -> SimulationResult:
    """Simulate ``stream`` against a static mapping without the event loop.

    Parameters mirror what :class:`~repro.system.storage.StorageSystem`
    assembles: ``sizes``/``mapping`` are dense per-file arrays, ``threshold``
    is the effective idleness threshold (``inf`` disables spin-down) and
    ``duration`` the measurement horizon.  Returns the same
    :class:`~repro.system.metrics.SimulationResult` the event kernel
    produces.
    """
    if duration <= 0:
        raise ConfigError("duration must be positive")
    T = float(duration)
    times = np.asarray(stream.times, dtype=float)
    file_ids = np.asarray(stream.file_ids, dtype=np.int64)

    # The event kernel's cutoff is strict: the URGENT stop event at T
    # pre-empts arrival and completion events scheduled at exactly T.
    live = times < T
    t_all = times[live]
    fid = file_ids[live]
    arrivals = int(t_all.size)

    disk = np.asarray(mapping, dtype=np.int64)[fid]
    if arrivals and int(disk.min()) < 0:
        bad = int(fid[int(np.argmin(disk))])
        raise SimulationError(
            f"read of unallocated file {bad}; allocate it first"
        )
    if arrivals and int(disk.max()) >= num_disks:
        raise SimulationError(
            f"mapping references disk {int(disk.max())} but the pool has "
            f"only {num_disks} disks"
        )

    oh = spec.access_overhead
    transfer = sizes[fid] / spec.transfer_rate

    # Pre-sort into per-disk groups; times are already non-decreasing, so a
    # stable sort on the disk index keeps each disk's FIFO arrival order.
    order = np.argsort(disk, kind="stable")
    d_s = disk[order]
    t_s = t_all[order]
    tr_s = transfer[order]

    starts = np.empty(arrivals, dtype=float)
    avail = np.zeros(num_disks, dtype=float)
    spindown_time = np.zeros(num_disks, dtype=float)
    spinup_time = np.zeros(num_disks, dtype=float)
    standby_time = np.zeros(num_disks, dtype=float)
    spinups = np.zeros(num_disks, dtype=np.int64)
    spindowns = np.zeros(num_disks, dtype=np.int64)

    th = float(threshold)
    D = spec.spindown_time
    U = spec.spinup_time
    no_spindown = isinf(th)

    if arrivals:
        cuts = np.flatnonzero(np.diff(d_s)) + 1
        group_lo = np.concatenate(([0], cuts))
        group_hi = np.concatenate((cuts, [arrivals]))
        group_disk = d_s[group_lo]
    else:
        group_lo = group_hi = group_disk = np.empty(0, dtype=np.int64)

    for lo, hi, d in zip(
        group_lo.tolist(), group_hi.tolist(), group_disk.tolist()
    ):
        ts = t_s[lo:hi].tolist()
        trs = tr_s[lo:hi].tolist()
        out = []
        a = 0.0
        if no_spindown:
            # Pure Lindley recursion: serve at max(arrival, free time).
            for t, tr in zip(ts, trs):
                s = t if t > a else a
                out.append(s)
                a = s + oh + tr
        else:
            sd_t = 0.0
            su_t = 0.0
            sb_t = 0.0
            n_up = 0
            n_down = 0
            for t, tr in zip(ts, trs):
                if t > a:
                    if t - a > th:
                        # Idleness timer expired at a+th: spin down (not
                        # abortable), sleep, then spin up on this arrival.
                        sd = a + th
                        sd_end = sd + D
                        n_down += 1
                        sd_t += min(sd_end, T) - sd
                        if t >= sd_end:
                            sb_t += t - sd_end
                            su = t
                        else:
                            su = sd_end
                        if su < T:
                            n_up += 1
                            su_t += min(su + U, T) - su
                        s = su + U
                    else:
                        s = t
                else:
                    s = a
                out.append(s)
                a = s + oh + tr
            spindown_time[d] = sd_t
            spinup_time[d] = su_t
            standby_time[d] = sb_t
            spinups[d] = n_up
            spindowns[d] = n_down
        starts[lo:hi] = out
        avail[d] = a

    # Trailing idleness: every disk (including ones that never served a
    # request) spins down once its post-drain idle gap exceeds the
    # threshold, provided the timer fires before the horizon.
    if not no_spindown:
        sd = avail + th
        tail = sd < T
        spindowns += tail
        sd_end = sd + D
        spindown_time += np.where(tail, np.minimum(sd_end, T) - sd, 0.0)
        standby_time += np.where(tail, np.clip(T - sd_end, 0.0, None), 0.0)

    # Vectorized service accounting, truncated at the horizon.
    seek_time = np.bincount(
        d_s, weights=np.clip(T - starts, 0.0, oh), minlength=num_disks
    )
    active_time = np.bincount(
        d_s,
        weights=np.clip(T - (starts + oh), 0.0, tr_s),
        minlength=num_disks,
    )
    idle_time = np.clip(
        T
        - (seek_time + active_time + spindown_time + spinup_time + standby_time),
        0.0,
        None,
    )

    completion = starts + oh + tr_s
    done = completion < T
    responses = completion[done] - t_s[done]
    # Report response times in completion order, like the dispatcher does.
    response_times = responses[np.argsort(completion[done], kind="stable")]

    per_state = {
        DiskState.IDLE: idle_time,
        DiskState.STANDBY: standby_time,
        DiskState.SEEK: seek_time,
        DiskState.ACTIVE: active_time,
        DiskState.SPINUP: spinup_time,
        DiskState.SPINDOWN: spindown_time,
    }
    power_model = PowerModel(spec)
    energy_per_disk = np.zeros(num_disks, dtype=float)
    for state, per_disk in per_state.items():
        energy_per_disk += power_model.power(state) * per_disk
    state_durations = {
        state: float(per_disk.sum())
        for state, per_disk in per_state.items()
        if per_disk.any()
    }

    return SimulationResult(
        algorithm=label,
        duration=T,
        num_disks=num_disks,
        energy=float(energy_per_disk.sum()),
        energy_per_disk=energy_per_disk,
        state_durations=state_durations,
        response_times=response_times,
        arrivals=arrivals,
        completions=int(done.sum()),
        spinups=int(spinups.sum()),
        spindowns=int(spindowns.sum()),
        always_on_energy=num_disks * power_model.always_on_energy(T),
        cache_stats=None,
        requests_per_disk=np.bincount(d_s, minlength=num_disks).astype(
            np.int64
        ),
        spinups_per_disk=spinups,
    )
