"""Batched fast-path simulation kernel (``StorageConfig(engine="fast")``).

The event kernel (:mod:`repro.sim.environment`) replays one request at a
time through generator processes: every arrival costs several heap
operations, event allocations and coroutine hops.  That is flexible — it
supports arbitrary process interleavings — but it makes large parameter
sweeps (the paper's Figures 2-6 grids) simulation bound.

This module computes the same runs directly, without the event loop.  The
drive semantics are exactly those of :class:`~repro.disk.drive.DiskDrive`
(paper Figure 1): each disk is a FIFO queue whose service start follows a
Lindley recursion extended with the idleness-threshold spin-down / spin-up
transitions.  That per-disk recursion needs only two kinds of global
coupling, both handled here:

* **write allocation** — a write of a not-yet-mapped file inspects every
  disk's *current* spin state, free space and dispatched load through the
  configured :class:`~repro.system.placement.WritePlacementPolicy` (the
  paper's §1.1 ``spinning_best_fit`` by default), then updates the mapping
  for later requests;
* **a shared whole-file cache** — reads look the cache up at arrival and
  admit on miss *completion*, so cache contents depend on the global
  interleaving of arrivals and completions across disks.

Engine coverage matrix
----------------------

=========================================  ==========  ===========
scenario feature                           ``fast``    ``event``
=========================================  ==========  ===========
read-only static mapping                   yes         yes
idleness thresholds (0, finite, inf)       yes         yes
write streams (placement on first touch)   yes         yes
pluggable write placement (full registry)  yes         yes
shared whole-file cache (any policy)       yes         yes
mixed read/write + cache                   yes         yes
online DPM policies (full registry)        yes         yes
multi-state DPM ladders (presets + user)   yes         yes
ladders under online control (scaled)      yes         yes
heterogeneous fleets (per-disk specs)      yes         yes
per-disk ladders / thresholds (fleets)     yes         yes
fleets + chunked / streaming metrics       yes         yes
observer hooks (``repro.obs``)             yes         yes
slack-aware request scheduling (registry)  yes         yes
array-backed streams (``.times``)          yes         yes
chunked streams (``.iter_chunks()``)       yes         yes
streaming metrics (bounded memory)         yes         API only
arbitrary iterator streams                 no          yes
custom per-request processes               no          yes
=========================================  ==========  ===========

Out-of-core streaming: :func:`simulate_fast_chunked` consumes any
``ChunkedStream`` (see :mod:`repro.workload.chunked` — chunked
generators, ``RequestStream.chunks(n)`` views, or
:class:`~repro.workload.trace.ChunkedTraceStream` readers) one chunk at
a time with full carry state across boundaries: per-disk queue/spin
recursion, ladder rung positions, write placements, the cache-admission
heap and the DPM controller's interval clock all persist, so chunked
runs are bit-identical to materializing the whole stream (the
differential harness's chunked axis asserts this at several chunk
sizes, including pathological ones).  Pair it with
``metrics_mode="streaming"`` to drop the per-request response array in
favor of bounded :class:`~repro.system.metrics.ResponseStats`
accumulators — peak memory then scales with the chunk size, not the
request count.

Multi-state ladders (``StorageConfig(dpm_ladder=...)`` — presets
``two_state``/``nap``/``drpm4`` in :data:`repro.disk.dpm.DPM_LADDERS`,
or any user :class:`~repro.disk.dpm.DpmLadder`) replay through the
per-rung :class:`_LadderBank` recursion; the ``two_state`` preset is
byte-identical to the classic :class:`_DiskBank` path, and the seeded
randomized differential harness in ``tests/differential/`` holds both
engines to 1e-9 agreement across the full config space (disks x streams
x arrival shape x cache x write policy x DPM policy x ladder x fleet).

Heterogeneous fleets (``StorageConfig(fleet=...)`` — the
``mixed_generation`` preset or any :class:`~repro.disk.fleet.Fleet`)
turn every per-disk scalar in the banks into a vector: capacities,
transfer rates, access overheads, spin-up/-down durations, per-state
power draws, idleness thresholds and (when any slot carries one) DPM
ladders are all indexed by disk.  A uniform fleet collapses those
vectors to identical entries, so the arithmetic — and the output — is
byte-identical to the pre-fleet scalar path
(``tests/regression/test_uniform_byte_identity.py`` pins this against
recorded goldens).

Every policy in :data:`repro.system.placement.PLACEMENT_POLICIES` is
engine-agnostic: both kernels feed it the same
:class:`~repro.system.placement.PlacementContext` (spin mask, free bytes,
per-disk dispatched service seconds accumulated in the same per-request
order), so allocation decisions — and hence final file→disk mappings — are
byte-identical across engines; ``tests/experiments/test_engine_smoke.py``
iterates the registry to enforce this.

Execution strategy (fastest applicable path is chosen per run):

1. **grouped** (read-only, no cache): the stream is pre-sorted into
   per-disk NumPy groups and each disk's queue is advanced independently —
   the original fully batched path;
2. **segmented** (writes, no cache): only writes that *allocate* a new
   file couple the disks, so the stream is split at those coupling points
   and the same vectorized per-disk recursion replays each read-only
   segment between them; the allocation itself is resolved scalar against
   the banked per-disk spin state;
3. **coupled** (shared cache): a single globally time-merged pass walks
   arrivals in order, draining a min-heap of pending cache admissions
   (miss completions) between arrivals; the per-disk recursion state is
   identical, only advanced one request at a time;
4. **controlled** (a dynamic ``StorageConfig.dpm_policy``): the stream is
   segmented at control-interval boundaries and each interval replays
   through whichever of the three paths above applies, against a
   :class:`_ControlledBank` holding *per-interval, per-disk* threshold
   vectors.  An idle gap is governed by the threshold in effect at the
   disk's drain instant (the event drive's already-armed timer), so the
   per-gap threshold is looked up from the drain time's interval.  At
   each boundary the interval's telemetry — responses in completion
   order, closed idle gaps per disk, queue depths — is handed to the
   shared :class:`~repro.control.controller.ThresholdController`, which
   returns the next threshold vector; the event engine's control process
   consumes identical telemetry, so every registered DPM policy
   simulates identically (~1e-9) on both engines.

All state-time, energy and response accounting is vectorized afterwards
and truncated at the measurement horizon exactly like the event kernel's
cutoff.  Semantics mirror :class:`~repro.disk.drive.DiskDrive`: drives
start IDLE with the idleness timer armed at t=0, spin-downs are not
abortable (a request arriving mid-transition waits for spin-down +
spin-up), and requests arriving at or after the horizon are censored
(counted as neither arrivals nor completions).  Agreement with the event
kernel is tested to tight tolerances in ``tests/sim/test_fastkernel.py``;
the only differences are ~1 ulp float drift (the event loop accumulates
arrival times as ``now + (t - now)``) and tie-breaking at measure-zero
coincidences (a completion and an arrival at the exact same instant — the
fast kernel admits the completion first).

Select the engine per run via ``StorageConfig(engine="fast")``; the one
scenario class the fast kernel cannot express (streams that are neither
array-backed nor chunked) raises :class:`~repro.errors.ConfigError` — use
the default ``engine="event"`` for those.
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import isinf
from typing import Dict, List, Optional

import numpy as np

from repro.disk.dpm import DpmLadder
from repro.disk.drive import READ, WRITE
from repro.disk.fleet import ResolvedFleet
from repro.disk.power import DiskState, PowerModel
from repro.disk.specs import DiskSpec
from repro.errors import ConfigError, SimulationError
from repro.obs.hooks import active_observer
from repro.system.dispatcher import (
    initial_free_bytes,
    per_disk_capacities,
    validate_free_bytes,
)
from repro.system.metrics import ResponseAccumulator, SimulationResult
from repro.system.placement import (
    PlacementContext,
    WritePlacementPolicy,
    make_placement_policy,
)

__all__ = [
    "fast_unsupported_reason",
    "simulate_fast",
    "simulate_fast_chunked",
]


def fast_unsupported_reason(config, stream) -> Optional[str]:
    """Why ``engine="fast"`` cannot run this scenario (``None`` if it can).

    Since the global-merge pass landed, write streams and shared caches are
    supported; the only remaining requirement is a batchable stream —
    either array-backed (dense ``.times``/``.file_ids``, plus optional
    ``.kinds``) for :func:`simulate_fast`, or chunked
    (``.iter_chunks()`` with a ``duration``) for
    :func:`simulate_fast_chunked`.
    """
    if hasattr(stream, "times") and hasattr(stream, "file_ids"):
        return None
    if hasattr(stream, "iter_chunks") and getattr(stream, "duration", None) is not None:
        return None
    return (
        "the stream is not array-backed (needs .times/.file_ids) "
        "or chunked (needs .iter_chunks()/.duration)"
    )


def _per_disk_specs(spec, num_disks: int) -> tuple:
    """Normalize a spec-or-sequence into one :class:`DiskSpec` per disk."""
    if isinstance(spec, DiskSpec):
        return (spec,) * num_disks
    specs = tuple(spec)
    if len(specs) != num_disks:
        raise ConfigError(
            f"got {len(specs)} disk specs for a {num_disks}-disk pool"
        )
    return specs


def _per_disk_ladders(ladder, num_disks: int) -> tuple:
    """Normalize a ladder-or-sequence into one ladder per disk."""
    if isinstance(ladder, DpmLadder):
        return (ladder,) * num_disks
    ladders = tuple(ladder)
    if len(ladders) != num_disks:
        raise ConfigError(
            f"got {len(ladders)} DPM ladders for a {num_disks}-disk pool"
        )
    return ladders


def _per_disk_floats(value, num_disks: int) -> List[float]:
    """Normalize a scalar-or-vector into one float per disk."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return [float(arr)] * num_disks
    if arr.shape != (num_disks,):
        raise ConfigError(
            f"per-disk vector has shape {arr.shape}, expected ({num_disks},)"
        )
    return [float(v) for v in arr]


class _DiskBank:
    """Scalar per-disk queue/power state with carry-in, shared by all paths.

    Holds exactly the state the event kernel's ``DiskDrive`` evolves — the
    time each disk next falls idle plus spin-transition accounting — in
    plain Python lists, so single-request advances at coupling points stay
    cheap while :meth:`serve_batch` replays a whole per-disk FIFO segment
    with hoisted locals.

    Heterogeneous fleets: every spec-derived constant (spin-down/up times,
    access overhead, transfer rate) and the idleness threshold are held as
    one value *per disk*.  ``spec``/``threshold`` accept a scalar (tiled
    across the pool — a uniform fleet, bit-identical to the historical
    scalar recursion) or a per-disk sequence/vector.
    """

    __slots__ = (
        "avail", "sd_t", "su_t", "sb_t", "n_up", "n_down", "load",
        "th", "no_spindown", "D", "U", "oh", "rate", "oh_a", "rate_a",
        "ap", "cap", "T", "pt", "pv",
    )

    def __init__(
        self, num_disks: int, threshold, spec, horizon: float
    ) -> None:
        specs = _per_disk_specs(spec, num_disks)
        self.avail = [0.0] * num_disks
        self.sd_t = [0.0] * num_disks
        self.su_t = [0.0] * num_disks
        self.sb_t = [0.0] * num_disks
        self.n_up = [0] * num_disks
        self.n_down = [0] * num_disks
        # Cumulative dispatched service seconds per disk, accumulated one
        # request at a time (same order as the event dispatcher's ledger,
        # so load-comparing placement policies see bit-equal values).
        self.load = [0.0] * num_disks
        # Same-instant state snapshot for the placement policy's spin view:
        # ``pv[d]`` is disk ``d``'s ``avail`` as of the *start* of instant
        # ``pt[d]`` (the arrival time of its most recent serve).  The event
        # kernel's drive processes do not run between same-instant
        # submissions — the dispatcher submits a whole release batch in one
        # resumption — so a placement at time t must see the spin states as
        # they stood when the instant began, not mid-batch.
        self.pt = [float("-inf")] * num_disks
        self.pv = [0.0] * num_disks
        self.th = _per_disk_floats(threshold, num_disks)
        self.no_spindown = all(isinf(t) for t in self.th)
        self.D = [s.spindown_time for s in specs]
        self.U = [s.spinup_time for s in specs]
        self.oh = [s.access_overhead for s in specs]
        self.rate = [s.transfer_rate for s in specs]
        self.oh_a = np.asarray(self.oh, dtype=float)
        self.rate_a = np.asarray(self.rate, dtype=float)
        self.ap = np.array([s.active_power for s in specs], dtype=float)
        self.cap = None  # per-disk usable bytes, set by _simulate_chunks
        self.T = horizon

    def serve(self, d: int, t: float, tr: float) -> float:
        """Queue one request on disk ``d`` arriving at ``t``; returns the
        service start (the event kernel's SEEK entry time)."""
        a = self.avail[d]
        if t != self.pt[d]:
            self.pt[d] = t
            self.pv[d] = a
        if t > a:
            # gap > inf is never true, so an inf-threshold disk never
            # spins down — no separate no_spindown guard needed.
            if t - a > self.th[d]:
                # Idleness timer expired at a+th: spin down (not abortable),
                # sleep, then spin up on this arrival.
                sd = a + self.th[d]
                sd_end = sd + self.D[d]
                self.n_down[d] += 1
                self.sd_t[d] += min(sd_end, self.T) - sd
                if t >= sd_end:
                    self.sb_t[d] += t - sd_end
                    su = t
                else:
                    su = sd_end
                if su < self.T:
                    self.n_up[d] += 1
                    self.su_t[d] += min(su + self.U[d], self.T) - su
                s = su + self.U[d]
            else:
                s = t
        else:
            s = a
        self.avail[d] = s + self.oh[d] + tr
        self.load[d] += self.oh[d] + tr
        return s

    def serve_batch(self, d: int, ts: list, trs: list) -> List[float]:
        """Advance disk ``d`` through a FIFO run of requests; returns the
        service starts.  Identical recursion to :meth:`serve`, with the
        per-disk state hoisted into locals for the long read-only runs."""
        out: List[float] = []
        append = out.append
        a = self.avail[d]
        oh = self.oh[d]
        ld = self.load[d]
        th = self.th[d]
        if isinf(th):
            # Pure Lindley recursion: serve at max(arrival, free time).
            for t, tr in zip(ts, trs):
                s = t if t > a else a
                append(s)
                a = s + oh + tr
                ld += oh + tr
        else:
            D = self.D[d]
            U = self.U[d]
            T = self.T
            sd_t = self.sd_t[d]
            su_t = self.su_t[d]
            sb_t = self.sb_t[d]
            n_up = self.n_up[d]
            n_down = self.n_down[d]
            pt_d = self.pt[d]
            pv_d = self.pv[d]
            for t, tr in zip(ts, trs):
                if t != pt_d:
                    pt_d = t
                    pv_d = a
                if t > a:
                    if t - a > th:
                        sd = a + th
                        sd_end = sd + D
                        n_down += 1
                        sd_t += min(sd_end, T) - sd
                        if t >= sd_end:
                            sb_t += t - sd_end
                            su = t
                        else:
                            su = sd_end
                        if su < T:
                            n_up += 1
                            su_t += min(su + U, T) - su
                        s = su + U
                    else:
                        s = t
                else:
                    s = a
                append(s)
                a = s + oh + tr
                ld += oh + tr
            self.sd_t[d] = sd_t
            self.su_t[d] = su_t
            self.sb_t[d] = sb_t
            self.n_up[d] = n_up
            self.n_down[d] = n_down
            self.pt[d] = pt_d
            self.pv[d] = pv_d
        self.avail[d] = a
        self.load[d] = ld
        return out

    def _avail_at_instant_start(self, t: float) -> List[float]:
        """Per-disk ``avail`` as the event kernel's placement context would
        see it at instant ``t``: serves that happened *at* ``t`` itself are
        rolled back to the snapshot taken when the instant began (the event
        engine's drive processes have not run yet mid-batch)."""
        pt = self.pt
        pv = self.pv
        return [
            pv[d] if pt[d] == t else a for d, a in enumerate(self.avail)
        ]

    def spinning_mask(self, t: float) -> np.ndarray:
        """Per-disk "not STANDBY at time ``t``" — the §1.1 write policy's
        view of the pool.

        Mirrors :attr:`~repro.disk.power.DiskState.spinning`: SEEK/ACTIVE/
        IDLE/SPINUP *and SPINDOWN* all count as spinning.  A drained disk is
        IDLE until ``avail + th``, SPINDOWN until ``avail + th + D``, and
        STANDBY after; a disk still working (``t < avail``) is never in
        STANDBY because a pending request always rides the spin transitions
        straight back up.  Same-instant earlier serves are excluded via the
        instant-start snapshot: a disk woken at exactly ``t`` still reads
        STANDBY, like the event kernel's not-yet-resumed drive process.
        """
        avail = np.asarray(self._avail_at_instant_start(t))
        if self.no_spindown:
            return np.ones(avail.shape, dtype=bool)
        # inf-threshold disks get avail + inf == inf: always spinning.
        return t < avail + np.asarray(self.th) + np.asarray(self.D)

    def tail_arrays(self):
        """Spin/transition accounting as arrays, with trailing idleness.

        Called once at the horizon: every disk (including ones that never
        served a request) spins down once its post-drain idle gap exceeds
        the threshold, provided the timer fires before the horizon.
        Returns ``(spindown_time, spinup_time, standby_time, spinups,
        spindowns)`` per disk.
        """
        avail = np.asarray(self.avail, dtype=float)
        spindown_time = np.asarray(self.sd_t, dtype=float)
        spinup_time = np.asarray(self.su_t, dtype=float)
        standby_time = np.asarray(self.sb_t, dtype=float)
        spinups = np.asarray(self.n_up, dtype=np.int64)
        spindowns = np.asarray(self.n_down, dtype=np.int64)
        if not self.no_spindown:
            # Per-disk vectors; an inf-threshold disk's sd is inf, so its
            # tail mask is False and every where() contribution is 0.
            sd = avail + np.asarray(self.th)
            tail = sd < self.T
            spindowns = spindowns + tail
            sd_end = sd + np.asarray(self.D)
            spindown_time = spindown_time + np.where(
                tail, np.minimum(sd_end, self.T) - sd, 0.0
            )
            standby_time = standby_time + np.where(
                tail, np.clip(self.T - sd_end, 0.0, None), 0.0
            )
        return spindown_time, spinup_time, standby_time, spinups, spindowns


class _ControlledBank(_DiskBank):
    """Per-interval, per-disk threshold variant of :class:`_DiskBank`.

    Used by the controlled execution path (dynamic DPM policies).  The
    threshold governing an idle gap is the one in effect at the disk's
    *drain* instant — resolved by looking the drain time's control
    interval up in ``_th_rows`` (the history of applied threshold
    vectors).  By the time a gap's closing arrival is processed, its
    drain interval has necessarily been reached, so the lookup is always
    resolvable (FIFO per disk; arrivals are processed in time order).

    Also logs what the fixed-path bank does not need: per-disk closed
    idle gaps ``(gap, threshold_at_drain)`` for the control telemetry,
    and every spin-transition episode as ``(disk, start, end)`` spans so
    the per-interval power trace can be reconstructed after the run.
    An infinite per-disk threshold needs no special casing: ``gap > inf``
    is never true, so such disks simply never spin down.
    """

    __slots__ = (
        "ci", "_th_rows", "k", "gap_log", "sd_spans", "su_spans", "sb_spans",
    )

    def __init__(
        self,
        num_disks: int,
        init_thresholds: np.ndarray,
        spec,
        horizon: float,
        interval: float,
    ) -> None:
        super().__init__(num_disks, 0.0, spec, horizon)
        # Static thresholds unused in controlled mode (gaps resolve
        # against the applied-vector history instead).
        self.th = [float("nan")] * num_disks
        self.no_spindown = False
        self.ci = float(interval)
        # One row per control interval; plain float lists because the hot
        # per-gap lookup (a python list index) beats NumPy scalar
        # extraction by a wide margin.
        self._th_rows: List[List[float]] = [
            np.asarray(init_thresholds, dtype=float).tolist()
        ]
        self.k = 0
        self.gap_log: List[List[tuple]] = [[] for _ in range(num_disks)]
        self.sd_spans: List[tuple] = []
        self.su_spans: List[tuple] = []
        self.sb_spans: List[tuple] = []

    def push_thresholds(self, thresholds: np.ndarray) -> None:
        """Apply the vector decided at the boundary entering interval k+1."""
        self._th_rows.append(np.asarray(thresholds, dtype=float).tolist())
        self.k += 1

    def _th_at(self, drain: float, d: int) -> float:
        """Threshold governing a gap that began at ``drain`` on disk ``d``."""
        idx = int(drain / self.ci)
        if idx > self.k:
            idx = self.k
        return self._th_rows[idx][d]

    def serve(self, d: int, t: float, tr: float) -> float:
        """:meth:`_DiskBank.serve` with the per-gap threshold lookup,
        gap logging and transition-span logging."""
        a = self.avail[d]
        if t != self.pt[d]:
            self.pt[d] = t
            self.pv[d] = a
        if t > a:
            th = self._th_at(a, d)
            self.gap_log[d].append((t - a, th))
            if t - a > th:
                sd = a + th
                sd_end = sd + self.D[d]
                self.n_down[d] += 1
                self.sd_t[d] += min(sd_end, self.T) - sd
                self.sd_spans.append((d, sd, sd_end))
                if t >= sd_end:
                    self.sb_t[d] += t - sd_end
                    self.sb_spans.append((d, sd_end, t))
                    su = t
                else:
                    su = sd_end
                if su < self.T:
                    self.n_up[d] += 1
                    self.su_t[d] += min(su + self.U[d], self.T) - su
                    self.su_spans.append((d, su, su + self.U[d]))
                s = su + self.U[d]
            else:
                s = t
        else:
            s = a
        self.avail[d] = s + self.oh[d] + tr
        self.load[d] += self.oh[d] + tr
        return s

    def serve_batch(self, d: int, ts: list, trs: list) -> List[float]:
        """Hoisted-locals FIFO replay with the per-gap threshold lookup.

        Identical recursion to :meth:`serve`; only the per-disk state (and
        the threshold-history rows) are lifted into locals for the long
        read-only runs between coupling points.
        """
        out: List[float] = []
        append = out.append
        a = self.avail[d]
        oh = self.oh[d]
        ld = self.load[d]
        ci = self.ci
        th_rows = self._th_rows
        k = self.k
        D = self.D[d]
        U = self.U[d]
        T = self.T
        sd_t = self.sd_t[d]
        su_t = self.su_t[d]
        sb_t = self.sb_t[d]
        n_up = self.n_up[d]
        n_down = self.n_down[d]
        gap_append = self.gap_log[d].append
        sd_spans = self.sd_spans
        su_spans = self.su_spans
        sb_spans = self.sb_spans
        pt_d = self.pt[d]
        pv_d = self.pv[d]
        for t, tr in zip(ts, trs):
            if t != pt_d:
                pt_d = t
                pv_d = a
            if t > a:
                idx = int(a / ci)
                th = th_rows[idx if idx <= k else k][d]
                gap_append((t - a, th))
                if t - a > th:
                    sd = a + th
                    sd_end = sd + D
                    n_down += 1
                    sd_t += min(sd_end, T) - sd
                    sd_spans.append((d, sd, sd_end))
                    if t >= sd_end:
                        sb_t += t - sd_end
                        sb_spans.append((d, sd_end, t))
                        su = t
                    else:
                        su = sd_end
                    if su < T:
                        n_up += 1
                        su_t += min(su + U, T) - su
                        su_spans.append((d, su, su + U))
                    s = su + U
                else:
                    s = t
            else:
                s = a
            append(s)
            a = s + oh + tr
            ld += oh + tr
        self.sd_t[d] = sd_t
        self.su_t[d] = su_t
        self.sb_t[d] = sb_t
        self.n_up[d] = n_up
        self.n_down[d] = n_down
        self.pt[d] = pt_d
        self.pv[d] = pv_d
        self.avail[d] = a
        self.load[d] = ld
        return out

    def spinning_mask(self, t: float) -> np.ndarray:
        out = np.empty(len(self.avail), dtype=bool)
        for d, a in enumerate(self._avail_at_instant_start(t)):
            # inf threshold => a + inf == inf => always spinning.
            out[d] = t < a + self._th_at(a, d) + self.D[d]
        return out

    def tail_arrays(self):
        spindown_time = np.asarray(self.sd_t, dtype=float)
        spinup_time = np.asarray(self.su_t, dtype=float)
        standby_time = np.asarray(self.sb_t, dtype=float)
        spinups = np.asarray(self.n_up, dtype=np.int64)
        spindowns = np.asarray(self.n_down, dtype=np.int64).copy()
        T = self.T
        for d, a in enumerate(self.avail):
            sd = a + self._th_at(a, d)
            if sd < T:
                spindowns[d] += 1
                sd_end = sd + self.D[d]
                spindown_time[d] += min(sd_end, T) - sd
                self.sd_spans.append((d, sd, sd_end))
                if sd_end < T:
                    standby_time[d] += T - sd_end
                    self.sb_spans.append((d, sd_end, T))
        return spindown_time, spinup_time, standby_time, spinups, spindowns


class _ObservedDiskBank(_DiskBank):
    """:class:`_DiskBank` plus spin-transition span logging for observers.

    Selected (once, at run start) when a fixed-threshold run carries an
    enabled :class:`~repro.obs.hooks.RunObserver`, so the unobserved hot
    path stays untouched.  The recursion and every accounting update are
    copied verbatim from the base class — the only additions are the
    ``(disk, start, end)`` span appends the controlled bank already
    performs; the differential harness's observer axis asserts observed
    and unobserved runs are bit-identical.
    """

    __slots__ = ("sd_spans", "su_spans", "sb_spans")

    def __init__(
        self, num_disks: int, threshold, spec, horizon: float
    ) -> None:
        super().__init__(num_disks, threshold, spec, horizon)
        self.sd_spans: List[tuple] = []
        self.su_spans: List[tuple] = []
        self.sb_spans: List[tuple] = []

    def serve(self, d: int, t: float, tr: float) -> float:
        a = self.avail[d]
        if t != self.pt[d]:
            self.pt[d] = t
            self.pv[d] = a
        if t > a:
            if t - a > self.th[d]:
                sd = a + self.th[d]
                sd_end = sd + self.D[d]
                self.n_down[d] += 1
                self.sd_t[d] += min(sd_end, self.T) - sd
                self.sd_spans.append((d, sd, sd_end))
                if t >= sd_end:
                    self.sb_t[d] += t - sd_end
                    self.sb_spans.append((d, sd_end, t))
                    su = t
                else:
                    su = sd_end
                if su < self.T:
                    self.n_up[d] += 1
                    self.su_t[d] += min(su + self.U[d], self.T) - su
                    self.su_spans.append((d, su, su + self.U[d]))
                s = su + self.U[d]
            else:
                s = t
        else:
            s = a
        self.avail[d] = s + self.oh[d] + tr
        self.load[d] += self.oh[d] + tr
        return s

    def serve_batch(self, d: int, ts: list, trs: list) -> List[float]:
        out: List[float] = []
        append = out.append
        a = self.avail[d]
        oh = self.oh[d]
        ld = self.load[d]
        th = self.th[d]
        if isinf(th):
            for t, tr in zip(ts, trs):
                s = t if t > a else a
                append(s)
                a = s + oh + tr
                ld += oh + tr
        else:
            D = self.D[d]
            U = self.U[d]
            T = self.T
            sd_t = self.sd_t[d]
            su_t = self.su_t[d]
            sb_t = self.sb_t[d]
            n_up = self.n_up[d]
            n_down = self.n_down[d]
            sd_spans = self.sd_spans
            su_spans = self.su_spans
            sb_spans = self.sb_spans
            pt_d = self.pt[d]
            pv_d = self.pv[d]
            for t, tr in zip(ts, trs):
                if t != pt_d:
                    pt_d = t
                    pv_d = a
                if t > a:
                    if t - a > th:
                        sd = a + th
                        sd_end = sd + D
                        n_down += 1
                        sd_t += min(sd_end, T) - sd
                        sd_spans.append((d, sd, sd_end))
                        if t >= sd_end:
                            sb_t += t - sd_end
                            sb_spans.append((d, sd_end, t))
                            su = t
                        else:
                            su = sd_end
                        if su < T:
                            n_up += 1
                            su_t += min(su + U, T) - su
                            su_spans.append((d, su, su + U))
                        s = su + U
                    else:
                        s = t
                else:
                    s = a
                append(s)
                a = s + oh + tr
                ld += oh + tr
            self.sd_t[d] = sd_t
            self.su_t[d] = su_t
            self.sb_t[d] = sb_t
            self.n_up[d] = n_up
            self.n_down[d] = n_down
            self.pt[d] = pt_d
            self.pv[d] = pv_d
        self.avail[d] = a
        self.load[d] = ld
        return out

    def tail_arrays(self):
        # Log the trailing spin-down/standby episodes the vectorized base
        # pass is about to bill, then let it do the (unchanged) math.
        if not self.no_spindown:
            T = self.T
            for d, a in enumerate(self.avail):
                sd = a + self.th[d]
                if sd < T:
                    sd_end = sd + self.D[d]
                    self.sd_spans.append((d, sd, sd_end))
                    if sd_end < T:
                        self.sb_spans.append((d, sd_end, T))
        return super().tail_arrays()


class _LadderBank:
    """Multi-rung generalization of :class:`_DiskBank` for DPM ladders.

    Evolves exactly the state the event kernel's
    :class:`~repro.disk.multistate.MultiStateDiskDrive` evolves: per disk,
    the time it next falls idle plus per-rung park/descent/wake
    residencies.  An idle gap walks the ladder's (threshold-scaled)
    descent schedule: fully traversed rungs bill their descent and park
    times, the rung occupied when the gap ends bills a (possibly
    horizon-clipped) descent plus park-until-arrival, and the wake is
    billed at the rung's wake power for its configured wake time.  With
    the ``two_state`` ladder the recursion's arithmetic is term-for-term
    the classic :class:`_DiskBank` spin-down/spin-up recursion, so that
    ladder simulates byte-identically to the pre-ladder kernel (the
    regression tests in ``tests/sim/test_ladder_fastkernel.py`` assert
    bit-equal response times and energies).

    Heterogeneous fleets: ``ladder``/``spec``/``threshold`` accept
    per-disk sequences — every disk descends *its own* (threshold-scaled)
    schedule, and the residencies are kept disk-major (``park_t[d][i]``)
    because rung counts may differ across the pool.  Scalars tile across
    the pool, reproducing the historical uniform recursion bit-for-bit.
    """

    def __init__(
        self, num_disks: int, threshold, ladder, spec,
        horizon: float,
    ) -> None:
        specs = _per_disk_specs(spec, num_disks)
        ladders = _per_disk_ladders(ladder, num_disks)
        self.avail = [0.0] * num_disks
        self.load = [0.0] * num_disks
        # Instant-start avail snapshot (see _DiskBank.pt/pv): placements at
        # time t must not see disks woken by same-instant earlier serves.
        self.pt = [float("-inf")] * num_disks
        self.pv = [0.0] * num_disks
        self.n_up = [0] * num_disks
        self.n_down = [0] * num_disks
        self.oh = [s.access_overhead for s in specs]
        self.rate = [s.transfer_rate for s in specs]
        self.oh_a = np.asarray(self.oh, dtype=float)
        self.rate_a = np.asarray(self.rate, dtype=float)
        self.ap = np.array([s.active_power for s in specs], dtype=float)
        self.cap = None  # per-disk usable bytes, set by _simulate_chunks
        self.T = horizon
        self.ladders = ladders
        self.ladder = ladders[0]
        self.R = [len(l.rungs) for l in ladders]
        self.maxR = max(self.R)
        self.dn = [[r.down_time for r in l.rungs] for l in ladders]
        self.wk = [[r.wake_time for r in l.rungs] for l in ladders]
        # Per-disk per-rung residencies (disk-major: rung counts may
        # differ across a mixed fleet); rung 0's park time is computed as
        # the horizon residual (like the classic bank's idle time).
        self.park_t = [[0.0] * self.R[d] for d in range(num_disks)]
        self.down_t = [[0.0] * self.R[d] for d in range(num_disks)]
        self.wake_t = [[0.0] * self.R[d] for d in range(num_disks)]
        self.th = _per_disk_floats(threshold, num_disks)
        self.entries = [
            ladders[d].scaled_entries(self.th[d]) for d in range(num_disks)
        ]
        self.no_descend = [
            self.R[d] == 1 or isinf(self.entries[d][1])
            for d in range(num_disks)
        ]

    def _descend(self, d: int, a: float, t: float, entries) -> float:
        """Walk the idle gap ``[a, t)`` down disk ``d``'s ladder; returns
        the wake completion (service start) and bills every residency
        touched."""
        g = t - a
        T = self.T
        dn = self.dn[d]
        R = self.R[d]
        down_t = self.down_t[d]
        park_t = self.park_t[d]
        i = 1
        while i + 1 < R and g > entries[i + 1]:
            i += 1
        for j in range(1, i):
            # Rungs fully traversed before the arrival: full descent plus
            # park until the next rung's descent starts (all before t < T).
            ds = a + entries[j]
            de = ds + dn[j]
            down_t[j] += de - ds
            pe = a + entries[j + 1]
            if pe > de:
                park_t[j] += pe - de
        ds = a + entries[i]
        de = ds + dn[i]
        self.n_down[d] += i
        down_t[i] += min(de, T) - ds
        if t >= de:
            park_t[i] += t - de
            ws = t
        else:
            # Arrived mid-descent: the transition is not abortable.
            ws = de
        w = self.wk[d][i]
        if ws < T:
            self.n_up[d] += 1
            self.wake_t[d][i] += min(ws + w, T) - ws
        return ws + w

    def serve(self, d: int, t: float, tr: float) -> float:
        """Queue one request on disk ``d`` arriving at ``t``; returns the
        service start (the event kernel's seek entry time)."""
        a = self.avail[d]
        if t != self.pt[d]:
            self.pt[d] = t
            self.pv[d] = a
        if t > a:
            if self.no_descend[d] or t - a <= self.entries[d][1]:
                s = t
            else:
                s = self._descend(d, a, t, self.entries[d])
        else:
            s = a
        self.avail[d] = s + self.oh[d] + tr
        self.load[d] += self.oh[d] + tr
        return s

    def serve_batch(self, d: int, ts: list, trs: list) -> List[float]:
        """FIFO replay of one disk's run (the gap walk dominates only on
        sparse streams, where request counts are small anyway)."""
        serve = self.serve
        return [serve(d, t, tr) for t, tr in zip(ts, trs)]

    def spinning_mask(self, t: float) -> np.ndarray:
        """Per-disk "not parked in the deepest rung at ``t``" — descents,
        intermediate rungs and wakes all count as spinning, exactly like
        the classic bank's SPINDOWN-inclusive mask (and like it, computed
        from the instant-start snapshot so same-instant wakes stay
        invisible)."""
        pt = self.pt
        pv = self.pv
        out = np.empty(len(self.avail), dtype=bool)
        for d, a in enumerate(self.avail):
            if pt[d] == t:
                a = pv[d]
            if self.no_descend[d]:
                out[d] = True
            else:
                out[d] = t < (a + self.entries[d][-1]) + self.dn[d][-1]
        return out

    def _tail_one(self, d: int, a: float, entries) -> None:
        """Fold one disk's post-drain trailing idleness (descents started
        before the horizon, parks clipped at it) into the residencies."""
        T = self.T
        R = self.R[d]
        dn = self.dn[d]
        down_t = self.down_t[d]
        park_t = self.park_t[d]
        for i in range(1, R):
            ds = a + entries[i]
            if ds >= T:
                break
            de = ds + dn[i]
            self.n_down[d] += 1
            down_t[i] += min(de, T) - ds
            pe = (a + entries[i + 1]) if i + 1 < R else T
            if pe > T:
                pe = T
            if pe > de:
                park_t[i] += pe - de

    def apply_tail(self):
        """Trailing-idleness pass at the horizon; returns per-disk
        ``(spinups, spindowns)`` arrays."""
        for d, a in enumerate(self.avail):
            if not self.no_descend[d]:
                self._tail_one(d, a, self.entries[d])
        return (
            np.asarray(self.n_up, dtype=np.int64),
            np.asarray(self.n_down, dtype=np.int64),
        )


class _ControlledLadderBank(_LadderBank):
    """Per-interval, per-disk threshold variant of :class:`_LadderBank`.

    The controller's scalar per-disk threshold (resolved at each gap's
    drain instant from the applied-vector history, exactly like
    :class:`_ControlledBank`) scales the whole descent schedule via
    :meth:`~repro.disk.dpm.DpmLadder.scaled_entries` — so
    ``adaptive_timeout``/``slo_feedback`` steer ladder descent with the
    same telemetry contract as the two-state drives.  Also logs closed
    idle gaps for the telemetry feed and every park/descent/wake episode
    as ``(disk, start, end)`` spans for the per-interval power trace.
    """

    def __init__(
        self,
        num_disks: int,
        init_thresholds: np.ndarray,
        ladder,
        spec,
        horizon: float,
        interval: float,
    ) -> None:
        super().__init__(num_disks, 0.0, ladder, spec, horizon)
        self.entries = None  # per-gap schedules only; never a shared one
        self.no_descend = [False] * num_disks
        self.ci = float(interval)
        self._th_rows: List[List[float]] = [
            np.asarray(init_thresholds, dtype=float).tolist()
        ]
        self.k = 0
        # Per-disk scaled-entry caches (mixed fleets scale different
        # ladders with the same controller threshold).
        self._entry_cache: List[dict] = [{} for _ in range(num_disks)]
        self.gap_log: List[List[tuple]] = [[] for _ in range(num_disks)]
        # Span logs are rung-index keyed across the whole pool (entries
        # carry the disk id); maxR covers the deepest ladder in the mix.
        self.park_spans: List[List[tuple]] = [[] for _ in range(self.maxR)]
        self.down_spans: List[List[tuple]] = [[] for _ in range(self.maxR)]
        self.wake_spans: List[List[tuple]] = [[] for _ in range(self.maxR)]

    def push_thresholds(self, thresholds: np.ndarray) -> None:
        """Apply the vector decided at the boundary entering interval k+1."""
        self._th_rows.append(np.asarray(thresholds, dtype=float).tolist())
        self.k += 1

    def _th_at(self, drain: float, d: int) -> float:
        """Threshold governing a gap that began at ``drain`` on disk ``d``."""
        idx = int(drain / self.ci)
        if idx > self.k:
            idx = self.k
        return self._th_rows[idx][d]

    def _entries_for(self, d: int, th: float):
        cache = self._entry_cache[d]
        entries = cache.get(th)
        if entries is None:
            entries = self.ladders[d].scaled_entries(th)
            cache[th] = entries
        return entries

    def _descend_logged(self, d: int, a: float, t: float, entries) -> float:
        """:meth:`_LadderBank._descend` plus span logging for the trace."""
        g = t - a
        T = self.T
        dn = self.dn[d]
        R = self.R[d]
        down_t = self.down_t[d]
        park_t = self.park_t[d]
        i = 1
        while i + 1 < R and g > entries[i + 1]:
            i += 1
        for j in range(1, i):
            ds = a + entries[j]
            de = ds + dn[j]
            down_t[j] += de - ds
            self.down_spans[j].append((d, ds, de))
            pe = a + entries[j + 1]
            if pe > de:
                park_t[j] += pe - de
                self.park_spans[j].append((d, de, pe))
        ds = a + entries[i]
        de = ds + dn[i]
        self.n_down[d] += i
        down_t[i] += min(de, T) - ds
        self.down_spans[i].append((d, ds, de))
        if t >= de:
            park_t[i] += t - de
            self.park_spans[i].append((d, de, t))
            ws = t
        else:
            ws = de
        w = self.wk[d][i]
        if ws < T:
            self.n_up[d] += 1
            self.wake_t[d][i] += min(ws + w, T) - ws
            self.wake_spans[i].append((d, ws, ws + w))
        return ws + w

    def serve(self, d: int, t: float, tr: float) -> float:
        a = self.avail[d]
        if t != self.pt[d]:
            self.pt[d] = t
            self.pv[d] = a
        if t > a:
            th = self._th_at(a, d)
            self.gap_log[d].append((t - a, th))
            entries = self._entries_for(d, th)
            if self.R[d] == 1 or isinf(entries[1]) or t - a <= entries[1]:
                s = t
            else:
                s = self._descend_logged(d, a, t, entries)
        else:
            s = a
        self.avail[d] = s + self.oh[d] + tr
        self.load[d] += self.oh[d] + tr
        return s

    def spinning_mask(self, t: float) -> np.ndarray:
        pt = self.pt
        pv = self.pv
        out = np.empty(len(self.avail), dtype=bool)
        for d, a in enumerate(self.avail):
            if pt[d] == t:
                a = pv[d]
            if self.R[d] == 1:
                out[d] = True
                continue
            entries = self._entries_for(d, self._th_at(a, d))
            # inf threshold => a + inf == inf => always spinning.
            out[d] = t < (a + entries[-1]) + self.dn[d][-1]
        return out

    def _tail_one(self, d: int, a: float, entries) -> None:
        """Trailing idleness with span logging (parks clipped at T)."""
        T = self.T
        R = self.R[d]
        dn = self.dn[d]
        down_t = self.down_t[d]
        park_t = self.park_t[d]
        for i in range(1, R):
            ds = a + entries[i]
            if ds >= T:
                break
            de = ds + dn[i]
            self.n_down[d] += 1
            down_t[i] += min(de, T) - ds
            self.down_spans[i].append((d, ds, de))
            pe = (a + entries[i + 1]) if i + 1 < R else T
            if pe > T:
                pe = T
            if pe > de:
                park_t[i] += pe - de
                self.park_spans[i].append((d, de, pe))

    def apply_tail(self):
        for d, a in enumerate(self.avail):
            self._tail_one(d, a, self._entries_for(d, self._th_at(a, d)))
        return (
            np.asarray(self.n_up, dtype=np.int64),
            np.asarray(self.n_down, dtype=np.int64),
        )


class _ObservedLadderBank(_LadderBank):
    """:class:`_LadderBank` plus rung-transition span logging for observers.

    The controlled ladder bank's logged walk is term-for-term the base
    recursion plus span appends, and the base class dispatches its gap
    walks through ``self._descend`` / ``self._tail_one`` — so rebinding
    those to the logged variants (plus allocating the span logs) is the
    whole override.  Selected once at run start when a fixed-threshold
    ladder run carries an enabled observer.
    """

    _descend = _ControlledLadderBank._descend_logged
    _tail_one = _ControlledLadderBank._tail_one

    def __init__(
        self, num_disks: int, threshold, ladder, spec, horizon: float
    ) -> None:
        super().__init__(num_disks, threshold, ladder, spec, horizon)
        self.park_spans: List[List[tuple]] = [[] for _ in range(self.maxR)]
        self.down_spans: List[List[tuple]] = [[] for _ in range(self.maxR)]
        self.wake_spans: List[List[tuple]] = [[] for _ in range(self.maxR)]


def _allocate_for_write(
    bank: _DiskBank,
    policy: WritePlacementPolicy,
    free: np.ndarray,
    size: float,
    t: float,
) -> int:
    """Placement for a new file at time ``t``: the shared registry policy
    decides against the banked spin state / free bytes / dispatched load
    (plus the per-disk capacity and power-rank views a mixed fleet adds),
    so both engines pick byte-identical disks."""
    ctx = PlacementContext(
        time=t,
        spinning=bank.spinning_mask(t),
        free=free,
        load=np.asarray(bank.load, dtype=float),
        capacity=bank.cap,
        active_power=bank.ap,
    )
    return policy.choose(ctx, size)


def _serve_segment(
    bank: _DiskBank,
    d_seg: np.ndarray,
    t_seg: np.ndarray,
    tr_seg: np.ndarray,
    starts_out: np.ndarray,
) -> None:
    """Replay one read-only segment: stable per-disk grouping + batch FIFO.

    ``d_seg`` must be fully resolved (no ``-1``; callers validate); times
    are globally non-decreasing, so a stable sort on the disk index
    preserves each disk's arrival order.  ``starts_out`` (a view onto the
    segment's slice of the global starts array) is filled in place.
    """
    n = int(d_seg.size)
    if not n:
        return
    order = np.argsort(d_seg, kind="stable")
    d_s = d_seg[order]
    t_s = t_seg[order]
    tr_s = tr_seg[order]
    cuts = np.flatnonzero(np.diff(d_s)) + 1
    group_lo = np.concatenate(([0], cuts))
    group_hi = np.concatenate((cuts, [n]))
    seg_starts = np.empty(n, dtype=float)
    for lo, hi in zip(group_lo.tolist(), group_hi.tolist()):
        seg_starts[lo:hi] = bank.serve_batch(
            int(d_s[lo]), t_s[lo:hi].tolist(), tr_s[lo:hi].tolist()
        )
    starts_out[order] = seg_starts


def _serve_segmented(
    bank: _DiskBank,
    policy: WritePlacementPolicy,
    mapping: np.ndarray,
    free: np.ndarray,
    sizes: np.ndarray,
    fid: np.ndarray,
    t_all: np.ndarray,
    sz_all: np.ndarray,
    is_write: np.ndarray,
    starts: np.ndarray,
    d_req: np.ndarray,
    obs=None,
) -> None:
    """Mixed read/write stream without a cache.

    Only the *first* touch of an initially-unmapped file couples the disks
    (it runs the placement policy against global spin/load state);
    everything between those coupling points is replayed through the
    vectorized per-disk recursion with carried-in state.  Transfer times
    are resolved here, once the serving disk is known — per-disk rates on
    a mixed fleet make them a property of the (request, disk) pair.
    """
    rate_a = bank.rate_a
    unmapped = np.flatnonzero(mapping[fid] < 0)
    if unmapped.size:
        _, first = np.unique(fid[unmapped], return_index=True)
        boundaries = np.sort(unmapped[first])
    else:
        boundaries = np.empty(0, dtype=np.int64)

    prev = 0
    for b in boundaries.tolist():
        if b > prev:
            seg = slice(prev, b)
            d_seg = mapping[fid[seg]]
            bad = np.flatnonzero(d_seg < 0)
            if bad.size:
                raise SimulationError(
                    f"read of unallocated file {int(fid[prev + bad[0]])}; "
                    "allocate it first"
                )
            _serve_segment(
                bank, d_seg, t_all[seg], sz_all[seg] / rate_a[d_seg],
                starts[seg],
            )
            d_req[seg] = d_seg
        f = int(fid[b])
        if not is_write[b]:
            raise SimulationError(
                f"read of unallocated file {f}; allocate it first"
            )
        t = float(t_all[b])
        size = float(sizes[f])
        d = _allocate_for_write(bank, policy, free, size, t)
        if obs is not None:
            obs.on_placement(t, f, d)
        mapping[f] = d
        free[d] -= size
        starts[b] = bank.serve(d, t, size / bank.rate[d])
        d_req[b] = d
        prev = b + 1

    tail = slice(prev, int(t_all.size))
    d_tail = mapping[fid[tail]]
    bad = np.flatnonzero(d_tail < 0)
    if bad.size:
        raise SimulationError(
            f"read of unallocated file {int(fid[prev + bad[0]])}; "
            "allocate it first"
        )
    _serve_segment(
        bank, d_tail, t_all[tail], sz_all[tail] / rate_a[d_tail], starts[tail]
    )
    d_req[tail] = d_tail


def _serve_coupled(
    bank: _DiskBank,
    policy: WritePlacementPolicy,
    mapping: np.ndarray,
    free: np.ndarray,
    sizes: np.ndarray,
    fid: np.ndarray,
    t_all: np.ndarray,
    is_write: Optional[np.ndarray],
    cache,
    starts: np.ndarray,
    d_req: np.ndarray,
    heap: Optional[list] = None,
    base_index: int = 0,
    flush: bool = True,
    map_l: Optional[list] = None,
    size_l: Optional[list] = None,
    obs=None,
    obs_clock: Optional[list] = None,
) -> None:
    """Globally time-merged pass for shared-cache runs (writes optional).

    Reads look the cache up at arrival and, on a miss, schedule an
    admission at their completion time; a min-heap drains those admissions
    in completion order between arrivals, reproducing the event kernel's
    interleaving (hit short-circuit, admit-on-miss-completion).  Ties
    (admission exactly at an arrival instant) admit first; admissions at or
    after the horizon never happen, exactly like the event kernel's URGENT
    stop pre-empting completion events at ``T``.

    The controlled path calls this once per control interval on a slice of
    the stream: ``heap`` carries pending admissions across the calls,
    ``base_index`` keeps the heap's tie-break sequence global,
    ``flush=False`` defers the final drain until the last slice, and
    ``map_l``/``size_l`` reuse one list materialization of the (large)
    per-file arrays across all slices (``map_l`` is kept in sync with
    ``mapping`` on every allocation, so sharing it is safe).
    """
    if heap is None:
        heap = []
    if obs is not None and obs_clock is None:
        obs_clock = [0.0]
    if map_l is None:
        map_l = mapping.tolist()
    if size_l is None:
        size_l = sizes.tolist()
    lookup = cache.lookup
    admit = cache.admit
    serve = bank.serve
    oh_l = bank.oh
    rate_l = bank.rate
    T = bank.T
    fid_l = fid.tolist()
    t_l = t_all.tolist()
    w_l = is_write.tolist() if is_write is not None else None
    for i in range(len(t_l)):
        t = t_l[i]
        f = fid_l[i]
        while heap and heap[0][0] <= t:
            c_adm, _, hf, hs = heappop(heap)
            if obs is not None:
                obs_clock[0] = c_adm
                obs.on_cache_event(c_adm, "admit", hf)
            admit(hf, hs)
        if w_l is not None and w_l[i]:
            d = map_l[f]
            if d < 0:
                size = size_l[f]
                d = _allocate_for_write(bank, policy, free, size, t)
                if obs is not None:
                    obs.on_placement(t, f, d)
                map_l[f] = d
                mapping[f] = d
                free[d] -= size
            starts[i] = serve(d, t, size_l[f] / rate_l[d])
            d_req[i] = d
        else:
            size = size_l[f]
            if lookup(f, size):
                if obs is not None:
                    obs.on_cache_event(t, "hit", f)
                starts[i] = t  # a hit "completes" at its arrival instant
                d_req[i] = -1
                continue
            if obs is not None:
                obs.on_cache_event(t, "miss", f)
            d = map_l[f]
            if d < 0:
                raise SimulationError(
                    f"read of unallocated file {f}; allocate it first"
                )
            tr = size / rate_l[d]
            s = serve(d, t, tr)
            starts[i] = s
            d_req[i] = d
            c = s + oh_l[d] + tr
            if c < T:
                heappush(heap, (c, base_index + i, f, size))
    if flush:
        while heap and heap[0][0] < T:
            c_adm, _, hf, hs = heappop(heap)
            if obs is not None:
                obs_clock[0] = c_adm
                obs.on_cache_event(c_adm, "admit", hf)
            admit(hf, hs)

class _ControlledDriver:
    """Interval-segmented execution under a dynamic DPM policy, with all
    carry state threaded across chunk boundaries.

    The monolithic controlled path is one :meth:`feed` of the whole stream
    followed by :meth:`finish`; the chunked path feeds one chunk at a time.
    Everything the interval loop needs to resume lives on the driver — the
    cache-admission heap, the telemetry backlog (completions not yet
    reported at a boundary), dispatched-but-waiting requests and the
    controller's interval position — so splitting the stream at any point
    is bit-identical to the single call:

    * arrivals are processed one control interval at a time through
      whichever of the grouped/segmented/coupled paths applies; an
      interval whose arrivals span several chunks is served in several
      sub-slices (the per-disk recursion carries exactly, and the coupled
      pass's heap tie-break uses the *global* arrival index ``n_seen``);
    * an interval's boundary is processed only once an arrival at or past
      its ``t_end`` has been seen — a later chunk may still add arrivals
      to the open interval.  :meth:`finish` processes every remaining
      boundary, including trailing empty intervals, and hands the final
      partial interval to ``dpm.finalize`` (a decision at or beyond the
      horizon could never take effect; the event engine's cutoff pre-empts
      that firing too).

    Telemetry at each boundary matches the event engine's control process:
    responses completed strictly before ``t_end`` in completion order
    (sequence-stable at ties via the global arrival index), per-disk idle
    gaps closed during the interval (the bank's ``gap_log`` is drained and
    cleared *in place* — the serve loops hold bound ``append`` references)
    and per-disk queue depths of dispatched requests not yet in service,
    carried as ``(service start, disk)`` value arrays so no global
    ``starts`` array is ever materialized.
    """

    __slots__ = (
        "bank", "dpm", "policy", "mapping", "free", "sizes", "cache",
        "hit_lat", "heap", "map_l", "size_l", "T", "ci", "oh_a", "rate_a",
        "pend_c", "pend_seq", "pend_r", "wait_s", "wait_d",
        "n_seen", "k", "t_start", "finished", "obs", "obs_clock",
    )

    def __init__(
        self,
        bank,
        dpm,
        policy: WritePlacementPolicy,
        mapping: np.ndarray,
        free: np.ndarray,
        sizes: np.ndarray,
        cache,
        cache_hit_latency: float,
        heap: Optional[list],
        map_l: Optional[list],
        size_l: Optional[list],
        obs=None,
        obs_clock: Optional[list] = None,
    ) -> None:
        self.bank = bank
        self.dpm = dpm
        self.policy = policy
        self.mapping = mapping
        self.free = free
        self.sizes = sizes
        self.cache = cache
        self.hit_lat = float(cache_hit_latency)
        self.heap = heap if heap is not None else []
        self.map_l = map_l
        self.size_l = size_l
        self.T = bank.T
        self.ci = dpm.interval
        self.oh_a = bank.oh_a
        self.rate_a = bank.rate_a
        # Telemetry backlog: completions not yet reported at a boundary.
        self.pend_c: List[np.ndarray] = []
        self.pend_seq: List[np.ndarray] = []
        self.pend_r: List[np.ndarray] = []
        # Dispatched but not yet in service, as (service start, disk).
        self.wait_s = np.empty(0, dtype=float)
        self.wait_d = np.empty(0, dtype=np.int64)
        self.n_seen = 0  # live arrivals fed so far (global sequence ids)
        self.k = 0
        self.t_start = 0.0
        self.finished = False
        self.obs = obs
        self.obs_clock = obs_clock

    def _serve_slice(
        self,
        fid: np.ndarray,
        t_all: np.ndarray,
        sz_all: np.ndarray,
        is_write: Optional[np.ndarray],
        starts: np.ndarray,
        d_req: np.ndarray,
        lo: int,
        hi: int,
        holds: Optional[np.ndarray] = None,
    ) -> None:
        bank = self.bank
        sl = slice(lo, hi)
        if self.cache is not None:
            _serve_coupled(
                bank, self.policy, self.mapping, self.free, self.sizes,
                fid[sl], t_all[sl],
                None if is_write is None else is_write[sl],
                self.cache, starts[sl], d_req[sl],
                heap=self.heap, base_index=self.n_seen + lo, flush=False,
                map_l=self.map_l, size_l=self.size_l,
                obs=self.obs, obs_clock=self.obs_clock,
            )
        elif is_write is not None:
            _serve_segmented(
                bank, self.policy, self.mapping, self.free, self.sizes,
                fid[sl], t_all[sl], sz_all[sl], is_write[sl],
                starts[sl], d_req[sl], obs=self.obs,
            )
        else:
            d_seg = self.mapping[fid[sl]]
            bad = np.flatnonzero(d_seg < 0)
            if bad.size:
                raise SimulationError(
                    f"read of unallocated file {int(fid[lo + bad[0]])}; "
                    "allocate it first"
                )
            _serve_segment(
                bank, d_seg, t_all[sl], sz_all[sl] / self.rate_a[d_seg],
                starts[sl],
            )
            d_req[sl] = d_seg
        # Queue newly served requests' completions for the telemetry feed
        # (cache hits complete at their arrival instant; requests censored
        # at the horizon never complete, like the event engine's cutoff
        # pre-empting their completion events).
        d_sl = d_req[sl]
        served = d_sl >= 0
        # Per-disk overheads/rates: resolve against disk 0 for unserved
        # (hit) slots — the value is discarded by the where() below.
        d_safe = np.where(served, d_sl, 0)
        oh_sl = self.oh_a[d_safe]
        tr_sl = sz_all[sl] / self.rate_a[d_safe]
        c_sl = np.where(served, starts[sl] + oh_sl + tr_sl, t_all[sl])
        r_sl = np.where(served, c_sl - t_all[sl], self.hit_lat)
        if holds is not None:
            # Scheduled runs measure responses from the *original* arrival:
            # the hold (release - arrival) rides on top of the post-release
            # response, exactly like the event dispatcher's response_offset.
            r_sl = r_sl + holds[sl]
        keep = c_sl < self.T
        self.pend_c.append(c_sl[keep])
        self.pend_seq.append(
            np.arange(self.n_seen + lo, self.n_seen + hi, dtype=np.int64)[keep]
        )
        self.pend_r.append(r_sl[keep])
        # Dispatched requests not yet in service at some future boundary
        # (the event drive pops a request from its queue exactly at service
        # start); boundaries only filter these down, never rescan.
        w = starts[sl][served]
        if w.size:
            self.wait_s = np.concatenate((self.wait_s, w))
            self.wait_d = np.concatenate((self.wait_d, d_sl[served]))

    def _boundary(self, t_end: float, last: bool) -> None:
        bank = self.bank
        c = np.concatenate(self.pend_c) if self.pend_c else np.empty(0)
        seq = (
            np.concatenate(self.pend_seq)
            if self.pend_seq
            else np.empty(0, np.int64)
        )
        r = np.concatenate(self.pend_r) if self.pend_r else np.empty(0)
        # Strictly-before: a completion landing exactly on a boundary is
        # observed in the *next* interval, matching the event engine's
        # control event (armed at the previous boundary, hence an earlier
        # FIFO id than completions scheduled during the interval) firing
        # first at the shared instant.
        done = c < t_end
        order = np.lexsort((seq[done], c[done]))
        responses = r[done][order]
        self.pend_c = [c[~done]]
        self.pend_seq = [seq[~done]]
        self.pend_r = [r[~done]]
        gaps = []
        for log in bank.gap_log:
            gaps.append(log[:])
            log.clear()
        keep = self.wait_s > t_end
        self.wait_s = self.wait_s[keep]
        self.wait_d = self.wait_d[keep]
        queue_depth = np.bincount(
            self.wait_d, minlength=len(bank.avail)
        ).astype(float)
        if last:
            self.dpm.finalize(self.t_start, t_end, responses, gaps, queue_depth)
            self.finished = True
        else:
            new_th = self.dpm.advance(
                self.t_start, t_end, responses, gaps, queue_depth
            )
            bank.push_thresholds(new_th)
            if self.obs is not None:
                self.obs.on_thresholds(t_end, new_th)
            self.t_start = t_end
            self.k += 1

    def feed(
        self,
        fid: np.ndarray,
        t_all: np.ndarray,
        sz_all: np.ndarray,
        is_write: Optional[np.ndarray],
        starts: np.ndarray,
        d_req: np.ndarray,
    ) -> None:
        """Serve one chunk of live (pre-censored, time-sorted) arrivals."""
        n = int(t_all.size)
        lo = 0
        while lo < n:
            t_end = min((self.k + 1) * self.ci, self.T)
            hi = int(np.searchsorted(t_all, t_end, side="left"))
            if hi > lo:
                self._serve_slice(
                    fid, t_all, sz_all, is_write, starts, d_req, lo, hi
                )
            if hi == n:
                # Chunk exhausted mid-interval: a later chunk may still add
                # arrivals before t_end, so the boundary stays open.
                break
            self._boundary(t_end, t_end >= self.T)
            lo = hi
            if self.finished:  # pragma: no cover - arrivals are censored < T
                break
        self.n_seen += n

    def drain_to(self, t: float) -> None:
        """Process every boundary at or before ``t`` (scheduled runs: a
        deferred release landing exactly on a control boundary submits
        *after* that boundary, matching the event engine's requeue)."""
        while not self.finished:
            t_end = min((self.k + 1) * self.ci, self.T)
            if t_end > t:
                break
            self._boundary(t_end, t_end >= self.T)

    def finish(self) -> None:
        """Process every remaining boundary (trailing empty intervals
        included) and hand the final partial interval to ``dpm.finalize``."""
        while not self.finished:
            t_end = min((self.k + 1) * self.ci, self.T)
            self._boundary(t_end, t_end >= self.T)


def _interval_edges(interval: float, horizon: float) -> np.ndarray:
    """The ascending control-interval grid ``[0, ci, 2ci, ..., T]``.

    Computes the exact floats the controlled interval loop produces
    (``min((k + 1) * ci, T)``), so the per-interval power bins align with
    ``dpm.records`` bit-for-bit.
    """
    edges = [0.0]
    k = 0
    while True:
        t_end = min((k + 1) * float(interval), horizon)
        edges.append(t_end)
        if t_end >= horizon:
            break
        k += 1
    return np.asarray(edges, dtype=float)


class _SpanBinner:
    """Incremental per-interval per-disk state-overlap accumulator.

    Chunked controlled runs cannot keep every logged state span until the
    end (the span logs grow with the request count), so spans are folded
    into fixed-size ``(K, D)`` overlap matrices between chunks and the
    logs cleared.  The first batch folded under a key is stored as-is, so
    a monolithic (single-chunk) run reproduces the historical one-shot
    ``bin_spans`` call bit-for-bit; later batches accumulate, which only
    regroups the float sums — the chunked-vs-monolithic differential axis
    therefore holds the power trace to 1e-9 relative rather than exact.
    """

    __slots__ = ("edges", "num_disks", "_bins")

    def __init__(self, edges: np.ndarray, num_disks: int) -> None:
        self.edges = edges
        self.num_disks = num_disks
        self._bins: dict = {}

    def add(self, key, disks, starts, ends) -> None:
        from repro.control.telemetry import bin_spans

        mat = bin_spans(disks, starts, ends, self.edges, self.num_disks)
        prev = self._bins.get(key)
        self._bins[key] = mat if prev is None else prev + mat

    def add_entries(self, key, entries: list) -> None:
        """Fold a ``(disk, start, end)`` tuple list (caller clears it)."""
        if not entries:
            return
        arr = np.asarray(entries, dtype=float)
        self.add(key, arr[:, 0].astype(np.int64), arr[:, 1], arr[:, 2])

    def get(self, key) -> np.ndarray:
        mat = self._bins.get(key)
        if mat is None:
            return np.zeros((int(self.edges.size) - 1, self.num_disks))
        return mat


def _flush_bank_spans(
    binner: Optional[_SpanBinner], bank, is_ladder: bool, obs=None
) -> None:
    """Drain a bank's logged transition spans and clear them in place
    (the serve loops hold bound references): fold them into the binner
    (controlled runs), emit them to an observer (clipped at the horizon,
    like every accounting path), or both.  Called between chunks and once
    at the end of the run, so span-log memory stays bounded by the chunk
    size and observer emission order is deterministic for any chunking.
    """
    T = bank.T
    if is_ladder:
        for i in range(1, bank.maxR):
            for prefix, spans in (
                ("park", bank.park_spans[i]),
                ("down", bank.down_spans[i]),
                ("wake", bank.wake_spans[i]),
            ):
                if binner is not None:
                    binner.add_entries((prefix, i), spans)
                if obs is not None:
                    for d, s, e in spans:
                        if s >= T:
                            continue
                        name = bank.ladders[d].rungs[i].name
                        if prefix != "park":
                            name = f"{prefix}:{name}"
                        obs.on_state_span(int(d), name, s, e if e < T else T)
                spans.clear()
    else:
        for key, name, spans in (
            ("sd", "spindown", bank.sd_spans),
            ("su", "spinup", bank.su_spans),
            ("sb", "standby", bank.sb_spans),
        ):
            if binner is not None:
                binner.add_entries(key, spans)
            if obs is not None:
                for d, s, e in spans:
                    if s < T:
                        obs.on_state_span(int(d), name, s, e if e < T else T)
            spans.clear()


def _power_from_binner(binner: _SpanBinner, specs) -> np.ndarray:
    """Per-interval per-disk mean power from the binned state overlaps.

    The event engine diffs live drive energies at each boundary; this
    reconstructs the same physical quantity from the run's state spans
    (seek/active per request, logged spin transitions, idle as the window
    residual), so the two traces agree to float-accumulation noise.
    State powers are per-disk row vectors — on a mixed fleet every disk
    column is weighted by its own spec's draw.
    """
    models = [PowerModel(s) for s in specs]

    def p(state):
        return np.array([m.power(state) for m in models], dtype=float)

    windows = np.diff(binner.edges)
    seek = binner.get("seek")
    active = binner.get("active")
    spindown = binner.get("sd")
    spinup = binner.get("su")
    standby = binner.get("sb")
    idle = np.clip(
        windows[:, None] - (seek + active + spindown + spinup + standby),
        0.0,
        None,
    )
    energy = (
        p(DiskState.SEEK)[None, :] * seek
        + p(DiskState.ACTIVE)[None, :] * active
        + p(DiskState.SPINDOWN)[None, :] * spindown
        + p(DiskState.SPINUP)[None, :] * spinup
        + p(DiskState.STANDBY)[None, :] * standby
        + p(DiskState.IDLE)[None, :] * idle
    )
    return energy / windows[:, None]


def _ladder_power_from_binner(
    binner: _SpanBinner, ladders, specs
) -> np.ndarray:
    """Ladder analogue of :func:`_power_from_binner`: park/descent/wake
    overlaps per rung, rung-0 park as the window residual.  Rung powers
    are per-disk row vectors (each disk bills its own ladder); a disk
    whose ladder is shallower than rung ``i`` has zero overlap in that
    column, so its placeholder power never contributes.
    """
    windows = np.diff(binner.edges)
    seek = binner.get("seek")
    active = binner.get("active")
    occupied = seek + active
    seek_p = np.array([s.seek_power for s in specs], dtype=float)
    active_p = np.array([s.active_power for s in specs], dtype=float)
    energy = seek_p[None, :] * seek + active_p[None, :] * active
    max_r = max(len(l.rungs) for l in ladders)

    def rung_p(i, attr):
        return np.array(
            [
                getattr(l.rungs[i], attr) if i < len(l.rungs) else 0.0
                for l in ladders
            ],
            dtype=float,
        )

    for i in range(1, max_r):
        park = binner.get(("park", i))
        down = binner.get(("down", i))
        wake = binner.get(("wake", i))
        occupied = occupied + park + down + wake
        energy = (
            energy
            + rung_p(i, "power")[None, :] * park
            + rung_p(i, "down_power")[None, :] * down
            + rung_p(i, "wake_power")[None, :] * wake
        )
    idle = np.clip(windows[:, None] - occupied, 0.0, None)
    p0 = np.array([l.rungs[0].power for l in ladders], dtype=float)
    energy = energy + p0[None, :] * idle
    return energy / windows[:, None]


def simulate_fast(
    sizes: np.ndarray,
    mapping: np.ndarray,
    spec: DiskSpec,
    num_disks: int,
    threshold: float,
    stream,
    duration: float,
    label: str = "run",
    cache=None,
    cache_hit_latency: float = 0.0,
    usable_capacity=None,
    write_policy=None,
    dpm=None,
    ladder=None,
    metrics_mode: str = "full",
    fleet: Optional[ResolvedFleet] = None,
    observer=None,
    scheduler=None,
) -> SimulationResult:
    """Simulate ``stream`` against ``mapping`` without the event loop.

    Parameters mirror what :class:`~repro.system.storage.StorageSystem`
    assembles: ``sizes``/``mapping`` are dense per-file arrays, ``threshold``
    is the effective idleness threshold (``inf`` disables spin-down) and
    ``duration`` the measurement horizon.  ``cache`` is an optional
    :class:`~repro.cache.base.BaseCache` instance (hits respond with
    ``cache_hit_latency``); ``usable_capacity`` is the per-disk byte budget
    the write allocation spends (defaults to the spec's raw capacity, like
    the dispatcher); ``write_policy`` selects the placement strategy (a
    registry name, a policy instance, or ``None`` for the paper's §1.1
    ``spinning_best_fit``).  ``dpm`` is an optional fresh
    :class:`~repro.control.controller.ThresholdController` (one per run)
    engaging the interval-segmented controlled path — ``None`` (or a
    static policy, which :meth:`StorageConfig.dpm_controller` maps to
    ``None``) keeps the fixed-threshold paths byte-identical to the
    pre-control kernel.  ``ladder`` is an optional
    :class:`~repro.disk.dpm.DpmLadder`: the run replays through the
    per-rung :class:`_LadderBank` recursion (or
    :class:`_ControlledLadderBank` under a dynamic policy, with
    ``threshold``/the controller vector scaling the descent schedule),
    and ``state_durations`` is keyed by the ladder's timeline labels
    instead of :class:`DiskState`.  ``metrics_mode="streaming"`` skips the
    per-request response array: the result carries a bounded
    :class:`~repro.system.metrics.ResponseStats` (exact count/mean/min/max,
    P² percentiles) and ``response_times`` is ``None``.  Returns the same
    :class:`~repro.system.metrics.SimulationResult` the event kernel
    produces, including the post-run ``final_mapping`` and — under
    control — the per-interval traces in ``extra["dpm"]``.  The caller's
    ``mapping`` is not mutated; writes allocate against an internal copy.

    ``fleet`` is an optional :class:`~repro.disk.fleet.ResolvedFleet`
    carrying per-disk specs, ladders and thresholds; when given it
    overrides ``spec``/``threshold``/``ladder`` (which remain the
    uniform-pool sugar) and the recursion runs per-disk constants —
    ``usable_capacity`` may then be a per-disk vector too.

    ``observer`` is an optional :class:`~repro.obs.hooks.RunObserver`:
    spin/ladder transition spans, cache events, controller threshold
    pushes and placement choices are emitted in simulated time
    (transition-level granularity — per-request seek/active spans would
    defeat the batching; the event engine emits those).  A disabled or
    ``None`` observer leaves every hot path untouched, and an enabled
    one never changes the result (the differential harness's observer
    axis asserts bit-identity).

    ``scheduler`` is an optional *reset* (or fresh)
    :class:`~repro.system.scheduling.RequestScheduler`: each arrival is
    assigned a release time by the scheduler's deterministic forecast and
    submitted to the disks at that release, in ``(release, arrival
    order)`` order; recorded responses measure from the original arrival
    (the hold rides on top).  Under a dynamic DPM policy the scheduler
    reads the controller's interval-constant ``slo_estimate`` at each
    arrival, and a release landing exactly on a control boundary submits
    after the boundary — both exactly like the event engine's
    ``drive_scheduled_stream``, so every registered scheduler is held to
    1e-9 cross-engine agreement by the differential harness's scheduler
    axis.  ``None`` (what :meth:`StorageConfig.request_scheduler` returns
    for the default ``"fifo"``) keeps every path byte-identical to the
    unscheduled kernel.
    """
    if not hasattr(stream, "times") or not hasattr(stream, "file_ids"):
        raise ConfigError(
            "simulate_fast needs an array-backed stream (.times/.file_ids); "
            "chunked streams go through simulate_fast_chunked"
        )
    # The stream itself is a valid single chunk (``.times``/``.file_ids``
    # and, for mixed streams, ``.kinds``) — every code path below is the
    # chunked core, so monolithic and chunked runs cannot drift apart.
    return _simulate_chunks(
        sizes, mapping, spec, num_disks, threshold, (stream,), duration,
        label, cache, cache_hit_latency, usable_capacity, write_policy,
        dpm, ladder, metrics_mode, fleet, observer, scheduler,
    )


def simulate_fast_chunked(
    sizes: np.ndarray,
    mapping: np.ndarray,
    spec: DiskSpec,
    num_disks: int,
    threshold: float,
    stream,
    duration: Optional[float] = None,
    label: str = "run",
    cache=None,
    cache_hit_latency: float = 0.0,
    usable_capacity=None,
    write_policy=None,
    dpm=None,
    ladder=None,
    metrics_mode: str = "full",
    fleet: Optional[ResolvedFleet] = None,
    observer=None,
    scheduler=None,
) -> SimulationResult:
    """Out-of-core variant of :func:`simulate_fast` over a chunked stream.

    ``stream`` follows the ``ChunkedStream`` protocol of
    :mod:`repro.workload.chunked`: ``iter_chunks()`` yields time-sorted
    chunks with ``.times``/``.file_ids`` (and optionally ``.kinds``),
    globally non-decreasing across chunks (validated here, with a
    :class:`~repro.errors.SimulationError` naming the offending boundary).
    Per-disk queue/power state, cache-admission heaps, write placements and
    the DPM controller's interval position all carry across chunk
    boundaries, so the result is bit-identical to materializing the whole
    stream and calling :func:`simulate_fast` — the chunked axis of the
    differential harness asserts exactly that (responses, energies,
    mappings and spin counters; the controlled per-interval power trace
    agrees to 1e-9 relative, see :class:`_SpanBinner`).

    With the default ``metrics_mode="full"`` the per-request response
    array is still accumulated (O(completions) memory); pass
    ``metrics_mode="streaming"`` for bounded memory — peak usage is then
    O(chunk + files + disks), independent of the request count.
    ``duration`` defaults to the stream's ``duration`` attribute.

    ``scheduler`` composes with chunking: a request held across a chunk
    boundary stays in the pending release heap (bounded by the number of
    simultaneously-held requests, not the stream length), and the global
    ``(release, arrival order)`` submission sequence is invariant to the
    chunk partition, so scheduled chunked runs stay bit-identical to the
    monolithic call.
    """
    if not hasattr(stream, "iter_chunks"):
        raise ConfigError(
            "simulate_fast_chunked needs a chunked stream (.iter_chunks()); "
            "array-backed streams can be adapted with .chunks(n)"
        )
    if duration is None:
        duration = getattr(stream, "duration", None)
        if duration is None:
            raise ConfigError(
                "duration is required for chunked streams that do not carry "
                "a duration attribute"
            )
    return _simulate_chunks(
        sizes, mapping, spec, num_disks, threshold, stream.iter_chunks(),
        float(duration), label, cache, cache_hit_latency, usable_capacity,
        write_policy, dpm, ladder, metrics_mode, fleet, observer, scheduler,
    )


def _simulate_chunks(
    sizes: np.ndarray,
    mapping: np.ndarray,
    spec: DiskSpec,
    num_disks: int,
    threshold: float,
    chunks,
    duration: float,
    label: str,
    cache,
    cache_hit_latency: float,
    usable_capacity,
    write_policy,
    dpm,
    ladder,
    metrics_mode: str,
    fleet: Optional[ResolvedFleet] = None,
    observer=None,
    scheduler=None,
) -> SimulationResult:
    """Shared replay core: one pass over ``chunks`` with full carry state.

    Every accumulator that the monolithic kernel used to compute in one
    vectorized shot at the end (per-disk seek/active bincounts, response
    assembly, per-interval power bins) is maintained incrementally with
    operations chosen for partition invariance — serial ``np.add.at``
    scatter-adds continue ``np.bincount``'s left-to-right reduction exactly,
    so a single-chunk pass reproduces the historical monolithic results
    bit-for-bit and a many-chunk pass reproduces the single-chunk one.
    """
    if duration <= 0:
        raise ConfigError("duration must be positive")
    if metrics_mode not in ("full", "streaming"):
        raise ConfigError(
            f"metrics_mode must be 'full' or 'streaming', got {metrics_mode!r}"
        )
    T = float(duration)
    sizes = np.asarray(sizes, dtype=float)
    mapping = np.asarray(mapping, dtype=np.int64).copy()
    if mapping.shape != sizes.shape:
        raise SimulationError("mapping and sizes must align per file id")
    if mapping.size and int(mapping.max()) >= num_disks:
        raise SimulationError(
            f"mapping references disk {int(mapping.max())} but the pool has "
            f"only {num_disks} disks"
        )
    # A resolved fleet overrides the uniform spec/threshold/ladder sugar
    # with per-disk values; everything downstream runs per-disk vectors
    # either way (a uniform pool is a tiled vector, bit-identical to the
    # historical scalar constants).
    if fleet is not None:
        if fleet.num_disks != num_disks:
            raise ConfigError(
                f"fleet resolves {fleet.num_disks} disks but the pool has "
                f"{num_disks}"
            )
        specs = fleet.specs
        ladders = fleet.ladders if fleet.has_ladders else None
        th_in = fleet.thresholds
        homogeneous = fleet.homogeneous_specs
    else:
        specs = (spec,) * num_disks
        ladders = ladder
        th_in = threshold
        homogeneous = True
    has_ladder = ladders is not None
    if usable_capacity is None:
        usable = (
            specs[0].capacity
            if homogeneous
            else np.array([s.capacity for s in specs], dtype=float)
        )
    elif np.ndim(usable_capacity) == 0:
        usable = float(usable_capacity)
    else:
        usable = np.asarray(usable_capacity, dtype=float)
    free = initial_free_bytes(mapping, sizes, usable, num_disks)
    validate_free_bytes(free, usable)
    policy = make_placement_policy(write_policy)
    policy.reset(num_disks)

    streaming = metrics_mode == "streaming"
    obs = active_observer(observer)

    # Cache plumbing shared by every chunk: one heap of pending admissions
    # and one list materialization of the (large) per-file arrays
    # (``map_l`` is kept in sync with ``mapping`` on every allocation).
    heap: Optional[list] = [] if cache is not None else None
    map_l = mapping.tolist() if cache is not None else None
    size_l = sizes.tolist() if cache is not None else None

    # Evictions happen inside ``cache.admit``, which has no notion of
    # simulated time — the serve loops keep ``obs_clock`` at the current
    # admission/arrival instant so the evict hook can timestamp them.
    obs_clock: Optional[list] = None
    if obs is not None and cache is not None:
        obs_clock = [0.0]
        cache.evict_hook = lambda f: obs.on_cache_event(
            obs_clock[0], "evict", f
        )

    driver: Optional[_ControlledDriver] = None
    binner: Optional[_SpanBinner] = None
    if dpm is not None:
        if dpm.num_disks != num_disks:
            raise ConfigError(
                f"controller sized for {dpm.num_disks} disks but the pool "
                f"has {num_disks}"
            )
        if has_ladder:
            bank = _ControlledLadderBank(
                num_disks, dpm.thresholds, ladders, specs, T, dpm.interval
            )
        else:
            bank = _ControlledBank(
                num_disks, dpm.thresholds, specs, T, dpm.interval
            )
        driver = _ControlledDriver(
            bank, dpm, policy, mapping, free, sizes, cache,
            cache_hit_latency, heap, map_l, size_l,
            obs=obs, obs_clock=obs_clock,
        )
        binner = _SpanBinner(_interval_edges(dpm.interval, T), num_disks)
    elif has_ladder:
        bank = (
            _ObservedLadderBank(num_disks, th_in, ladders, specs, T)
            if obs is not None
            else _LadderBank(num_disks, th_in, ladders, specs, T)
        )
    else:
        bank = (
            _ObservedDiskBank(num_disks, th_in, specs, T)
            if obs is not None
            else _DiskBank(num_disks, th_in, specs, T)
        )
    # The per-disk byte budget the placement context exposes (same values
    # the event dispatcher hands its policies).
    bank.cap = per_disk_capacities(usable, num_disks)

    # Persistent accumulators (fixed size in the pool, not the stream).
    seek_time = np.zeros(num_disks, dtype=float)
    active_time = np.zeros(num_disks, dtype=float)
    req_count = np.zeros(num_disks, dtype=np.int64)
    arrivals = 0
    hits = 0
    acc = ResponseAccumulator() if streaming else None
    resp_c_parts: List[np.ndarray] = []
    resp_v_parts: List[np.ndarray] = []
    hit_t_parts: List[np.ndarray] = []
    hit_v_parts: List[np.ndarray] = []

    # -- slack-aware request scheduling (repro.system.scheduling) --------------
    # Arrivals are assigned release times by the scheduler's deterministic
    # forecast (in arrival order, reading the controller's interval-constant
    # slo_estimate under control) and submitted to the disks in global
    # (release, arrival-seq) order — the exact submission sequence the event
    # engine's drive_scheduled_stream produces.  Pending releases ride a heap
    # across interval and chunk boundaries; recorded responses measure from
    # the original arrival (the hold rides on top of the post-release
    # response).  scheduler=None takes the historical unscheduled paths,
    # byte-identical to the pre-scheduler kernel.
    sched_pending: List[tuple] = []  # (release, seq, fid, is_write, hold)
    sched_seq = 0
    if scheduler is not None:

        def _schedule(fid_l, t_l, w_l, lo, hi, est) -> None:
            """Assign releases to arrivals [lo, hi) (one open interval)."""
            nonlocal sched_seq
            rel = scheduler.release
            for i in range(lo, hi):
                t_i = t_l[i]
                f_i = fid_l[i]
                w_i = False if w_l is None else w_l[i]
                r = rel(t_i, f_i, WRITE if w_i else READ, slo_estimate=est)
                if r < T:
                    # A release at or past the horizon never submits (the
                    # event engine's URGENT stop pre-empts it) — censored,
                    # neither an arrival nor a completion.
                    heappush(sched_pending, (r, sched_seq, f_i, w_i, r - t_i))
                sched_seq += 1

        def _consume(fid_c, t_c, sz_c, w_c, holds_c) -> None:
            """Serve one (release, seq)-ordered batch of released requests
            through whichever path applies and fold it into the persistent
            accumulators — the scheduled analogue of the per-chunk body."""
            nonlocal arrivals, hits, req_count
            n_c = int(t_c.size)
            starts_c = np.empty(n_c, dtype=float)
            d_req_c = np.empty(n_c, dtype=np.int64)
            if driver is not None:
                driver._serve_slice(
                    fid_c, t_c, sz_c, w_c, starts_c, d_req_c, 0, n_c,
                    holds=holds_c,
                )
                driver.n_seen += n_c
            elif cache is not None:
                _serve_coupled(
                    bank, policy, mapping, free, sizes, fid_c, t_c, w_c,
                    cache, starts_c, d_req_c, heap=heap, base_index=arrivals,
                    flush=False, map_l=map_l, size_l=size_l,
                    obs=obs, obs_clock=obs_clock,
                )
            elif w_c is not None:
                _serve_segmented(
                    bank, policy, mapping, free, sizes, fid_c, t_c, sz_c,
                    w_c, starts_c, d_req_c, obs=obs,
                )
            else:
                disk_c = mapping[fid_c]
                if n_c and int(disk_c.min()) < 0:
                    bad_f = int(fid_c[int(np.argmin(disk_c))])
                    raise SimulationError(
                        f"read of unallocated file {bad_f}; allocate it first"
                    )
                _serve_segment(
                    bank, disk_c, t_c, sz_c / bank.rate_a[disk_c], starts_c
                )
                d_req_c = disk_c
            served_c = d_req_c >= 0
            n_hits = n_c - int(served_c.sum())
            if n_hits:
                d_s = d_req_c[served_c]
                s_s = starts_c[served_c]
                sz_s = sz_c[served_c]
                t_s = t_c[served_c]
                h_s = holds_c[served_c]
            else:
                d_s, s_s, sz_s, t_s, h_s = (
                    d_req_c, starts_c, sz_c, t_c, holds_c
                )
            oh_s = bank.oh_a[d_s]
            tr_s = sz_s / bank.rate_a[d_s]
            np.add.at(seek_time, d_s, np.clip(T - s_s, 0.0, oh_s))
            np.add.at(active_time, d_s, np.clip(T - (s_s + oh_s), 0.0, tr_s))
            req_count += np.bincount(d_s, minlength=num_disks)
            if binner is not None:
                binner.add("seek", d_s, s_s, s_s + oh_s)
                binner.add("active", d_s, s_s + oh_s, s_s + oh_s + tr_s)
            completion = s_s + oh_s + tr_s
            done = completion < T
            if streaming:
                vals = np.empty(n_c, dtype=float)
                ok = np.ones(n_c, dtype=bool)
                vals[served_c] = (completion - t_s) + h_s
                ok[served_c] = done
                if n_hits:
                    vals[~served_c] = (
                        float(cache_hit_latency) + holds_c[~served_c]
                    )
                acc.add(vals[ok])
            else:
                resp_c_parts.append(completion[done])
                resp_v_parts.append((completion[done] - t_s[done]) + h_s[done])
                if n_hits:
                    hit_t_parts.append(t_c[~served_c])
                    hit_v_parts.append(
                        float(cache_hit_latency) + holds_c[~served_c]
                    )
            arrivals += n_c
            hits += n_hits

        def _flush(limit: float, inclusive: bool) -> None:
            """Pop pending releases up to ``limit`` — in (release, seq)
            order — and serve them as one batch."""
            if not sched_pending:
                return
            rel_l: List[float] = []
            fid_fl: List[int] = []
            w_fl: List[bool] = []
            h_fl: List[float] = []
            while sched_pending:
                r0 = sched_pending[0][0]
                if (r0 > limit) if inclusive else (r0 >= limit):
                    break
                r0, _, f0, w0, h0 = heappop(sched_pending)
                rel_l.append(r0)
                fid_fl.append(f0)
                w_fl.append(w0)
                h_fl.append(h0)
            if not rel_l:
                return
            fid_c = np.asarray(fid_fl, dtype=np.int64)
            w_arr = np.asarray(w_fl, dtype=bool)
            _consume(
                fid_c,
                np.asarray(rel_l, dtype=float),
                sizes[fid_c],
                w_arr if w_arr.any() else None,
                np.asarray(h_fl, dtype=float),
            )

    prev_last: Optional[float] = None
    for chunk in chunks:
        t_all = np.asarray(chunk.times, dtype=float)
        n = int(t_all.size)
        if not n:
            continue
        # Every path relies on time-sorted arrivals (stable per-disk
        # grouping, the global merge); the event engine's drive_stream
        # raises on out-of-order times, so match it rather than silently
        # reordering — within each chunk and across chunk boundaries.
        if n > 1 and bool(np.any(np.diff(t_all) < 0)):
            bad = int(np.argmax(np.diff(t_all) < 0)) + 1
            raise SimulationError(
                "request stream times must be non-decreasing: got "
                f"{t_all[bad]} after {t_all[bad - 1]}"
            )
        if prev_last is not None and t_all[0] < prev_last:
            raise SimulationError(
                "chunked stream is not globally time-sorted: a chunk starts "
                f"at {t_all[0]} but the previous chunk ended at {prev_last}"
            )
        prev_last = float(t_all[-1])
        # The event kernel's cutoff is strict: the URGENT stop event at T
        # pre-empts arrival and completion events scheduled at exactly T.
        censored = bool(t_all[-1] >= T)
        if censored:
            cut = int(np.searchsorted(t_all, T, side="left"))
            if not cut:
                break
            t_all = t_all[:cut]
            n = cut
        fid = np.asarray(chunk.file_ids, dtype=np.int64)[:n]
        kinds = getattr(chunk, "kinds", None)
        is_write: Optional[np.ndarray] = None
        if kinds is not None:
            w = np.asarray(kinds)[:n] == WRITE
            if w.any():
                is_write = w
        if scheduler is not None:
            if arrivals and (driver is not None or obs is not None):
                # Bounded memory for the banks' span logs, exactly like the
                # unscheduled per-chunk folds below.
                _flush_bank_spans(
                    binner if driver is not None else None,
                    bank, has_ladder, obs,
                )
            t_l = t_all.tolist()
            fid_list = fid.tolist()
            w_l = is_write.tolist() if is_write is not None else None
            if driver is not None:
                # Interval-segmented: arrivals in one control interval all
                # read the same slo_estimate, and a boundary is processed —
                # with every release strictly before it flushed first — as
                # soon as an arrival at or past it is seen.
                ci = driver.ci
                pos = 0
                while pos < n:
                    t_edge = min((driver.k + 1) * ci, T)
                    hi = int(np.searchsorted(t_all, t_edge, side="left"))
                    if hi > pos:
                        _schedule(
                            fid_list, t_l, w_l, pos, hi, dpm.slo_estimate
                        )
                    if hi == n:
                        # Chunk exhausted mid-interval: a later chunk may
                        # still add arrivals before t_edge, so the boundary
                        # stays open.
                        break
                    _flush(t_edge, False)
                    driver._boundary(t_edge, t_edge >= T)
                    pos = hi
            else:
                _schedule(fid_list, t_l, w_l, 0, n, None)
            # Releases at or before the chunk's last arrival are final:
            # every future arrival (hence every future release) is at or
            # after it, and at a tie the smaller arrival seq flushes first
            # either way — so the global submission order is invariant to
            # the chunk partition.
            _flush(float(t_all[-1]), True)
            if censored:
                break
            continue

        sz_all = sizes[fid]
        starts = np.empty(n, dtype=float)
        d_req = np.empty(n, dtype=np.int64)

        if arrivals and driver is None and obs is not None:
            # Bounded memory for the observed banks' span logs on the
            # fixed-threshold paths (the controlled path folds below;
            # emission order is chunking-invariant either way because
            # spans are only ever appended in simulation order).
            _flush_bank_spans(None, bank, has_ladder, obs)
        if driver is not None:
            if arrivals:
                # Bounded memory: fold the spans logged so far before the
                # next chunk grows the logs.  A single-chunk run never gets
                # here and takes the one-shot fold at the end, staying
                # bit-exact with the historical monolithic binning.
                _flush_bank_spans(binner, bank, has_ladder, obs)
            driver.feed(fid, t_all, sz_all, is_write, starts, d_req)
        elif cache is not None:
            _serve_coupled(
                bank, policy, mapping, free, sizes, fid, t_all,
                is_write, cache, starts, d_req,
                heap=heap, base_index=arrivals, flush=False,
                map_l=map_l, size_l=size_l,
                obs=obs, obs_clock=obs_clock,
            )
        elif is_write is not None:
            _serve_segmented(
                bank, policy, mapping, free, sizes, fid, t_all, sz_all,
                is_write, starts, d_req, obs=obs,
            )
        else:
            disk = mapping[fid]
            if n and int(disk.min()) < 0:
                bad_f = int(fid[int(np.argmin(disk))])
                raise SimulationError(
                    f"read of unallocated file {bad_f}; allocate it first"
                )
            _serve_segment(
                bank, disk, t_all, sz_all / bank.rate_a[disk], starts
            )
            d_req = disk

        # -- per-chunk accounting into the persistent accumulators ------------
        served = d_req >= 0
        n_hits = n - int(served.sum())
        if n_hits:
            d_s = d_req[served]
            s_s = starts[served]
            sz_s = sz_all[served]
            t_s = t_all[served]
        else:
            d_s, s_s, sz_s, t_s = d_req, starts, sz_all, t_all
        # Per-request overhead/transfer resolved against the serving
        # disk's own spec (identical to the uniform scalars on a
        # homogeneous pool).
        oh_s = bank.oh_a[d_s]
        tr_s = sz_s / bank.rate_a[d_s]
        # Service accounting truncated at the horizon; the serial scatter-
        # add continues np.bincount's reduction exactly across chunks.
        np.add.at(seek_time, d_s, np.clip(T - s_s, 0.0, oh_s))
        np.add.at(active_time, d_s, np.clip(T - (s_s + oh_s), 0.0, tr_s))
        req_count += np.bincount(d_s, minlength=num_disks)
        if binner is not None:
            binner.add("seek", d_s, s_s, s_s + oh_s)
            binner.add("active", d_s, s_s + oh_s, s_s + oh_s + tr_s)
        completion = s_s + oh_s + tr_s
        done = completion < T
        if streaming:
            # Feed responses in arrival order (served completions where
            # they complete before T, hits at the hit latency) — the same
            # per-chunk formula for every partition, so the accumulator's
            # serial reductions are partition-invariant.
            vals = np.empty(n, dtype=float)
            ok = np.ones(n, dtype=bool)
            vals[served] = completion - t_s
            ok[served] = done
            if n_hits:
                vals[~served] = float(cache_hit_latency)
            acc.add(vals[ok])
        else:
            resp_c_parts.append(completion[done])
            resp_v_parts.append(completion[done] - t_s[done])
            if n_hits:
                hit_t_parts.append(t_all[~served])
        arrivals += n
        hits += n_hits
        if censored:
            # Chunks are globally sorted, so everything after this chunk's
            # cut is at or past the horizon — censored, like the event
            # engine's URGENT stop discarding queued arrivals.
            break

    if scheduler is not None and sched_pending:
        # Requests still held past the last arrival: interleave the
        # remaining releases (all < T) with the control boundaries they
        # straddle — a release exactly on a boundary submits after it.
        if driver is not None:
            ci = driver.ci
            while sched_pending:
                driver.drain_to(sched_pending[0][0])
                _flush(min((driver.k + 1) * ci, T), False)
        else:
            _flush(T, False)
    if driver is not None:
        driver.finish()
    if cache is not None:
        # Admissions pending at the horizon never happen (the event
        # kernel's stop event pre-empts completions at T).
        admit = cache.admit
        while heap and heap[0][0] < T:
            c_adm, _, hf, hs = heappop(heap)
            if obs is not None:
                obs_clock[0] = c_adm
                obs.on_cache_event(c_adm, "admit", hf)
            admit(hf, hs)
        if obs is not None:
            cache.evict_hook = None

    # -- vectorized accounting over the banked state ---------------------------

    # Spin accounting with trailing idleness applied (a disk whose
    # post-drain gap outlasts its threshold spins down — or descends the
    # ladder — before the horizon).
    if has_ladder:
        spinups, spindowns = bank.apply_tail()
    else:
        spindown_time, spinup_time, standby_time, spinups, spindowns = (
            bank.tail_arrays()
        )
    if binner is not None or obs is not None:
        # Remaining spans, including the trailing-idleness episodes the
        # tail pass just logged.
        _flush_bank_spans(binner, bank, has_ladder, obs)

    if not has_ladder:
        idle_time = np.clip(
            T
            - (
                seek_time
                + active_time
                + spindown_time
                + spinup_time
                + standby_time
            ),
            0.0,
            None,
        )

    if streaming:
        stats = acc.result()
        response_times = None
        completions = int(stats.count)
    else:
        stats = None
        resp_completion = (
            np.concatenate(resp_c_parts) if resp_c_parts else np.empty(0)
        )
        resp_values = (
            np.concatenate(resp_v_parts) if resp_v_parts else np.empty(0)
        )
        if hits:
            hit_times = np.concatenate(hit_t_parts)
            resp_completion = np.concatenate((resp_completion, hit_times))
            hit_values = (
                np.concatenate(hit_v_parts)
                if scheduler is not None
                else np.full(hits, float(cache_hit_latency))
            )
            resp_values = np.concatenate((resp_values, hit_values))
        # Report response times in completion order, like the dispatcher
        # does (stable at ties: served completions before cache hits).
        response_times = resp_values[
            np.argsort(resp_completion, kind="stable")
        ]
        completions = int(response_times.size)

    if has_ladder:
        # Ladder runs are keyed by timeline label; the accumulation order
        # (rung 0, parks, seek, active, wakes, descents) makes the
        # two_state ladder's float arithmetic term-for-term identical to
        # the classic DiskState path below.  Disks are grouped by their
        # (ladder, spec) pair and each group replays the historical
        # rung-major arithmetic on its own sub-vectors: a uniform pool is
        # a single group — term-for-term identical to the old scalar
        # constants — while a mixed pool prices every drive against its
        # own ladder depth and power table.
        groups: Dict[tuple, List[int]] = {}
        for d in range(num_disks):
            groups.setdefault((bank.ladders[d], specs[d]), []).append(d)
        energy_per_disk = np.zeros(num_disks, dtype=float)
        per_state: Dict = {}
        for (lad, spec_g), idx_list in groups.items():
            idx = np.asarray(idx_list, dtype=np.int64)
            rungs = lad.rungs
            R = len(rungs)
            park = [
                np.array([bank.park_t[d][i] for d in idx_list], dtype=float)
                for i in range(R)
            ]
            down = [
                np.array([bank.down_t[d][i] for d in idx_list], dtype=float)
                for i in range(R)
            ]
            wake = [
                np.array([bank.wake_t[d][i] for d in idx_list], dtype=float)
                for i in range(R)
            ]
            occupied = seek_time[idx] + active_time[idx]
            for arr in down[1:]:
                occupied = occupied + arr
            for arr in wake[1:]:
                occupied = occupied + arr
            for arr in park[1:]:
                occupied = occupied + arr
            idle_g = np.clip(T - occupied, 0.0, None)
            per_state_g = {rungs[0].name: idle_g}
            for i in range(1, R):
                per_state_g[rungs[i].name] = park[i]
            per_state_g["seek"] = seek_time[idx]
            per_state_g["active"] = active_time[idx]
            for i in range(1, R):
                per_state_g[f"wake:{rungs[i].name}"] = wake[i]
            for i in range(1, R):
                per_state_g[f"down:{rungs[i].name}"] = down[i]
            powers = lad.power_table(spec_g)
            e_g = np.zeros(len(idx_list), dtype=float)
            for state, per_disk in per_state_g.items():
                e_g += powers[state] * per_disk
            energy_per_disk[idx] = e_g
            for state, per_disk in per_state_g.items():
                vec = per_state.setdefault(
                    state, np.zeros(num_disks, dtype=float)
                )
                vec[idx] = per_disk
    else:
        per_state = {
            DiskState.IDLE: idle_time,
            DiskState.STANDBY: standby_time,
            DiskState.SEEK: seek_time,
            DiskState.ACTIVE: active_time,
            DiskState.SPINUP: spinup_time,
            DiskState.SPINDOWN: spindown_time,
        }
        state_power = {
            state: np.array(
                [PowerModel(s).power(state) for s in specs], dtype=float
            )
            for state in per_state
        }
        energy_per_disk = np.zeros(num_disks, dtype=float)
        for state, per_disk in per_state.items():
            energy_per_disk += state_power[state] * per_disk
    state_durations = {
        state: float(per_disk.sum())
        for state, per_disk in per_state.items()
        if per_disk.any()
    }

    extra = {}
    if dpm is not None:
        if has_ladder:
            dpm.attach_power(
                _ladder_power_from_binner(binner, bank.ladders, specs)
            )
        else:
            dpm.attach_power(_power_from_binner(binner, specs))
        extra["dpm"] = dpm.extra()

    return SimulationResult(
        algorithm=label,
        duration=T,
        num_disks=num_disks,
        energy=float(energy_per_disk.sum()),
        energy_per_disk=energy_per_disk,
        state_durations=state_durations,
        response_times=response_times,
        arrivals=arrivals,
        completions=completions,
        spinups=int(spinups.sum()),
        spindowns=int(spindowns.sum()),
        always_on_energy=(
            num_disks * PowerModel(specs[0]).always_on_energy(T)
            if homogeneous
            else float(
                sum(PowerModel(s).always_on_energy(T) for s in specs)
            )
        ),
        cache_stats=cache.stats if cache is not None else None,
        requests_per_disk=req_count,
        spinups_per_disk=spinups,
        final_mapping=mapping,
        extra=extra,
        response_stats=stats,
    )
