"""Batched fast-path simulation kernel (``StorageConfig(engine="fast")``).

The event kernel (:mod:`repro.sim.environment`) replays one request at a
time through generator processes: every arrival costs several heap
operations, event allocations and coroutine hops.  That is flexible — it
supports arbitrary process interleavings — but it makes large parameter
sweeps (the paper's Figures 2-6 grids) simulation bound.

This module computes the same runs directly, without the event loop.  The
drive semantics are exactly those of :class:`~repro.disk.drive.DiskDrive`
(paper Figure 1): each disk is a FIFO queue whose service start follows a
Lindley recursion extended with the idleness-threshold spin-down / spin-up
transitions.  That per-disk recursion needs only two kinds of global
coupling, both handled here:

* **write allocation** — a write of a not-yet-mapped file inspects every
  disk's *current* spin state, free space and dispatched load through the
  configured :class:`~repro.system.placement.WritePlacementPolicy` (the
  paper's §1.1 ``spinning_best_fit`` by default), then updates the mapping
  for later requests;
* **a shared whole-file cache** — reads look the cache up at arrival and
  admit on miss *completion*, so cache contents depend on the global
  interleaving of arrivals and completions across disks.

Engine coverage matrix
----------------------

=========================================  ==========  ===========
scenario feature                           ``fast``    ``event``
=========================================  ==========  ===========
read-only static mapping                   yes         yes
idleness thresholds (0, finite, inf)       yes         yes
write streams (placement on first touch)   yes         yes
pluggable write placement (full registry)  yes         yes
shared whole-file cache (any policy)       yes         yes
mixed read/write + cache                   yes         yes
online DPM policies (full registry)        yes         yes
multi-state DPM ladders (presets + user)   yes         yes
ladders under online control (scaled)      yes         yes
array-backed streams (``.times``)          required    not needed
arbitrary iterator streams                 no          yes
custom per-request processes               no          yes
=========================================  ==========  ===========

Multi-state ladders (``StorageConfig(dpm_ladder=...)`` — presets
``two_state``/``nap``/``drpm4`` in :data:`repro.disk.dpm.DPM_LADDERS`,
or any user :class:`~repro.disk.dpm.DpmLadder`) replay through the
per-rung :class:`_LadderBank` recursion; the ``two_state`` preset is
byte-identical to the classic :class:`_DiskBank` path, and the seeded
randomized differential harness in ``tests/differential/`` holds both
engines to 1e-9 agreement across the full config space (disks x streams
x cache x write policy x DPM policy x ladder).

Every policy in :data:`repro.system.placement.PLACEMENT_POLICIES` is
engine-agnostic: both kernels feed it the same
:class:`~repro.system.placement.PlacementContext` (spin mask, free bytes,
per-disk dispatched service seconds accumulated in the same per-request
order), so allocation decisions — and hence final file→disk mappings — are
byte-identical across engines; ``tests/experiments/test_engine_smoke.py``
iterates the registry to enforce this.

Execution strategy (fastest applicable path is chosen per run):

1. **grouped** (read-only, no cache): the stream is pre-sorted into
   per-disk NumPy groups and each disk's queue is advanced independently —
   the original fully batched path;
2. **segmented** (writes, no cache): only writes that *allocate* a new
   file couple the disks, so the stream is split at those coupling points
   and the same vectorized per-disk recursion replays each read-only
   segment between them; the allocation itself is resolved scalar against
   the banked per-disk spin state;
3. **coupled** (shared cache): a single globally time-merged pass walks
   arrivals in order, draining a min-heap of pending cache admissions
   (miss completions) between arrivals; the per-disk recursion state is
   identical, only advanced one request at a time;
4. **controlled** (a dynamic ``StorageConfig.dpm_policy``): the stream is
   segmented at control-interval boundaries and each interval replays
   through whichever of the three paths above applies, against a
   :class:`_ControlledBank` holding *per-interval, per-disk* threshold
   vectors.  An idle gap is governed by the threshold in effect at the
   disk's drain instant (the event drive's already-armed timer), so the
   per-gap threshold is looked up from the drain time's interval.  At
   each boundary the interval's telemetry — responses in completion
   order, closed idle gaps per disk, queue depths — is handed to the
   shared :class:`~repro.control.controller.ThresholdController`, which
   returns the next threshold vector; the event engine's control process
   consumes identical telemetry, so every registered DPM policy
   simulates identically (~1e-9) on both engines.

All state-time, energy and response accounting is vectorized afterwards
and truncated at the measurement horizon exactly like the event kernel's
cutoff.  Semantics mirror :class:`~repro.disk.drive.DiskDrive`: drives
start IDLE with the idleness timer armed at t=0, spin-downs are not
abortable (a request arriving mid-transition waits for spin-down +
spin-up), and requests arriving at or after the horizon are censored
(counted as neither arrivals nor completions).  Agreement with the event
kernel is tested to tight tolerances in ``tests/sim/test_fastkernel.py``;
the only differences are ~1 ulp float drift (the event loop accumulates
arrival times as ``now + (t - now)``) and tie-breaking at measure-zero
coincidences (a completion and an arrival at the exact same instant — the
fast kernel admits the completion first).

Select the engine per run via ``StorageConfig(engine="fast")``; the one
scenario class the fast kernel cannot express (streams that are not
array-backed) raises :class:`~repro.errors.ConfigError` — use the default
``engine="event"`` for those.
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import isinf
from typing import List, Optional

import numpy as np

from repro.disk.drive import WRITE
from repro.disk.power import DiskState, PowerModel
from repro.disk.specs import DiskSpec
from repro.errors import ConfigError, SimulationError
from repro.system.dispatcher import initial_free_bytes, validate_free_bytes
from repro.system.metrics import SimulationResult
from repro.system.placement import (
    PlacementContext,
    WritePlacementPolicy,
    make_placement_policy,
)

__all__ = ["fast_unsupported_reason", "simulate_fast"]


def fast_unsupported_reason(config, stream) -> Optional[str]:
    """Why ``engine="fast"`` cannot run this scenario (``None`` if it can).

    Since the global-merge pass landed, write streams and shared caches are
    supported; the only remaining requirement is an array-backed stream
    (dense ``.times``/``.file_ids`` — plus optional ``.kinds`` — so the run
    can be batched at all).
    """
    if not hasattr(stream, "times") or not hasattr(stream, "file_ids"):
        return "the stream is not array-backed (needs .times/.file_ids)"
    return None


class _DiskBank:
    """Scalar per-disk queue/power state with carry-in, shared by all paths.

    Holds exactly the state the event kernel's ``DiskDrive`` evolves — the
    time each disk next falls idle plus spin-transition accounting — in
    plain Python lists, so single-request advances at coupling points stay
    cheap while :meth:`serve_batch` replays a whole per-disk FIFO segment
    with hoisted locals.
    """

    __slots__ = (
        "avail", "sd_t", "su_t", "sb_t", "n_up", "n_down", "load",
        "th", "no_spindown", "D", "U", "oh", "T",
    )

    def __init__(
        self, num_disks: int, threshold: float, spec: DiskSpec, horizon: float
    ) -> None:
        self.avail = [0.0] * num_disks
        self.sd_t = [0.0] * num_disks
        self.su_t = [0.0] * num_disks
        self.sb_t = [0.0] * num_disks
        self.n_up = [0] * num_disks
        self.n_down = [0] * num_disks
        # Cumulative dispatched service seconds per disk, accumulated one
        # request at a time (same order as the event dispatcher's ledger,
        # so load-comparing placement policies see bit-equal values).
        self.load = [0.0] * num_disks
        self.th = float(threshold)
        self.no_spindown = isinf(self.th)
        self.D = spec.spindown_time
        self.U = spec.spinup_time
        self.oh = spec.access_overhead
        self.T = horizon

    def serve(self, d: int, t: float, tr: float) -> float:
        """Queue one request on disk ``d`` arriving at ``t``; returns the
        service start (the event kernel's SEEK entry time)."""
        a = self.avail[d]
        if t > a:
            if not self.no_spindown and t - a > self.th:
                # Idleness timer expired at a+th: spin down (not abortable),
                # sleep, then spin up on this arrival.
                sd = a + self.th
                sd_end = sd + self.D
                self.n_down[d] += 1
                self.sd_t[d] += min(sd_end, self.T) - sd
                if t >= sd_end:
                    self.sb_t[d] += t - sd_end
                    su = t
                else:
                    su = sd_end
                if su < self.T:
                    self.n_up[d] += 1
                    self.su_t[d] += min(su + self.U, self.T) - su
                s = su + self.U
            else:
                s = t
        else:
            s = a
        self.avail[d] = s + self.oh + tr
        self.load[d] += self.oh + tr
        return s

    def serve_batch(self, d: int, ts: list, trs: list) -> List[float]:
        """Advance disk ``d`` through a FIFO run of requests; returns the
        service starts.  Identical recursion to :meth:`serve`, with the
        per-disk state hoisted into locals for the long read-only runs."""
        out: List[float] = []
        append = out.append
        a = self.avail[d]
        oh = self.oh
        ld = self.load[d]
        if self.no_spindown:
            # Pure Lindley recursion: serve at max(arrival, free time).
            for t, tr in zip(ts, trs):
                s = t if t > a else a
                append(s)
                a = s + oh + tr
                ld += oh + tr
        else:
            th = self.th
            D = self.D
            U = self.U
            T = self.T
            sd_t = self.sd_t[d]
            su_t = self.su_t[d]
            sb_t = self.sb_t[d]
            n_up = self.n_up[d]
            n_down = self.n_down[d]
            for t, tr in zip(ts, trs):
                if t > a:
                    if t - a > th:
                        sd = a + th
                        sd_end = sd + D
                        n_down += 1
                        sd_t += min(sd_end, T) - sd
                        if t >= sd_end:
                            sb_t += t - sd_end
                            su = t
                        else:
                            su = sd_end
                        if su < T:
                            n_up += 1
                            su_t += min(su + U, T) - su
                        s = su + U
                    else:
                        s = t
                else:
                    s = a
                append(s)
                a = s + oh + tr
                ld += oh + tr
            self.sd_t[d] = sd_t
            self.su_t[d] = su_t
            self.sb_t[d] = sb_t
            self.n_up[d] = n_up
            self.n_down[d] = n_down
        self.avail[d] = a
        self.load[d] = ld
        return out

    def spinning_mask(self, t: float) -> np.ndarray:
        """Per-disk "not STANDBY at time ``t``" — the §1.1 write policy's
        view of the pool.

        Mirrors :attr:`~repro.disk.power.DiskState.spinning`: SEEK/ACTIVE/
        IDLE/SPINUP *and SPINDOWN* all count as spinning.  A drained disk is
        IDLE until ``avail + th``, SPINDOWN until ``avail + th + D``, and
        STANDBY after; a disk still working (``t < avail``) is never in
        STANDBY because a pending request always rides the spin transitions
        straight back up.
        """
        avail = np.asarray(self.avail)
        if self.no_spindown:
            return np.ones(avail.shape, dtype=bool)
        return t < avail + self.th + self.D

    def tail_arrays(self):
        """Spin/transition accounting as arrays, with trailing idleness.

        Called once at the horizon: every disk (including ones that never
        served a request) spins down once its post-drain idle gap exceeds
        the threshold, provided the timer fires before the horizon.
        Returns ``(spindown_time, spinup_time, standby_time, spinups,
        spindowns)`` per disk.
        """
        avail = np.asarray(self.avail, dtype=float)
        spindown_time = np.asarray(self.sd_t, dtype=float)
        spinup_time = np.asarray(self.su_t, dtype=float)
        standby_time = np.asarray(self.sb_t, dtype=float)
        spinups = np.asarray(self.n_up, dtype=np.int64)
        spindowns = np.asarray(self.n_down, dtype=np.int64)
        if not self.no_spindown:
            sd = avail + self.th
            tail = sd < self.T
            spindowns = spindowns + tail
            sd_end = sd + self.D
            spindown_time = spindown_time + np.where(
                tail, np.minimum(sd_end, self.T) - sd, 0.0
            )
            standby_time = standby_time + np.where(
                tail, np.clip(self.T - sd_end, 0.0, None), 0.0
            )
        return spindown_time, spinup_time, standby_time, spinups, spindowns


class _ControlledBank(_DiskBank):
    """Per-interval, per-disk threshold variant of :class:`_DiskBank`.

    Used by the controlled execution path (dynamic DPM policies).  The
    threshold governing an idle gap is the one in effect at the disk's
    *drain* instant — resolved by looking the drain time's control
    interval up in ``_th_rows`` (the history of applied threshold
    vectors).  By the time a gap's closing arrival is processed, its
    drain interval has necessarily been reached, so the lookup is always
    resolvable (FIFO per disk; arrivals are processed in time order).

    Also logs what the fixed-path bank does not need: per-disk closed
    idle gaps ``(gap, threshold_at_drain)`` for the control telemetry,
    and every spin-transition episode as ``(disk, start, end)`` spans so
    the per-interval power trace can be reconstructed after the run.
    An infinite per-disk threshold needs no special casing: ``gap > inf``
    is never true, so such disks simply never spin down.
    """

    __slots__ = (
        "ci", "_th_rows", "k", "gap_log", "sd_spans", "su_spans", "sb_spans",
    )

    def __init__(
        self,
        num_disks: int,
        init_thresholds: np.ndarray,
        spec: DiskSpec,
        horizon: float,
        interval: float,
    ) -> None:
        super().__init__(num_disks, 0.0, spec, horizon)
        self.th = float("nan")  # scalar threshold unused in controlled mode
        self.no_spindown = False
        self.ci = float(interval)
        # One row per control interval; plain float lists because the hot
        # per-gap lookup (a python list index) beats NumPy scalar
        # extraction by a wide margin.
        self._th_rows: List[List[float]] = [
            np.asarray(init_thresholds, dtype=float).tolist()
        ]
        self.k = 0
        self.gap_log: List[List[tuple]] = [[] for _ in range(num_disks)]
        self.sd_spans: List[tuple] = []
        self.su_spans: List[tuple] = []
        self.sb_spans: List[tuple] = []

    def push_thresholds(self, thresholds: np.ndarray) -> None:
        """Apply the vector decided at the boundary entering interval k+1."""
        self._th_rows.append(np.asarray(thresholds, dtype=float).tolist())
        self.k += 1

    def _th_at(self, drain: float, d: int) -> float:
        """Threshold governing a gap that began at ``drain`` on disk ``d``."""
        idx = int(drain / self.ci)
        if idx > self.k:
            idx = self.k
        return self._th_rows[idx][d]

    def serve(self, d: int, t: float, tr: float) -> float:
        """:meth:`_DiskBank.serve` with the per-gap threshold lookup,
        gap logging and transition-span logging."""
        a = self.avail[d]
        if t > a:
            th = self._th_at(a, d)
            self.gap_log[d].append((t - a, th))
            if t - a > th:
                sd = a + th
                sd_end = sd + self.D
                self.n_down[d] += 1
                self.sd_t[d] += min(sd_end, self.T) - sd
                self.sd_spans.append((d, sd, sd_end))
                if t >= sd_end:
                    self.sb_t[d] += t - sd_end
                    self.sb_spans.append((d, sd_end, t))
                    su = t
                else:
                    su = sd_end
                if su < self.T:
                    self.n_up[d] += 1
                    self.su_t[d] += min(su + self.U, self.T) - su
                    self.su_spans.append((d, su, su + self.U))
                s = su + self.U
            else:
                s = t
        else:
            s = a
        self.avail[d] = s + self.oh + tr
        self.load[d] += self.oh + tr
        return s

    def serve_batch(self, d: int, ts: list, trs: list) -> List[float]:
        """Hoisted-locals FIFO replay with the per-gap threshold lookup.

        Identical recursion to :meth:`serve`; only the per-disk state (and
        the threshold-history rows) are lifted into locals for the long
        read-only runs between coupling points.
        """
        out: List[float] = []
        append = out.append
        a = self.avail[d]
        oh = self.oh
        ld = self.load[d]
        ci = self.ci
        th_rows = self._th_rows
        k = self.k
        D = self.D
        U = self.U
        T = self.T
        sd_t = self.sd_t[d]
        su_t = self.su_t[d]
        sb_t = self.sb_t[d]
        n_up = self.n_up[d]
        n_down = self.n_down[d]
        gap_append = self.gap_log[d].append
        sd_spans = self.sd_spans
        su_spans = self.su_spans
        sb_spans = self.sb_spans
        for t, tr in zip(ts, trs):
            if t > a:
                idx = int(a / ci)
                th = th_rows[idx if idx <= k else k][d]
                gap_append((t - a, th))
                if t - a > th:
                    sd = a + th
                    sd_end = sd + D
                    n_down += 1
                    sd_t += min(sd_end, T) - sd
                    sd_spans.append((d, sd, sd_end))
                    if t >= sd_end:
                        sb_t += t - sd_end
                        sb_spans.append((d, sd_end, t))
                        su = t
                    else:
                        su = sd_end
                    if su < T:
                        n_up += 1
                        su_t += min(su + U, T) - su
                        su_spans.append((d, su, su + U))
                    s = su + U
                else:
                    s = t
            else:
                s = a
            append(s)
            a = s + oh + tr
            ld += oh + tr
        self.sd_t[d] = sd_t
        self.su_t[d] = su_t
        self.sb_t[d] = sb_t
        self.n_up[d] = n_up
        self.n_down[d] = n_down
        self.avail[d] = a
        self.load[d] = ld
        return out

    def spinning_mask(self, t: float) -> np.ndarray:
        out = np.empty(len(self.avail), dtype=bool)
        for d, a in enumerate(self.avail):
            # inf threshold => a + inf == inf => always spinning.
            out[d] = t < a + self._th_at(a, d) + self.D
        return out

    def tail_arrays(self):
        spindown_time = np.asarray(self.sd_t, dtype=float)
        spinup_time = np.asarray(self.su_t, dtype=float)
        standby_time = np.asarray(self.sb_t, dtype=float)
        spinups = np.asarray(self.n_up, dtype=np.int64)
        spindowns = np.asarray(self.n_down, dtype=np.int64).copy()
        T = self.T
        for d, a in enumerate(self.avail):
            sd = a + self._th_at(a, d)
            if sd < T:
                spindowns[d] += 1
                sd_end = sd + self.D
                spindown_time[d] += min(sd_end, T) - sd
                self.sd_spans.append((d, sd, sd_end))
                if sd_end < T:
                    standby_time[d] += T - sd_end
                    self.sb_spans.append((d, sd_end, T))
        return spindown_time, spinup_time, standby_time, spinups, spindowns


class _LadderBank:
    """Multi-rung generalization of :class:`_DiskBank` for DPM ladders.

    Evolves exactly the state the event kernel's
    :class:`~repro.disk.multistate.MultiStateDiskDrive` evolves: per disk,
    the time it next falls idle plus per-rung park/descent/wake
    residencies.  An idle gap walks the ladder's (threshold-scaled)
    descent schedule: fully traversed rungs bill their descent and park
    times, the rung occupied when the gap ends bills a (possibly
    horizon-clipped) descent plus park-until-arrival, and the wake is
    billed at the rung's wake power for its configured wake time.  With
    the ``two_state`` ladder the recursion's arithmetic is term-for-term
    the classic :class:`_DiskBank` spin-down/spin-up recursion, so that
    ladder simulates byte-identically to the pre-ladder kernel (the
    regression tests in ``tests/sim/test_ladder_fastkernel.py`` assert
    bit-equal response times and energies).
    """

    def __init__(
        self, num_disks: int, threshold: float, ladder, spec: DiskSpec,
        horizon: float,
    ) -> None:
        self.avail = [0.0] * num_disks
        self.load = [0.0] * num_disks
        self.n_up = [0] * num_disks
        self.n_down = [0] * num_disks
        self.oh = spec.access_overhead
        self.T = horizon
        self.ladder = ladder
        rungs = ladder.rungs
        self.R = len(rungs)
        self.dn = [r.down_time for r in rungs]
        self.wk = [r.wake_time for r in rungs]
        # Per-rung per-disk residencies; rung 0's park time is computed as
        # the horizon residual (like the classic bank's idle time).
        self.park_t = [[0.0] * num_disks for _ in rungs]
        self.down_t = [[0.0] * num_disks for _ in rungs]
        self.wake_t = [[0.0] * num_disks for _ in rungs]
        self.th = float(threshold)
        self.entries = ladder.scaled_entries(self.th)
        self.no_descend = self.R == 1 or isinf(self.entries[1])

    def _descend(self, d: int, a: float, t: float, entries) -> float:
        """Walk the idle gap ``[a, t)`` down the ladder; returns the wake
        completion (service start) and bills every residency touched."""
        g = t - a
        T = self.T
        dn = self.dn
        R = self.R
        i = 1
        while i + 1 < R and g > entries[i + 1]:
            i += 1
        for j in range(1, i):
            # Rungs fully traversed before the arrival: full descent plus
            # park until the next rung's descent starts (all before t < T).
            ds = a + entries[j]
            de = ds + dn[j]
            self.down_t[j][d] += de - ds
            pe = a + entries[j + 1]
            if pe > de:
                self.park_t[j][d] += pe - de
        ds = a + entries[i]
        de = ds + dn[i]
        self.n_down[d] += i
        self.down_t[i][d] += min(de, T) - ds
        if t >= de:
            self.park_t[i][d] += t - de
            ws = t
        else:
            # Arrived mid-descent: the transition is not abortable.
            ws = de
        w = self.wk[i]
        if ws < T:
            self.n_up[d] += 1
            self.wake_t[i][d] += min(ws + w, T) - ws
        return ws + w

    def serve(self, d: int, t: float, tr: float) -> float:
        """Queue one request on disk ``d`` arriving at ``t``; returns the
        service start (the event kernel's seek entry time)."""
        a = self.avail[d]
        if t > a:
            if self.no_descend or t - a <= self.entries[1]:
                s = t
            else:
                s = self._descend(d, a, t, self.entries)
        else:
            s = a
        self.avail[d] = s + self.oh + tr
        self.load[d] += self.oh + tr
        return s

    def serve_batch(self, d: int, ts: list, trs: list) -> List[float]:
        """FIFO replay of one disk's run (the gap walk dominates only on
        sparse streams, where request counts are small anyway)."""
        serve = self.serve
        return [serve(d, t, tr) for t, tr in zip(ts, trs)]

    def spinning_mask(self, t: float) -> np.ndarray:
        """Per-disk "not parked in the deepest rung at ``t``" — descents,
        intermediate rungs and wakes all count as spinning, exactly like
        the classic bank's SPINDOWN-inclusive mask."""
        avail = np.asarray(self.avail)
        if self.no_descend:
            return np.ones(avail.shape, dtype=bool)
        return t < (avail + self.entries[-1]) + self.dn[-1]

    def _tail_one(self, d: int, a: float, entries) -> None:
        """Fold one disk's post-drain trailing idleness (descents started
        before the horizon, parks clipped at it) into the residencies."""
        T = self.T
        R = self.R
        dn = self.dn
        for i in range(1, R):
            ds = a + entries[i]
            if ds >= T:
                break
            de = ds + dn[i]
            self.n_down[d] += 1
            self.down_t[i][d] += min(de, T) - ds
            pe = (a + entries[i + 1]) if i + 1 < R else T
            if pe > T:
                pe = T
            if pe > de:
                self.park_t[i][d] += pe - de

    def apply_tail(self):
        """Trailing-idleness pass at the horizon; returns per-disk
        ``(spinups, spindowns)`` arrays."""
        if not self.no_descend:
            for d, a in enumerate(self.avail):
                self._tail_one(d, a, self.entries)
        return (
            np.asarray(self.n_up, dtype=np.int64),
            np.asarray(self.n_down, dtype=np.int64),
        )


class _ControlledLadderBank(_LadderBank):
    """Per-interval, per-disk threshold variant of :class:`_LadderBank`.

    The controller's scalar per-disk threshold (resolved at each gap's
    drain instant from the applied-vector history, exactly like
    :class:`_ControlledBank`) scales the whole descent schedule via
    :meth:`~repro.disk.dpm.DpmLadder.scaled_entries` — so
    ``adaptive_timeout``/``slo_feedback`` steer ladder descent with the
    same telemetry contract as the two-state drives.  Also logs closed
    idle gaps for the telemetry feed and every park/descent/wake episode
    as ``(disk, start, end)`` spans for the per-interval power trace.
    """

    def __init__(
        self,
        num_disks: int,
        init_thresholds: np.ndarray,
        ladder,
        spec: DiskSpec,
        horizon: float,
        interval: float,
    ) -> None:
        super().__init__(num_disks, 0.0, ladder, spec, horizon)
        self.entries = None  # per-gap schedules only; never a shared one
        self.no_descend = False
        self.ci = float(interval)
        self._th_rows: List[List[float]] = [
            np.asarray(init_thresholds, dtype=float).tolist()
        ]
        self.k = 0
        self._entry_cache: dict = {}
        self.gap_log: List[List[tuple]] = [[] for _ in range(num_disks)]
        self.park_spans: List[List[tuple]] = [[] for _ in ladder.rungs]
        self.down_spans: List[List[tuple]] = [[] for _ in ladder.rungs]
        self.wake_spans: List[List[tuple]] = [[] for _ in ladder.rungs]

    def push_thresholds(self, thresholds: np.ndarray) -> None:
        """Apply the vector decided at the boundary entering interval k+1."""
        self._th_rows.append(np.asarray(thresholds, dtype=float).tolist())
        self.k += 1

    def _th_at(self, drain: float, d: int) -> float:
        """Threshold governing a gap that began at ``drain`` on disk ``d``."""
        idx = int(drain / self.ci)
        if idx > self.k:
            idx = self.k
        return self._th_rows[idx][d]

    def _entries_for(self, th: float):
        entries = self._entry_cache.get(th)
        if entries is None:
            entries = self.ladder.scaled_entries(th)
            self._entry_cache[th] = entries
        return entries

    def _descend_logged(self, d: int, a: float, t: float, entries) -> float:
        """:meth:`_LadderBank._descend` plus span logging for the trace."""
        g = t - a
        T = self.T
        dn = self.dn
        R = self.R
        i = 1
        while i + 1 < R and g > entries[i + 1]:
            i += 1
        for j in range(1, i):
            ds = a + entries[j]
            de = ds + dn[j]
            self.down_t[j][d] += de - ds
            self.down_spans[j].append((d, ds, de))
            pe = a + entries[j + 1]
            if pe > de:
                self.park_t[j][d] += pe - de
                self.park_spans[j].append((d, de, pe))
        ds = a + entries[i]
        de = ds + dn[i]
        self.n_down[d] += i
        self.down_t[i][d] += min(de, T) - ds
        self.down_spans[i].append((d, ds, de))
        if t >= de:
            self.park_t[i][d] += t - de
            self.park_spans[i].append((d, de, t))
            ws = t
        else:
            ws = de
        w = self.wk[i]
        if ws < T:
            self.n_up[d] += 1
            self.wake_t[i][d] += min(ws + w, T) - ws
            self.wake_spans[i].append((d, ws, ws + w))
        return ws + w

    def serve(self, d: int, t: float, tr: float) -> float:
        a = self.avail[d]
        if t > a:
            th = self._th_at(a, d)
            self.gap_log[d].append((t - a, th))
            entries = self._entries_for(th)
            if self.R == 1 or isinf(entries[1]) or t - a <= entries[1]:
                s = t
            else:
                s = self._descend_logged(d, a, t, entries)
        else:
            s = a
        self.avail[d] = s + self.oh + tr
        self.load[d] += self.oh + tr
        return s

    def spinning_mask(self, t: float) -> np.ndarray:
        out = np.empty(len(self.avail), dtype=bool)
        last_dn = self.dn[-1]
        for d, a in enumerate(self.avail):
            entries = self._entries_for(self._th_at(a, d))
            # inf threshold => a + inf == inf => always spinning.
            out[d] = t < (a + entries[-1]) + last_dn
        return out

    def _tail_one(self, d: int, a: float, entries) -> None:
        """Trailing idleness with span logging (parks clipped at T)."""
        T = self.T
        R = self.R
        dn = self.dn
        for i in range(1, R):
            ds = a + entries[i]
            if ds >= T:
                break
            de = ds + dn[i]
            self.n_down[d] += 1
            self.down_t[i][d] += min(de, T) - ds
            self.down_spans[i].append((d, ds, de))
            pe = (a + entries[i + 1]) if i + 1 < R else T
            if pe > T:
                pe = T
            if pe > de:
                self.park_t[i][d] += pe - de
                self.park_spans[i].append((d, de, pe))

    def apply_tail(self):
        for d, a in enumerate(self.avail):
            self._tail_one(d, a, self._entries_for(self._th_at(a, d)))
        return (
            np.asarray(self.n_up, dtype=np.int64),
            np.asarray(self.n_down, dtype=np.int64),
        )


def _allocate_for_write(
    bank: _DiskBank,
    policy: WritePlacementPolicy,
    free: np.ndarray,
    size: float,
    t: float,
) -> int:
    """Placement for a new file at time ``t``: the shared registry policy
    decides against the banked spin state / free bytes / dispatched load,
    so both engines pick byte-identical disks."""
    ctx = PlacementContext(
        time=t,
        spinning=bank.spinning_mask(t),
        free=free,
        load=np.asarray(bank.load, dtype=float),
    )
    return policy.choose(ctx, size)


def _serve_segment(
    bank: _DiskBank,
    d_seg: np.ndarray,
    t_seg: np.ndarray,
    tr_seg: np.ndarray,
    starts_out: np.ndarray,
) -> None:
    """Replay one read-only segment: stable per-disk grouping + batch FIFO.

    ``d_seg`` must be fully resolved (no ``-1``; callers validate); times
    are globally non-decreasing, so a stable sort on the disk index
    preserves each disk's arrival order.  ``starts_out`` (a view onto the
    segment's slice of the global starts array) is filled in place.
    """
    n = int(d_seg.size)
    if not n:
        return
    order = np.argsort(d_seg, kind="stable")
    d_s = d_seg[order]
    t_s = t_seg[order]
    tr_s = tr_seg[order]
    cuts = np.flatnonzero(np.diff(d_s)) + 1
    group_lo = np.concatenate(([0], cuts))
    group_hi = np.concatenate((cuts, [n]))
    seg_starts = np.empty(n, dtype=float)
    for lo, hi in zip(group_lo.tolist(), group_hi.tolist()):
        seg_starts[lo:hi] = bank.serve_batch(
            int(d_s[lo]), t_s[lo:hi].tolist(), tr_s[lo:hi].tolist()
        )
    starts_out[order] = seg_starts


def _serve_segmented(
    bank: _DiskBank,
    policy: WritePlacementPolicy,
    mapping: np.ndarray,
    free: np.ndarray,
    sizes: np.ndarray,
    fid: np.ndarray,
    t_all: np.ndarray,
    tr_all: np.ndarray,
    is_write: np.ndarray,
    starts: np.ndarray,
    d_req: np.ndarray,
) -> None:
    """Mixed read/write stream without a cache.

    Only the *first* touch of an initially-unmapped file couples the disks
    (it runs the placement policy against global spin/load state);
    everything between those coupling points is replayed through the
    vectorized per-disk recursion with carried-in state.
    """
    unmapped = np.flatnonzero(mapping[fid] < 0)
    if unmapped.size:
        _, first = np.unique(fid[unmapped], return_index=True)
        boundaries = np.sort(unmapped[first])
    else:
        boundaries = np.empty(0, dtype=np.int64)

    prev = 0
    for b in boundaries.tolist():
        if b > prev:
            seg = slice(prev, b)
            d_seg = mapping[fid[seg]]
            bad = np.flatnonzero(d_seg < 0)
            if bad.size:
                raise SimulationError(
                    f"read of unallocated file {int(fid[prev + bad[0]])}; "
                    "allocate it first"
                )
            _serve_segment(bank, d_seg, t_all[seg], tr_all[seg], starts[seg])
            d_req[seg] = d_seg
        f = int(fid[b])
        if not is_write[b]:
            raise SimulationError(
                f"read of unallocated file {f}; allocate it first"
            )
        t = float(t_all[b])
        size = float(sizes[f])
        d = _allocate_for_write(bank, policy, free, size, t)
        mapping[f] = d
        free[d] -= size
        starts[b] = bank.serve(d, t, float(tr_all[b]))
        d_req[b] = d
        prev = b + 1

    tail = slice(prev, int(t_all.size))
    d_tail = mapping[fid[tail]]
    bad = np.flatnonzero(d_tail < 0)
    if bad.size:
        raise SimulationError(
            f"read of unallocated file {int(fid[prev + bad[0]])}; "
            "allocate it first"
        )
    _serve_segment(bank, d_tail, t_all[tail], tr_all[tail], starts[tail])
    d_req[tail] = d_tail


def _serve_coupled(
    bank: _DiskBank,
    policy: WritePlacementPolicy,
    mapping: np.ndarray,
    free: np.ndarray,
    sizes: np.ndarray,
    fid: np.ndarray,
    t_all: np.ndarray,
    tr_all: np.ndarray,
    is_write: Optional[np.ndarray],
    cache,
    starts: np.ndarray,
    d_req: np.ndarray,
    heap: Optional[list] = None,
    base_index: int = 0,
    flush: bool = True,
    map_l: Optional[list] = None,
    size_l: Optional[list] = None,
) -> None:
    """Globally time-merged pass for shared-cache runs (writes optional).

    Reads look the cache up at arrival and, on a miss, schedule an
    admission at their completion time; a min-heap drains those admissions
    in completion order between arrivals, reproducing the event kernel's
    interleaving (hit short-circuit, admit-on-miss-completion).  Ties
    (admission exactly at an arrival instant) admit first; admissions at or
    after the horizon never happen, exactly like the event kernel's URGENT
    stop pre-empting completion events at ``T``.

    The controlled path calls this once per control interval on a slice of
    the stream: ``heap`` carries pending admissions across the calls,
    ``base_index`` keeps the heap's tie-break sequence global,
    ``flush=False`` defers the final drain until the last slice, and
    ``map_l``/``size_l`` reuse one list materialization of the (large)
    per-file arrays across all slices (``map_l`` is kept in sync with
    ``mapping`` on every allocation, so sharing it is safe).
    """
    if heap is None:
        heap = []
    if map_l is None:
        map_l = mapping.tolist()
    if size_l is None:
        size_l = sizes.tolist()
    lookup = cache.lookup
    admit = cache.admit
    serve = bank.serve
    oh = bank.oh
    T = bank.T
    fid_l = fid.tolist()
    t_l = t_all.tolist()
    tr_l = tr_all.tolist()
    w_l = is_write.tolist() if is_write is not None else None
    for i in range(len(t_l)):
        t = t_l[i]
        f = fid_l[i]
        while heap and heap[0][0] <= t:
            _, _, hf, hs = heappop(heap)
            admit(hf, hs)
        if w_l is not None and w_l[i]:
            d = map_l[f]
            if d < 0:
                size = size_l[f]
                d = _allocate_for_write(bank, policy, free, size, t)
                map_l[f] = d
                mapping[f] = d
                free[d] -= size
            starts[i] = serve(d, t, tr_l[i])
            d_req[i] = d
        else:
            size = size_l[f]
            if lookup(f, size):
                starts[i] = t  # a hit "completes" at its arrival instant
                d_req[i] = -1
                continue
            d = map_l[f]
            if d < 0:
                raise SimulationError(
                    f"read of unallocated file {f}; allocate it first"
                )
            tr = tr_l[i]
            s = serve(d, t, tr)
            starts[i] = s
            d_req[i] = d
            c = s + oh + tr
            if c < T:
                heappush(heap, (c, base_index + i, f, size))
    if flush:
        while heap and heap[0][0] < T:
            _, _, hf, hs = heappop(heap)
            admit(hf, hs)


def _serve_controlled(
    bank: "_ControlledBank",
    dpm,
    policy: WritePlacementPolicy,
    mapping: np.ndarray,
    free: np.ndarray,
    sizes: np.ndarray,
    fid: np.ndarray,
    t_all: np.ndarray,
    tr_all: np.ndarray,
    is_write: Optional[np.ndarray],
    cache,
    cache_hit_latency: float,
    starts: np.ndarray,
    d_req: np.ndarray,
) -> None:
    """Interval-segmented execution under a dynamic DPM policy.

    Arrivals are processed one control interval at a time through
    whichever of the grouped/segmented/coupled paths applies; at each
    boundary the interval's telemetry (responses completed by the
    boundary in completion order, per-disk closed idle gaps, per-disk
    queue depth) is fed to the controller and the returned threshold
    vector is pushed onto the bank's history.  Cache admissions pending
    at a boundary stay in the shared heap — they are drained as the next
    interval's arrivals replay, exactly like the uncontrolled coupled
    pass.  The final (possibly partial) interval is observed without a
    policy update: a decision at or beyond the horizon could never take
    effect (the event engine's cutoff pre-empts that firing too).
    """
    T = bank.T
    ci = dpm.interval
    oh = bank.oh
    n = int(t_all.size)
    heap: list = []
    # One list materialization of the per-file arrays shared by every
    # interval's coupled pass (kept in sync with ``mapping`` there).
    map_l = mapping.tolist() if cache is not None else None
    size_l = sizes.tolist() if cache is not None else None
    # Telemetry backlog: completions not yet reported at a boundary.
    pend_c: List[np.ndarray] = []
    pend_seq: List[np.ndarray] = []
    pend_r: List[np.ndarray] = []
    gap_lo = [0] * len(bank.avail)
    waiting = np.empty(0, dtype=np.int64)  # dispatched, not yet in service
    lo = 0
    k = 0
    t_start = 0.0
    while True:
        t_end = min((k + 1) * ci, T)
        last = t_end >= T
        hi = int(np.searchsorted(t_all, t_end, side="left"))
        sl = slice(lo, hi)
        if hi > lo:
            if cache is not None:
                _serve_coupled(
                    bank, policy, mapping, free, sizes, fid[sl], t_all[sl],
                    tr_all[sl],
                    None if is_write is None else is_write[sl],
                    cache, starts[sl], d_req[sl],
                    heap=heap, base_index=lo, flush=False,
                    map_l=map_l, size_l=size_l,
                )
            elif is_write is not None:
                _serve_segmented(
                    bank, policy, mapping, free, sizes, fid[sl], t_all[sl],
                    tr_all[sl], is_write[sl], starts[sl], d_req[sl],
                )
            else:
                d_seg = mapping[fid[sl]]
                bad = np.flatnonzero(d_seg < 0)
                if bad.size:
                    raise SimulationError(
                        f"read of unallocated file {int(fid[lo + bad[0]])}; "
                        "allocate it first"
                    )
                _serve_segment(bank, d_seg, t_all[sl], tr_all[sl], starts[sl])
                d_req[sl] = d_seg
            # Queue newly served requests' completions for the telemetry
            # feed (cache hits complete at their arrival instant; requests
            # censored at the horizon never complete, like the event
            # engine's cutoff pre-empting their completion events).
            d_sl = d_req[sl]
            served = d_sl >= 0
            c_sl = np.where(served, starts[sl] + oh + tr_all[sl], t_all[sl])
            r_sl = np.where(
                served, c_sl - t_all[sl], float(cache_hit_latency)
            )
            keep = c_sl < T
            pend_c.append(c_sl[keep])
            pend_seq.append(np.arange(lo, hi, dtype=np.int64)[keep])
            pend_r.append(r_sl[keep])

        # -- boundary: assemble the interval's telemetry -----------------------
        c = np.concatenate(pend_c) if pend_c else np.empty(0)
        seq = np.concatenate(pend_seq) if pend_seq else np.empty(0, np.int64)
        r = np.concatenate(pend_r) if pend_r else np.empty(0)
        # Strictly-before: a completion landing exactly on a boundary is
        # observed in the *next* interval, matching the event engine's
        # control event (armed at the previous boundary, hence an earlier
        # FIFO id than completions scheduled during the interval) firing
        # first at the shared instant.  The one residual measure-zero tie
        # — a service spanning a whole interval and completing exactly at
        # its end — still orders the other way in the event loop.
        done = c < t_end
        order = np.lexsort((seq[done], c[done]))
        responses = r[done][order]
        pend_c = [c[~done]]
        pend_seq = [seq[~done]]
        pend_r = [r[~done]]
        gaps = []
        for d, log in enumerate(bank.gap_log):
            gaps.append(log[gap_lo[d]:])
            gap_lo[d] = len(log)
        # Dispatched but not yet in service at the boundary (the event
        # drive pops a request from its queue exactly at service start).
        # ``starts`` never changes once computed and boundaries only move
        # forward, so a request that has entered service can never wait
        # again — carry only the still-waiting indices across boundaries
        # instead of rescanning the whole prefix.
        fresh = np.arange(lo, hi, dtype=np.int64)[d_req[sl] >= 0]
        candidates = np.concatenate((waiting, fresh))
        waiting = candidates[starts[candidates] > t_end]
        queue_depth = np.bincount(
            d_req[waiting], minlength=len(bank.avail)
        ).astype(float)
        if last:
            dpm.finalize(t_start, t_end, responses, gaps, queue_depth)
            break
        bank.push_thresholds(
            dpm.advance(t_start, t_end, responses, gaps, queue_depth)
        )
        t_start = t_end
        lo = hi
        k += 1
    if cache is not None:
        admit = cache.admit
        while heap and heap[0][0] < T:
            _, _, hf, hs = heappop(heap)
            admit(hf, hs)


def _controlled_power_matrix(
    bank: "_ControlledBank",
    records,
    d_s: np.ndarray,
    s_s: np.ndarray,
    tr_s: np.ndarray,
    power_model: PowerModel,
    num_disks: int,
) -> np.ndarray:
    """Per-interval per-disk mean power from the bank's logged episodes.

    The event engine diffs live drive energies at each boundary; this
    reconstructs the same physical quantity from the controlled run's
    state spans (seek/active per request, logged spin transitions, idle
    as the window residual), so the two traces agree to float-accumulation
    noise.
    """
    from repro.control.telemetry import bin_spans

    # Control intervals are contiguous by construction, so the records'
    # bounds collapse to one ascending edge vector.
    edges = np.array(
        [records[0].t_start] + [rec.t_end for rec in records], dtype=float
    )
    windows = np.diff(edges)

    def spans(entries):
        if not entries:
            empty = np.empty(0)
            return np.empty(0, np.int64), empty, empty
        arr = np.asarray(entries, dtype=float)
        return arr[:, 0].astype(np.int64), arr[:, 1], arr[:, 2]

    seek = bin_spans(d_s, s_s, s_s + bank.oh, edges, num_disks)
    active = bin_spans(
        d_s, s_s + bank.oh, s_s + bank.oh + tr_s, edges, num_disks
    )
    spindown = bin_spans(*spans(bank.sd_spans), edges, num_disks)
    spinup = bin_spans(*spans(bank.su_spans), edges, num_disks)
    standby = bin_spans(*spans(bank.sb_spans), edges, num_disks)
    idle = np.clip(
        windows[:, None] - (seek + active + spindown + spinup + standby),
        0.0,
        None,
    )
    energy = (
        power_model.power(DiskState.SEEK) * seek
        + power_model.power(DiskState.ACTIVE) * active
        + power_model.power(DiskState.SPINDOWN) * spindown
        + power_model.power(DiskState.SPINUP) * spinup
        + power_model.power(DiskState.STANDBY) * standby
        + power_model.power(DiskState.IDLE) * idle
    )
    return energy / windows[:, None]


def _controlled_ladder_power_matrix(
    bank: "_ControlledLadderBank",
    records,
    d_s: np.ndarray,
    s_s: np.ndarray,
    tr_s: np.ndarray,
    spec: DiskSpec,
    num_disks: int,
) -> np.ndarray:
    """Ladder analogue of :func:`_controlled_power_matrix`: per-interval
    per-disk mean power from the controlled ladder bank's logged episodes
    (seek/active per request, park/descent/wake spans per rung, rung-0
    park as the window residual)."""
    from repro.control.telemetry import bin_spans

    edges = np.array(
        [records[0].t_start] + [rec.t_end for rec in records], dtype=float
    )
    windows = np.diff(edges)

    def spans(entries):
        if not entries:
            empty = np.empty(0)
            return np.empty(0, np.int64), empty, empty
        arr = np.asarray(entries, dtype=float)
        return arr[:, 0].astype(np.int64), arr[:, 1], arr[:, 2]

    seek = bin_spans(d_s, s_s, s_s + bank.oh, edges, num_disks)
    active = bin_spans(
        d_s, s_s + bank.oh, s_s + bank.oh + tr_s, edges, num_disks
    )
    rungs = bank.ladder.rungs
    occupied = seek + active
    energy = spec.seek_power * seek + spec.active_power * active
    for i in range(1, len(rungs)):
        park = bin_spans(*spans(bank.park_spans[i]), edges, num_disks)
        down = bin_spans(*spans(bank.down_spans[i]), edges, num_disks)
        wake = bin_spans(*spans(bank.wake_spans[i]), edges, num_disks)
        occupied = occupied + park + down + wake
        energy = (
            energy
            + rungs[i].power * park
            + rungs[i].down_power * down
            + rungs[i].wake_power * wake
        )
    idle = np.clip(windows[:, None] - occupied, 0.0, None)
    energy = energy + rungs[0].power * idle
    return energy / windows[:, None]


def simulate_fast(
    sizes: np.ndarray,
    mapping: np.ndarray,
    spec: DiskSpec,
    num_disks: int,
    threshold: float,
    stream,
    duration: float,
    label: str = "run",
    cache=None,
    cache_hit_latency: float = 0.0,
    usable_capacity: Optional[float] = None,
    write_policy=None,
    dpm=None,
    ladder=None,
) -> SimulationResult:
    """Simulate ``stream`` against ``mapping`` without the event loop.

    Parameters mirror what :class:`~repro.system.storage.StorageSystem`
    assembles: ``sizes``/``mapping`` are dense per-file arrays, ``threshold``
    is the effective idleness threshold (``inf`` disables spin-down) and
    ``duration`` the measurement horizon.  ``cache`` is an optional
    :class:`~repro.cache.base.BaseCache` instance (hits respond with
    ``cache_hit_latency``); ``usable_capacity`` is the per-disk byte budget
    the write allocation spends (defaults to the spec's raw capacity, like
    the dispatcher); ``write_policy`` selects the placement strategy (a
    registry name, a policy instance, or ``None`` for the paper's §1.1
    ``spinning_best_fit``).  ``dpm`` is an optional fresh
    :class:`~repro.control.controller.ThresholdController` (one per run)
    engaging the interval-segmented controlled path — ``None`` (or a
    static policy, which :meth:`StorageConfig.dpm_controller` maps to
    ``None``) keeps the fixed-threshold paths byte-identical to the
    pre-control kernel.  ``ladder`` is an optional
    :class:`~repro.disk.dpm.DpmLadder`: the run replays through the
    per-rung :class:`_LadderBank` recursion (or
    :class:`_ControlledLadderBank` under a dynamic policy, with
    ``threshold``/the controller vector scaling the descent schedule),
    and ``state_durations`` is keyed by the ladder's timeline labels
    instead of :class:`DiskState`.  Returns the same
    :class:`~repro.system.metrics.SimulationResult` the event kernel
    produces, including the post-run ``final_mapping`` and — under
    control — the per-interval traces in ``extra["dpm"]``.  The caller's
    ``mapping`` is not mutated; writes allocate against an internal copy.
    """
    if duration <= 0:
        raise ConfigError("duration must be positive")
    T = float(duration)
    times = np.asarray(stream.times, dtype=float)
    file_ids = np.asarray(stream.file_ids, dtype=np.int64)
    # Every path below relies on time-sorted arrivals (stable per-disk
    # grouping, the global merge); the event engine's drive_stream raises
    # on out-of-order times, so match it rather than silently reordering.
    if times.size > 1 and bool(np.any(np.diff(times) < 0)):
        bad = int(np.argmax(np.diff(times) < 0)) + 1
        raise SimulationError(
            "request stream times must be non-decreasing: got "
            f"{times[bad]} after {times[bad - 1]}"
        )
    sizes = np.asarray(sizes, dtype=float)
    mapping = np.asarray(mapping, dtype=np.int64).copy()
    if mapping.shape != sizes.shape:
        raise SimulationError("mapping and sizes must align per file id")
    if mapping.size and int(mapping.max()) >= num_disks:
        raise SimulationError(
            f"mapping references disk {int(mapping.max())} but the pool has "
            f"only {num_disks} disks"
        )
    usable = spec.capacity if usable_capacity is None else float(usable_capacity)
    free = initial_free_bytes(mapping, sizes, usable, num_disks)
    validate_free_bytes(free, usable)
    policy = make_placement_policy(write_policy)
    policy.reset(num_disks)

    # The event kernel's cutoff is strict: the URGENT stop event at T
    # pre-empts arrival and completion events scheduled at exactly T.
    live = times < T
    t_all = times[live]
    fid = file_ids[live]
    arrivals = int(t_all.size)

    kinds = getattr(stream, "kinds", None)
    is_write: Optional[np.ndarray] = None
    if kinds is not None:
        w = np.asarray(kinds)[live] == WRITE
        if w.any():
            is_write = w

    oh = spec.access_overhead
    tr_all = sizes[fid] / spec.transfer_rate

    starts = np.empty(arrivals, dtype=float)
    d_req = np.empty(arrivals, dtype=np.int64)

    if dpm is not None:
        if dpm.num_disks != num_disks:
            raise ConfigError(
                f"controller sized for {dpm.num_disks} disks but the pool "
                f"has {num_disks}"
            )
        if ladder is not None:
            bank = _ControlledLadderBank(
                num_disks, dpm.thresholds, ladder, spec, T, dpm.interval
            )
        else:
            bank = _ControlledBank(
                num_disks, dpm.thresholds, spec, T, dpm.interval
            )
        _serve_controlled(
            bank, dpm, policy, mapping, free, sizes, fid, t_all, tr_all,
            is_write, cache, cache_hit_latency, starts, d_req,
        )
    else:
        bank = (
            _LadderBank(num_disks, threshold, ladder, spec, T)
            if ladder is not None
            else _DiskBank(num_disks, threshold, spec, T)
        )
        if cache is not None:
            _serve_coupled(
                bank, policy, mapping, free, sizes, fid, t_all, tr_all,
                is_write, cache, starts, d_req,
            )
        elif is_write is not None:
            _serve_segmented(
                bank, policy, mapping, free, sizes, fid, t_all, tr_all,
                is_write, starts, d_req,
            )
        else:
            disk = mapping[fid]
            if arrivals and int(disk.min()) < 0:
                bad = int(fid[int(np.argmin(disk))])
                raise SimulationError(
                    f"read of unallocated file {bad}; allocate it first"
                )
            _serve_segment(bank, disk, t_all, tr_all, starts)
            d_req = disk

    # -- vectorized accounting over the banked state ---------------------------

    # Spin accounting with trailing idleness applied (a disk whose
    # post-drain gap outlasts its threshold spins down — or descends the
    # ladder — before the horizon).
    if ladder is not None:
        spinups, spindowns = bank.apply_tail()
    else:
        spindown_time, spinup_time, standby_time, spinups, spindowns = (
            bank.tail_arrays()
        )

    served = d_req >= 0
    hits = int(arrivals - int(served.sum()))
    d_s = d_req[served] if hits else d_req
    s_s = starts[served] if hits else starts
    tr_s = tr_all[served] if hits else tr_all
    t_s = t_all[served] if hits else t_all

    # Vectorized service accounting, truncated at the horizon.
    seek_time = np.bincount(
        d_s, weights=np.clip(T - s_s, 0.0, oh), minlength=num_disks
    )
    active_time = np.bincount(
        d_s,
        weights=np.clip(T - (s_s + oh), 0.0, tr_s),
        minlength=num_disks,
    )
    if ladder is None:
        idle_time = np.clip(
            T
            - (
                seek_time
                + active_time
                + spindown_time
                + spinup_time
                + standby_time
            ),
            0.0,
            None,
        )

    completion = s_s + oh + tr_s
    done = completion < T
    resp_completion = completion[done]
    resp_values = resp_completion - t_s[done]
    if hits:
        hit_times = t_all[~served]
        resp_completion = np.concatenate((resp_completion, hit_times))
        resp_values = np.concatenate(
            (resp_values, np.full(hits, float(cache_hit_latency)))
        )
    # Report response times in completion order, like the dispatcher does.
    response_times = resp_values[np.argsort(resp_completion, kind="stable")]

    power_model = PowerModel(spec)
    if ladder is not None:
        # Ladder runs are keyed by timeline label; the accumulation order
        # (rung 0, parks, seek, active, wakes, descents) makes the
        # two_state ladder's float arithmetic term-for-term identical to
        # the classic DiskState path below.
        rungs = ladder.rungs
        park = [np.asarray(p, dtype=float) for p in bank.park_t]
        down = [np.asarray(p, dtype=float) for p in bank.down_t]
        wake = [np.asarray(p, dtype=float) for p in bank.wake_t]
        occupied = seek_time + active_time
        for arr in down[1:]:
            occupied = occupied + arr
        for arr in wake[1:]:
            occupied = occupied + arr
        for arr in park[1:]:
            occupied = occupied + arr
        idle_time = np.clip(T - occupied, 0.0, None)
        per_state = {rungs[0].name: idle_time}
        for i in range(1, len(rungs)):
            per_state[rungs[i].name] = park[i]
        per_state["seek"] = seek_time
        per_state["active"] = active_time
        for i in range(1, len(rungs)):
            per_state[f"wake:{rungs[i].name}"] = wake[i]
        for i in range(1, len(rungs)):
            per_state[f"down:{rungs[i].name}"] = down[i]
        powers = ladder.power_table(spec)
        energy_per_disk = np.zeros(num_disks, dtype=float)
        for state, per_disk in per_state.items():
            energy_per_disk += powers[state] * per_disk
    else:
        per_state = {
            DiskState.IDLE: idle_time,
            DiskState.STANDBY: standby_time,
            DiskState.SEEK: seek_time,
            DiskState.ACTIVE: active_time,
            DiskState.SPINUP: spinup_time,
            DiskState.SPINDOWN: spindown_time,
        }
        energy_per_disk = np.zeros(num_disks, dtype=float)
        for state, per_disk in per_state.items():
            energy_per_disk += power_model.power(state) * per_disk
    state_durations = {
        state: float(per_disk.sum())
        for state, per_disk in per_state.items()
        if per_disk.any()
    }

    extra = {}
    if dpm is not None:
        if ladder is not None:
            dpm.attach_power(
                _controlled_ladder_power_matrix(
                    bank, dpm.records, d_s, s_s, tr_s, spec, num_disks
                )
            )
        else:
            dpm.attach_power(
                _controlled_power_matrix(
                    bank, dpm.records, d_s, s_s, tr_s, power_model, num_disks
                )
            )
        extra["dpm"] = dpm.extra()

    return SimulationResult(
        algorithm=label,
        duration=T,
        num_disks=num_disks,
        energy=float(energy_per_disk.sum()),
        energy_per_disk=energy_per_disk,
        state_durations=state_durations,
        response_times=response_times,
        arrivals=arrivals,
        completions=int(response_times.size),
        spinups=int(spinups.sum()),
        spindowns=int(spindowns.sum()),
        always_on_energy=num_disks * power_model.always_on_energy(T),
        cache_stats=cache.stats if cache is not None else None,
        requests_per_disk=np.bincount(d_s, minlength=num_disks).astype(
            np.int64
        ),
        spinups_per_disk=spinups,
        final_mapping=mapping,
        extra=extra,
    )
