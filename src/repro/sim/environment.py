"""The simulation environment: clock, event queue and run loop."""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from math import inf
from typing import Any, Generator, Iterable, Optional, Union

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout

__all__ = ["Environment", "EmptySchedule", "NORMAL", "URGENT"]

#: Scheduling priorities; URGENT events at a timestamp run before NORMAL ones.
URGENT = 0
NORMAL = 1


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class _StopSimulation(Exception):
    """Internal control-flow exception ending :meth:`Environment.run`."""

    def __init__(self, event: Event) -> None:
        super().__init__(event)
        self.event = event

    @classmethod
    def callback(cls, event: Event) -> None:
        if event._ok:
            raise cls(event)
        raise event._value


class Environment:
    """Discrete-event execution environment.

    Keeps the simulation clock and a priority queue of triggered events.
    Events scheduled at the same timestamp are processed in FIFO order of
    scheduling (stable, deterministic), with URGENT events first.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = count()
        #: The process currently executing (or ``None``); used to forbid
        #: self-interrupts and useful for debugging.
        self.active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` after now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition triggering when any of ``events`` triggers."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition triggering when all of ``events`` have triggered."""
        return AllOf(self, events)

    # -- scheduling & stepping -------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else inf

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            when, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Nobody handled the failure: crash the simulation loudly.
            raise event._value

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until no events remain;
            a number
                run up to (and including urgent events at) that time, then
                stop with ``now == until``;
            an :class:`Event`
                run until that event is processed and return its value.

        Returns
        -------
        The value of the ``until`` event if one was given, else ``None``.
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at < self._now:
                raise ValueError(
                    f"until={at} lies in the past (now={self._now})"
                )
            stop = Event(self)
            stop._ok = True
            stop._value = None
            self._schedule(stop, delay=at - self._now, priority=URGENT)
            until = stop

        if until is not None:
            if until.callbacks is None:  # already processed
                if until._ok:
                    return until._value
                raise until._value
            until.callbacks.append(_StopSimulation.callback)

        while True:
            try:
                self.step()
            except _StopSimulation as stop:
                # Stop events from a *previous* run() that aborted (e.g. a
                # crashed process) may still be queued; only our own event
                # ends this run — stale ones are ignored.
                if stop.event is until:
                    return stop.event._value
            except EmptySchedule:
                if until is not None and not until.triggered:
                    raise SimulationError(
                        "no scheduled events left but the 'until' event was "
                        "never triggered"
                    ) from None
                return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Environment now={self._now} pending={len(self._queue)}>"
