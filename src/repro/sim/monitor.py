"""Measurement utilities: state timelines and streaming statistics.

These are the accounting substrate for the disk power model (time spent per
power state -> energy) and for response-time statistics.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["StateTimeline", "Tally", "TimeWeighted"]


class StateTimeline:
    """Tracks a piecewise-constant state variable over simulated time.

    Accumulates the total duration spent in each state and the number of
    transitions; optionally records the full transition history.

    Parameters
    ----------
    env:
        The simulation environment (only ``env.now`` is used).
    initial_state:
        State at creation time.
    record_history:
        If true, keep a list of ``(time, state)`` transition records.
    """

    def __init__(self, env, initial_state: Hashable, record_history: bool = False) -> None:
        self._env = env
        self._state = initial_state
        self._since = env.now
        self._start = env.now
        self._durations: Dict[Hashable, float] = {}
        self._transitions = 0
        self.history: Optional[List[Tuple[float, Hashable]]] = (
            [(env.now, initial_state)] if record_history else None
        )

    @property
    def state(self) -> Hashable:
        """Current state."""
        return self._state

    @property
    def transitions(self) -> int:
        """Number of state *changes* recorded so far."""
        return self._transitions

    def set(self, new_state: Hashable) -> None:
        """Enter ``new_state`` at the current simulation time."""
        now = self._env.now
        elapsed = now - self._since
        if elapsed:
            self._durations[self._state] = (
                self._durations.get(self._state, 0.0) + elapsed
            )
        self._since = now
        if new_state != self._state:
            self._transitions += 1
            if self.history is not None:
                self.history.append((now, new_state))
        self._state = new_state

    def durations(self) -> Dict[Hashable, float]:
        """Total time spent per state, including the still-open interval."""
        out = dict(self._durations)
        open_interval = self._env.now - self._since
        if open_interval:
            out[self._state] = out.get(self._state, 0.0) + open_interval
        return out

    def total_time(self) -> float:
        """Total observed time (now minus creation time)."""
        return self._env.now - self._start

    def weighted_total(self, weights: Dict[Hashable, float]) -> float:
        """Integrate ``sum(weights[state] * time_in_state)``.

        Used to turn per-state power figures into energy.  States missing
        from ``weights`` raise ``KeyError`` to surface accounting bugs.
        """
        return sum(weights[s] * t for s, t in self.durations().items())


class Tally:
    """Streaming scalar statistics (Welford) with optional sample retention.

    Parameters
    ----------
    keep_samples:
        If true, every observation is kept (sorted insert) so that
        :meth:`percentile` is available.  For the request volumes in this
        library (~1e5) this is cheap.
    """

    def __init__(self, keep_samples: bool = False) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._sum = 0.0
        self._samples: Optional[List[float]] = [] if keep_samples else None

    def add(self, x: float) -> None:
        """Record one observation."""
        x = float(x)
        self._n += 1
        self._sum += x
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x
        if self._samples is not None:
            insort(self._samples, x)

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        """Sample mean (``nan`` when empty)."""
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``nan`` for n < 2)."""
        return self._m2 / (self._n - 1) if self._n > 1 else math.nan

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    @property
    def minimum(self) -> float:
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._n else math.nan

    def percentile(self, q: float) -> float:
        """Empirical ``q``-quantile, ``q`` in [0, 1] (nearest-rank).

        Requires ``keep_samples=True``.
        """
        if self._samples is None:
            raise ValueError("Tally was created with keep_samples=False")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self._samples:
            return math.nan
        idx = min(len(self._samples) - 1, max(0, math.ceil(q * len(self._samples)) - 1))
        return self._samples[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Tally n={self._n} mean={self.mean:.4g}>"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    >>> class _Env:  # doctest helper
    ...     now = 0.0
    >>> env = _Env()
    >>> tw = TimeWeighted(env, 2.0)
    >>> env.now = 10.0
    >>> tw.set(4.0)
    >>> env.now = 20.0
    >>> tw.average()
    3.0
    """

    def __init__(self, env, initial_value: float = 0.0) -> None:
        self._env = env
        self._value = float(initial_value)
        self._since = env.now
        self._start = env.now
        self._integral = 0.0

    @property
    def value(self) -> float:
        """Current value of the signal."""
        return self._value

    def set(self, value: float) -> None:
        """Change the signal's value at the current time."""
        now = self._env.now
        self._integral += self._value * (now - self._since)
        self._since = now
        self._value = float(value)

    def integral(self) -> float:
        """Integral of the signal from creation until now."""
        return self._integral + self._value * (self._env.now - self._since)

    def average(self) -> float:
        """Time-weighted mean from creation until now (``nan`` if no time)."""
        span = self._env.now - self._start
        return self.integral() / span if span else math.nan
