"""Core event types for the simulation kernel.

The semantics follow SimPy closely: an :class:`Event` is a one-shot
occurrence that processes can wait on by ``yield``-ing it.  Once an event is
*triggered* (``succeed``/``fail``) it is scheduled on the environment's queue;
when the environment pops it, the event becomes *processed* and its callbacks
run.  A :class:`Process` wraps a generator and is itself an event that
triggers when the generator terminates, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
]


class _Pending:
    """Sentinel for the value of an untriggered event."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _Pending()


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    The interrupted process may catch the exception and continue; the event
    it was waiting on is detached and will no longer resume it.
    """

    @property
    def cause(self) -> Any:
        """The ``cause`` argument passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that processes can wait for.

    Parameters
    ----------
    env:
        The :class:`~repro.sim.environment.Environment` the event lives in.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env) -> None:
        self.env = env
        #: Callables invoked with the event once it is processed.  ``None``
        #: after processing.
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """``True`` once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the event loop has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or failure exception).  Only valid once triggered."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` and schedule it."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception`` and schedule it.

        If no waiting process handles (defuses) the failure, the exception is
        re-raised out of :meth:`Environment.run`.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, env, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Process(Event):
    """A generator-coroutine process.

    The wrapped generator ``yield``s events; the process resumes when the
    yielded event is processed, receiving the event's value (or having the
    failure exception thrown into it).  The process is itself an event that
    succeeds with the generator's return value when it finishes.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env, generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Kick-start on an already-succeeded init event at the current time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._schedule(init)
        self._target: Optional[Event] = init

    @property
    def is_alive(self) -> bool:
        """``True`` while the wrapped generator has not terminated."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on (or ``None``)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process is detached from the event it was waiting on; that event
        may still fire later but will no longer resume this process.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True  # delivery below handles it
        event.callbacks.append(self._deliver_interrupt)
        self.env._schedule(event, priority=0)  # URGENT

    # -- internal machinery -------------------------------------------------

    def _deliver_interrupt(self, event: Event) -> None:
        if self.triggered:  # terminated before the interrupt was delivered
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self.env.active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The process handles the failure (defuses it).
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self)
                break
            except BaseException as exc:  # process died
                self._ok = False
                self._value = exc
                self.env._schedule(self)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                try:
                    self._generator.throw(exc)
                except BaseException:
                    pass  # the process dies regardless of what it does
                self._ok = False
                self._value = exc
                self.env._schedule(self)
                break

            if next_event.processed:
                # Already over: loop and feed its value straight back in.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            break
        self.env.active_process = None


class ConditionValue(dict):
    """Mapping of triggered sub-event -> value produced by a condition.

    Behaves like a dict keyed by the :class:`Event` objects; also exposes
    :meth:`of` for readable access.
    """

    def of(self, event: Event) -> Any:
        """Return the value contributed by ``event`` (KeyError if absent)."""
        return self[event]


class Condition(Event):
    """An event that triggers based on the outcomes of several sub-events.

    Parameters
    ----------
    env:
        Owning environment.
    evaluate:
        ``evaluate(events, triggered_count) -> bool`` deciding success.
    events:
        The sub-events observed.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(self, env, evaluate: Callable, events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = tuple(events)
        self._evaluate = evaluate
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition spans multiple environments")
        if not self._events:
            self.succeed(ConditionValue())
            return
        for ev in self._events:
            if ev.processed:
                # Already over before the condition existed.
                self._observe(ev)
            else:
                # Triggered-but-unprocessed events (e.g. a pending Timeout)
                # still run their callbacks when the loop reaches them.
                ev.callbacks.append(self._observe)

    def _collect(self) -> ConditionValue:
        result = ConditionValue()
        for ev in self._events:
            # Only *processed* events have actually occurred; a Timeout is
            # "triggered" from birth but pending until the loop reaches it.
            if ev.processed and ev._ok:
                result[ev] = ev._value
        return result

    def _observe(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True  # condition already settled
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect())


def _any_evaluate(events, count: int) -> bool:
    return count >= 1


def _all_evaluate(events, count: int) -> bool:
    return count == len(events)


class AnyOf(Condition):
    """Condition that triggers as soon as any sub-event triggers."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]) -> None:
        super().__init__(env, _any_evaluate, events)


class AllOf(Condition):
    """Condition that triggers once all sub-events have triggered."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]) -> None:
        super().__init__(env, _all_evaluate, events)
