"""Deterministic random-number stream management.

Every stochastic component of the library takes a :class:`numpy.random.Generator`
so that experiments are exactly reproducible and independent components use
independent streams (via :class:`numpy.random.SeedSequence` spawning).
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

__all__ = ["rng_from_seed", "spawn_rngs"]

SeedLike = Union[int, None, np.random.Generator, np.random.SeedSequence]


def rng_from_seed(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer, a ``SeedSequence`` or an
    existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed.

    >>> a, b = spawn_rngs(42, 2)
    >>> bool((a.integers(0, 100, 50) == b.integers(0, 100, 50)).all())
    False
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
