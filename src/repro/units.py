"""Unit constants and formatting helpers.

Conventions used throughout :mod:`repro`:

* sizes are in **bytes** (decimal SI multiples, matching disk datasheets:
  ``72 MB/s`` means ``72e6`` bytes/second, ``500 GB`` means ``500e9`` bytes),
* times are in **seconds**,
* power is in **watts**, energy in **joules**.
"""

from __future__ import annotations

#: Decimal byte multiples (disk vendors use SI units).
KB = 1_000.0
MB = 1_000_000.0
GB = 1_000_000_000.0
TB = 1_000_000_000_000.0

#: Binary byte multiples, for memory-style quantities.
KiB = 1024.0
MiB = 1024.0**2
GiB = 1024.0**3
TiB = 1024.0**4

#: Time multiples in seconds.
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3_600.0
DAY = 86_400.0


def format_bytes(n: float) -> str:
    """Render a byte count with an appropriate SI suffix.

    >>> format_bytes(544_000_000)
    '544.0 MB'
    """
    n = float(n)
    for limit, suffix in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(n) >= limit:
            return f"{n / limit:.1f} {suffix}"
    return f"{n:.0f} B"


def format_time(seconds: float) -> str:
    """Render a duration with an appropriate suffix.

    >>> format_time(7200)
    '2.00 h'
    """
    s = float(seconds)
    if abs(s) >= HOUR:
        return f"{s / HOUR:.2f} h"
    if abs(s) >= MINUTE:
        return f"{s / MINUTE:.2f} min"
    if abs(s) >= 1.0:
        return f"{s:.2f} s"
    return f"{s * 1e3:.2f} ms"


def format_power(watts: float) -> str:
    """Render a power figure.

    >>> format_power(453.2)
    '453.2 W'
    """
    w = float(watts)
    if abs(w) >= 1e3:
        return f"{w / 1e3:.2f} kW"
    return f"{w:.1f} W"


def format_energy(joules: float) -> str:
    """Render an energy figure, switching to kWh for large values.

    >>> format_energy(3_600_000)
    '1.000 kWh'
    """
    j = float(joules)
    if abs(j) >= 3.6e6:
        return f"{j / 3.6e6:.3f} kWh"
    if abs(j) >= 1e3:
        return f"{j / 1e3:.1f} kJ"
    return f"{j:.1f} J"
