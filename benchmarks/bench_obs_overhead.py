"""Bench: observer overhead on the simulation hot paths.

The observability contract (see ``repro.obs.hooks``) promises that an
absent or disabled observer leaves the kernels' hot loops untouched:
``active_observer`` normalizes both to ``None`` up front, so the observed
branches never execute.  This bench enforces that promise as a budget —
the no-op-observer run must stay within **2%** of the bare run — and
keeps an *active* ``TraceRecorder`` within a loose sanity bound so the
emission paths cannot quietly become pathological.

Interleaved best-of-N timing: each round times every variant back to
back, so a slow patch of a shared CI runner penalizes all variants
equally instead of flipping the ratio.
"""

import math
import time

import numpy as np
import pytest

from repro.obs.hooks import NULL_OBSERVER
from repro.obs.trace import TraceRecorder
from repro.system import StorageConfig, StorageSystem
from repro.workload.generator import SyntheticWorkloadParams, generate_workload

#: The stated budget: a no-op observer costs at most 2% on the fast
#: kernel.  The event engine's per-run wall time is ~100x longer and
#: dominated by event dispatch, so the same identical-code-path claim is
#: checked there under a noise-tolerant bound instead.
NOOP_BUDGET_FAST = 1.02
NOOP_BUDGET_EVENT = 1.15

#: Active tracing is allowed to cost real time (it buffers every span),
#: but must stay within the same order of magnitude as the bare run.
TRACE_BOUND = 3.0


def _scenario(scale: float):
    workload = generate_workload(
        SyntheticWorkloadParams(
            n_files=1_500,
            arrival_rate=40.0,
            duration=max(150.0, 600.0 * scale),
            seed=21,
        )
    )
    num_disks = 24
    mapping = np.arange(workload.catalog.n, dtype=np.int64) % num_disks
    cfg = StorageConfig(
        num_disks=num_disks, load_constraint=0.7, idleness_threshold=5.0
    )
    return workload, mapping, cfg


def _timed_variants(run, observers, rounds):
    """Interleaved best-of-``rounds`` wall time per observer variant."""
    best = [math.inf] * len(observers)
    results = [None] * len(observers)
    for _ in range(rounds):
        for i, observer in enumerate(observers):
            t0 = time.perf_counter()
            results[i] = run(observer)
            best[i] = min(best[i], time.perf_counter() - t0)
    return results, [max(b, 1e-9) for b in best]


def _check_overhead(engine, budget, rounds, scale, capsys):
    workload, mapping, cfg = _scenario(scale)
    cfg = cfg.with_overrides(engine=engine)

    def run(observer):
        system = StorageSystem(workload.catalog, mapping, cfg)
        return system.run(workload.stream, observer=observer)

    recorder = TraceRecorder()
    (bare, noop, traced), (bare_s, noop_s, traced_s) = _timed_variants(
        run, [None, NULL_OBSERVER, recorder], rounds
    )

    # The three runs are the same simulation, bit for bit.
    assert np.array_equal(bare.response_times, noop.response_times)
    assert np.array_equal(bare.response_times, traced.response_times)
    assert np.array_equal(bare.energy_per_disk, traced.energy_per_disk)
    assert recorder.state_spans  # tracing actually recorded the run

    noop_ratio = noop_s / bare_s
    trace_ratio = traced_s / bare_s
    with capsys.disabled():
        print(
            f"\n[obs-overhead:{engine}] bare {bare_s * 1e3:.2f} ms, "
            f"noop {noop_ratio:.3f}x (budget {budget:.2f}x), "
            f"traced {trace_ratio:.2f}x (bound {TRACE_BOUND:.1f}x)"
        )
    assert noop_ratio <= budget, (
        f"no-op observer costs {noop_ratio:.3f}x on the {engine} engine "
        f"(budget {budget:.2f}x) — a hot path stopped honoring "
        f"active_observer()"
    )
    assert trace_ratio <= TRACE_BOUND


def test_noop_observer_overhead_fast(scale, capsys):
    """Fast kernel: the no-op observer must cost <= 2%."""
    _check_overhead("fast", NOOP_BUDGET_FAST, rounds=9, scale=scale, capsys=capsys)


def test_noop_observer_overhead_event(scale, capsys):
    """Event engine: same identical-code-path claim, noise-tolerant bound."""
    _check_overhead("event", NOOP_BUDGET_EVENT, rounds=7, scale=scale, capsys=capsys)


def test_disabled_observer_is_normalized_away():
    """The 2% budget is structural: a disabled observer becomes ``None``
    before the kernels ever see it, so the hot loops take their original
    branches (this is what the timing budget above is enforcing)."""
    from repro.obs.hooks import active_observer

    assert active_observer(NULL_OBSERVER) is None
    recorder = TraceRecorder()
    recorder.enabled = False
    assert active_observer(recorder) is None
