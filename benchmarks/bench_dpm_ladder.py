"""Bench (extension): multi-state DPM ladders vs the paper's two-state policy.

The related work the paper builds on allows n power states; this bench
measures, in the simulator, how much an intermediate "nap" state saves on
gap mixes where the 53.3 s two-state threshold is too blunt, and times the
closed-form schedule construction.
"""

import numpy as np

from repro.disk import ST3500630AS
from repro.disk.dpm import DpmState, MultiStateDpmPolicy
from repro.disk.multistate import MultiStateDiskDrive
from repro.reporting.table import format_table
from repro.sim import Environment
from repro.units import MB

SPEC = ST3500630AS

NAP_LADDER = [
    DpmState("idle", 9.3, 0.0, 0.0),
    DpmState("nap", 4.0, 60.0, 2.0),
    DpmState("standby", 0.8, 453.0, 15.0),
]


def _simulate(policy: MultiStateDpmPolicy, gaps: np.ndarray):
    env = Environment()
    drive = MultiStateDiskDrive(env, SPEC, policy)
    times = np.cumsum(gaps)

    def feeder(env):
        for t in times:
            yield env.timeout(t - env.now)
            drive.submit(0, 72 * MB)

    env.process(feeder(env))
    env.run(until=float(times[-1]) + 30.0)
    return drive.mean_power(), drive.stats.response.mean


def test_nap_state_payoff(benchmark, capsys):
    """Three-state vs two-state power on nap-sized gaps."""
    rng = np.random.default_rng(17)
    # Gap mix centred where the nap state pays: tens of seconds.
    gaps = rng.exponential(70.0, size=1_500)

    three = MultiStateDpmPolicy(NAP_LADDER)
    two = MultiStateDpmPolicy.two_state(SPEC)

    def run_three():
        return _simulate(three, gaps)

    power3, resp3 = benchmark.pedantic(run_three, rounds=1, iterations=1)
    power2, resp2 = _simulate(two, gaps)

    with capsys.disabled():
        print()
        print(format_table(
            [
                ["two-state (paper)", f"{power2:.2f}", f"{resp2:.2f}"],
                ["idle/nap/standby", f"{power3:.2f}", f"{resp3:.2f}"],
            ],
            headers=["policy", "mean power (W)", "mean response (s)"],
            title="DPM ladder extension on Exp(70 s) gaps",
        ))

    # The nap rung must save power on this gap mix...
    assert power3 < power2
    # ...without a response blow-up (nap wakes in 2 s vs 15 s).
    assert resp3 < resp2 + 1.0


def test_schedule_construction_throughput(benchmark):
    states = [DpmState("s0", 10.0, 0.0)] + [
        DpmState(f"s{i}", 10.0 - 0.9 * i, 50.0 * i**1.5, i)
        for i in range(1, 11)
    ]
    policy = benchmark(MultiStateDpmPolicy, states)
    assert policy.thresholds() == sorted(policy.thresholds())
