"""Bench (extension): multi-state DPM ladders vs the paper's two-state policy.

The related work the paper builds on allows n power states; this bench
measures, in the simulator, how much an intermediate "nap" state saves on
gap mixes where the 53.3 s two-state threshold is too blunt, times the
closed-form schedule construction, and guards the array-level ladder
mode's fast-kernel speedup: ``StorageConfig(dpm_ladder=...)`` through the
per-rung ``_LadderBank`` recursion must beat the event engine >= 5x —
with and without online control — while agreeing to 1e-9.
"""

import math
import time

import numpy as np
import pytest

from repro.disk import ST3500630AS
from repro.disk.dpm import DpmState, MultiStateDpmPolicy
from repro.disk.multistate import MultiStateDiskDrive
from repro.reporting.table import format_table
from repro.sim import Environment
from repro.system import StorageConfig, StorageSystem, allocate
from repro.units import MB
from repro.workload.generator import SyntheticWorkloadParams, generate_workload

SPEC = ST3500630AS

NAP_LADDER = [
    DpmState("idle", 9.3, 0.0, 0.0),
    DpmState("nap", 4.0, 60.0, 2.0),
    DpmState("standby", 0.8, 453.0, 15.0),
]


def _simulate(policy: MultiStateDpmPolicy, gaps: np.ndarray):
    env = Environment()
    drive = MultiStateDiskDrive(env, SPEC, policy)
    times = np.cumsum(gaps)

    def feeder(env):
        for t in times:
            yield env.timeout(t - env.now)
            drive.submit(0, 72 * MB)

    env.process(feeder(env))
    env.run(until=float(times[-1]) + 30.0)
    return drive.mean_power(), drive.stats.response.mean


def test_nap_state_payoff(benchmark, capsys):
    """Three-state vs two-state power on nap-sized gaps."""
    rng = np.random.default_rng(17)
    # Gap mix centred where the nap state pays: tens of seconds.
    gaps = rng.exponential(70.0, size=1_500)

    three = MultiStateDpmPolicy(NAP_LADDER)
    two = MultiStateDpmPolicy.two_state(SPEC)

    def run_three():
        return _simulate(three, gaps)

    power3, resp3 = benchmark.pedantic(run_three, rounds=1, iterations=1)
    power2, resp2 = _simulate(two, gaps)

    with capsys.disabled():
        print()
        print(format_table(
            [
                ["two-state (paper)", f"{power2:.2f}", f"{resp2:.2f}"],
                ["idle/nap/standby", f"{power3:.2f}", f"{resp3:.2f}"],
            ],
            headers=["policy", "mean power (W)", "mean response (s)"],
            title="DPM ladder extension on Exp(70 s) gaps",
        ))

    # The nap rung must save power on this gap mix...
    assert power3 < power2
    # ...without a response blow-up (nap wakes in 2 s vs 15 s).
    assert resp3 < resp2 + 1.0


def test_schedule_construction_throughput(benchmark):
    states = [DpmState("s0", 10.0, 0.0)] + [
        DpmState(f"s{i}", 10.0 - 0.9 * i, 50.0 * i**1.5, i)
        for i in range(1, 11)
    ]
    policy = benchmark(MultiStateDpmPolicy, states)
    assert policy.thresholds() == sorted(policy.thresholds())


def _timed(run, rounds):
    best = math.inf
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - t0)
    return result, best


@pytest.mark.parametrize("dpm_policy", ["fixed", "adaptive_timeout"])
def test_fast_engine_speedup_ladder(scale, capsys, dpm_policy):
    """Array-level drpm4 ladder runs: the fast kernel must win >= 5x over
    the event engine (the ladder's extra per-gap work must not erase the
    batched kernel's advantage), agreeing to 1e-9."""
    workload = generate_workload(
        SyntheticWorkloadParams(
            n_files=5_000,
            arrival_rate=6.0,
            duration=max(800.0, 4_000.0 * scale),
            seed=7,
        )
    )
    cfg = StorageConfig(
        num_disks=100,
        load_constraint=0.7,
        dpm_ladder="drpm4",
        dpm_policy=dpm_policy,
        control_interval=200.0,
    )
    mapping = allocate(workload.catalog, "pack", cfg, 6.0).mapping(
        workload.catalog.n
    )

    def run_engine(engine):
        return StorageSystem(
            workload.catalog, mapping, cfg.with_overrides(engine=engine)
        ).run(workload.stream)

    # Best-of-N so a scheduling hiccup on a shared CI runner cannot flip
    # the speedup assertion (the fast run is only milliseconds long).
    event, event_s = _timed(lambda: run_engine("event"), rounds=2)
    fast, fast_s = _timed(lambda: run_engine("fast"), rounds=5)
    fast_s = max(fast_s, 1e-9)

    assert fast.energy == pytest.approx(event.energy, rel=1e-9)
    assert fast.spinups == event.spinups
    assert fast.spindowns == event.spindowns
    assert fast.completions == event.completions
    assert event.spindowns > 0
    with capsys.disabled():
        print(
            f"\n[ladder/{dpm_policy}] {len(workload.stream)} requests: "
            f"event {event_s:.3f}s, fast {fast_s:.4f}s "
            f"({event_s / fast_s:.1f}x speedup)"
        )
    assert event_s >= 5.0 * fast_s
