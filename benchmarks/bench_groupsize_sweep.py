"""Bench: §5.1's Pack_Disk_v sweep (v = 1..8 at a 0.5 h threshold).

Paper claim: v=4 is the knee — grouping helps response up to ~4 disks,
then only dilutes power saving.
"""

from repro.experiments import groupsize_sweep


def test_groupsize_sweep(benchmark, report, scale):
    result = benchmark.pedantic(
        groupsize_sweep.run, kwargs=dict(scale=scale), rounds=1, iterations=1
    )
    report(result)

    bundle = result.bundles["sweep"]
    saving = bundle.series["power saving"]
    resp = bundle.series["mean response (s)"]
    # Grouping trades power for response: v=8 saves no more than v=1.
    assert saving.y[-1] <= saving.y[0] + 0.02
    # Response at the paper's recommended v=4 is no worse than v=1.
    v4 = resp.y[resp.x.index(4.0)]
    v1 = resp.y[resp.x.index(1.0)]
    assert v4 <= v1 * 1.1
