"""Bench: out-of-core streaming — flat memory and kernel throughput.

Not a paper figure.  These guard the tentpole property of the chunked
fast kernel: peak RSS is bounded by the chunk size, not the workload
length.  Each memory measurement runs in a fresh subprocess (so one
python heap cannot pollute the next) generating arrivals with
``ChunkedPoissonStream`` and folding them through
``simulate_fast_chunked`` in ``metrics_mode="streaming"`` — at no point
does a full arrival array exist.  A 10x longer workload must stay within
1.5x the peak RSS of the short one.  The throughput case checks that
chunked execution of an in-memory stream costs at most 2x the
monolithic kernel (it is usually within ~20%).
"""

import json
import math
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from conftest import bench_scale
from repro.system import StorageConfig, StorageSystem, allocate
from repro.workload.generator import SyntheticWorkloadParams, generate_workload

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Runs in a fresh interpreter; prints a JSON line with peak RSS (KiB on
#: Linux via ``resource.getrusage``), wall time, and completion count.
_CHILD = """
import json, resource, sys, time
import numpy as np
from repro.disk.specs import ST3500630AS
from repro.sim.fastkernel import simulate_fast_chunked
from repro.workload.chunked import ChunkedPoissonStream

n_requests = int(sys.argv[1])
rate = 2000.0
duration = n_requests / rate
n_files, num_disks = 500, 20
rng = np.random.default_rng(0)
sizes = rng.uniform(1e6, 40e6, size=n_files)
pops = rng.dirichlet(np.ones(n_files))
mapping = np.arange(n_files, dtype=np.int64) % num_disks

stream = ChunkedPoissonStream(
    pops, rate=rate, duration=duration, chunk_size=65_536, seed=42
)
t0 = time.perf_counter()
result = simulate_fast_chunked(
    sizes, mapping, ST3500630AS, num_disks, 15.0, stream, duration,
    metrics_mode="streaming",
)
wall = time.perf_counter() - t0
assert result.response_times is None
assert result.response_stats.count == result.completions
print(json.dumps({
    "rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "wall_s": wall,
    "completions": result.completions,
    "arrivals": result.arrivals,
}))
"""


def _measure(n_requests: int) -> dict:
    env = dict(os.environ, PYTHONPATH=SRC)
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, str(n_requests)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_streaming_memory_is_flat(capsys):
    """Peak RSS must not grow with workload length (1.5x tolerance)."""
    scale = bench_scale()
    small_n = max(100_000, int(1_000_000 * scale))
    large_n = small_n * 10
    small = _measure(small_n)
    large = _measure(large_n)
    assert small["arrivals"] > 0.9 * small_n
    assert large["arrivals"] > 0.9 * large_n
    ratio = large["rss_kib"] / max(small["rss_kib"], 1)
    with capsys.disabled():
        print(
            f"\n[streaming/rss] {small['arrivals']} reqs -> "
            f"{small['rss_kib'] / 1024:.1f} MiB, "
            f"{large['arrivals']} reqs -> "
            f"{large['rss_kib'] / 1024:.1f} MiB "
            f"({ratio:.2f}x for a 10x longer workload)"
        )
    assert ratio <= 1.5, (
        f"streaming RSS grew {ratio:.2f}x for a 10x longer workload"
    )


def test_chunked_throughput(capsys):
    """Chunked execution of an in-memory stream: at most 2x monolithic."""
    scale = bench_scale()
    workload = generate_workload(
        SyntheticWorkloadParams(
            n_files=4_000,
            arrival_rate=8.0,
            duration=max(600.0, 4_000.0 * scale),
            seed=7,
        )
    )
    cfg = StorageConfig(num_disks=100, load_constraint=0.7)
    mapping = allocate(workload.catalog, "pack", cfg, 8.0).mapping(
        workload.catalog.n
    )

    def timed(chunk_size, rounds=3):
        best = math.inf
        result = None
        system = StorageSystem(
            workload.catalog,
            mapping,
            cfg.with_overrides(engine="fast", chunk_size=chunk_size),
        )
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = system.run(workload.stream)
            best = min(best, time.perf_counter() - t0)
        return result, best

    mono, mono_s = timed(None)
    chunk, chunk_s = timed(65_536)
    mono_s = max(mono_s, 1e-9)

    assert np.array_equal(mono.response_times, chunk.response_times)
    assert mono.energy == chunk.energy
    assert mono.spinups == chunk.spinups
    with capsys.disabled():
        print(
            f"\n[streaming/throughput] {len(workload.stream)} requests: "
            f"monolithic {mono_s:.4f}s, chunked {chunk_s:.4f}s "
            f"({chunk_s / mono_s:.2f}x)"
        )
    assert chunk_s <= 2.0 * mono_s
