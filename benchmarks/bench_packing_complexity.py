"""Bench: the §3 algorithmic claim — O(n log n) vs the O(n^2) reference.

Times both implementations on identical instances (outputs are
bit-identical; only the data structures differ) and benchmarks the heap
kernel itself.
"""

import numpy as np

from repro.core import MaxHeap, make_items, pack_disks, pack_disks_quadratic
from repro.experiments import ablations


def _instance(n, seed=7):
    rng = np.random.default_rng(seed)
    return make_items(rng.uniform(0.001, 0.3, n), rng.uniform(0.001, 0.3, n))


def test_complexity_ablation(benchmark, report, scale):
    result = benchmark.pedantic(
        ablations.run_complexity, kwargs=dict(scale=scale), rounds=1, iterations=1
    )
    report(result)
    assert any("True" in n for n in result.notes)
    # The heap version must win at the largest measured size.
    runtime = result.bundles["runtime"]
    fast = runtime.series["pack_disks (heap)"].y[-1]
    slow = runtime.series["reference (scan)"].y[-1]
    assert fast < slow


def test_pack_disks_throughput_40k(benchmark):
    """Packing the paper's full 40000-item instance."""
    items = _instance(40_000)
    allocation = benchmark(pack_disks, items)
    assert allocation.num_items == 40_000


def test_quadratic_reference_2k(benchmark):
    """The reference at a size where it is still tolerable to run."""
    items = _instance(2_000)
    allocation = benchmark(pack_disks_quadratic, items)
    assert allocation.num_items == 2_000


def test_heap_build_and_drain(benchmark):
    keys = np.random.default_rng(1).uniform(0, 1, 50_000)

    def build_and_drain():
        heap = MaxHeap((k, i) for i, k in enumerate(keys))
        while heap:
            heap.pop()

    benchmark(build_and_drain)
