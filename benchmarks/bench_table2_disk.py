"""Bench: regenerate Table 2 / Figure 1 (disk characteristics + power modes).

Also micro-benchmarks the power-model energy integration, the hot inner
operation of the energy accounting.
"""

from repro.disk import DiskState, PowerModel, ST3500630AS
from repro.experiments import table2_disk


def test_table2_regeneration(benchmark, report):
    result = benchmark.pedantic(table2_disk.run, rounds=1, iterations=1)
    report(result)
    assert "53.3 secs" in result.tables["table2"]


def test_power_model_energy_integration(benchmark):
    pm = PowerModel(ST3500630AS)
    durations = {
        DiskState.IDLE: 1_000.0,
        DiskState.STANDBY: 2_000.0,
        DiskState.ACTIVE: 300.0,
        DiskState.SEEK: 5.0,
        DiskState.SPINUP: 45.0,
        DiskState.SPINDOWN: 30.0,
    }
    energy = benchmark(pm.energy, durations)
    assert energy > 0
