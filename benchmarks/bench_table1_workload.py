"""Bench: regenerate Table 1 (the synthetic workload parameters).

Times the full 40000-file catalog + request-stream synthesis (vectorized;
this is what every Figure 2-4 grid point pays).
"""

from repro.experiments import table1_workload
from repro.workload import SyntheticWorkloadParams, generate_workload


def test_table1_regeneration(benchmark, report):
    result = benchmark.pedantic(table1_workload.run, rounds=1, iterations=1)
    report(result)
    assert "Table 1" in result.tables["table1"]


def test_workload_generation_throughput(benchmark):
    params = SyntheticWorkloadParams(
        n_files=40_000, arrival_rate=6.0, duration=4_000.0, seed=1
    )
    workload = benchmark(generate_workload, params)
    assert workload.catalog.n == 40_000
