"""Bench: regenerate Figure 5 (power saving vs idleness threshold, NERSC).

Paper shape targets: Pack_Disk(4) saves a high, nearly flat fraction of the
always-spinning cost; RND's saving collapses as the threshold grows; the
16 GB LRU cache helps only marginally (hit ratio ~5.6%).  The trace sweep
is memoized for Figure 6's bench.
"""

from repro.experiments import fig5_idleness_power


def test_fig5_regeneration(benchmark, report, scale):
    result = benchmark.pedantic(
        fig5_idleness_power.run, kwargs=dict(scale=scale), rounds=1, iterations=1
    )
    report(result)

    bundle = result.bundles["power_saving"]
    rnd = bundle.series["RND"]
    pack = bundle.series["Pack_Disk"]
    pack4 = bundle.series["Pack_Disk4"]

    # RND's saving falls sharply with the threshold...
    assert rnd.y[0] - rnd.y[-1] > 0.3
    # ...while Pack_Disk stays much flatter...
    assert (pack.y[0] - pack.y[-1]) < 0.6 * (rnd.y[0] - rnd.y[-1])
    # ...and beats RND decisively at the 2 h threshold.
    assert pack.y[-1] > rnd.y[-1] + 0.2
    assert pack4.y[-1] > rnd.y[-1]
    # High absolute saving for the packing family (paper: ~85%).
    assert max(pack.y) > 0.6
