"""Bench: the placement ablation grid through the SweepRunner's caches.

Guards two properties of the write-placement sweep:

* the grid really dispatches through the shared orchestrator (every point
  executed exactly once, policy-salted fingerprints distinct per policy);
* the disk-backed result cache pays off — a *fresh* runner pointed at the
  same cache directory replays the grid >= 5x faster than the cold pass
  (it only unpickles results, simulating nothing).
"""

import time

import pytest

from repro.experiments.orchestrator import SweepRunner
from repro.experiments.placement_sweep import build_tasks
from repro.system.placement import placement_policy_names


def _grid(scale):
    return build_tasks(
        scale=scale,
        seed=20090607,
        rate=3.0,
        policies=placement_policy_names(),
        write_fractions=(0.2,),
        thresholds=(30.0, 90.0),
        num_disks=100,
        load_constraint=0.7,
    )


def test_placement_sweep_disk_cache_speedup(scale, tmp_path, capsys):
    tasks = _grid(scale)
    cache_dir = tmp_path / "sweeps"

    cold_runner = SweepRunner(max_workers=1, engine="fast", cache_dir=cache_dir)
    t0 = time.perf_counter()
    cold = cold_runner.run_map(tasks)
    cold_s = time.perf_counter() - t0
    assert cold_runner.stats.executed == len(tasks)
    assert cold_runner.stats.cached == 0
    assert all(r.completions > 0 for r in cold.values())

    # Policy-salted fingerprints: same workload + threshold, different
    # policy must be a different point (nothing deduplicated away).
    per_policy = {
        key: res for key, res in cold.items() if key[1:] == (0.2, 30.0)
    }
    assert len(per_policy) == len(placement_policy_names())

    # A fresh runner on the same directory must be served from disk.
    warm_runner = SweepRunner(max_workers=1, engine="fast", cache_dir=cache_dir)
    t0 = time.perf_counter()
    warm = warm_runner.run_map(tasks)
    warm_s = max(time.perf_counter() - t0, 1e-9)
    assert warm_runner.stats.executed == 0
    assert warm_runner.stats.cached == len(tasks)
    for key, res in warm.items():
        assert res.energy == pytest.approx(cold[key].energy, rel=1e-12)

    with capsys.disabled():
        print(
            f"\n[placement-sweep] {len(tasks)} points: cold {cold_s:.2f}s, "
            f"disk-cached {warm_s:.4f}s ({cold_s / warm_s:.0f}x)"
        )
    assert cold_s >= 5.0 * warm_s
