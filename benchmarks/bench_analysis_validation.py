"""Bench: analytic models vs simulation (the 'analysis' of the title).

Cross-validates the M/G/1 response model and the Poisson idle-period power
model against the discrete-event simulator on a mid-size array, and times
the closed-form evaluations (they must stay orders of magnitude cheaper
than simulating).
"""

import math

from repro.analysis import (
    allocation_power_estimate,
    allocation_response_estimate,
    disk_power_estimate,
    mg1_response_time,
)
from repro.core import pack_disks
from repro.disk import ST3500630AS
from repro.reporting.table import format_table
from repro.system import StorageConfig, build_items, simulate
from repro.workload import FileCatalog, RequestStream


def _setup(rate=1.0, n=600, seed=4):
    catalog = FileCatalog.from_zipf(n=n, s_max=1e9, s_min=1e8)
    cfg = StorageConfig(
        num_disks=12, load_constraint=0.6, idleness_threshold=math.inf
    )
    items = build_items(catalog, cfg, rate)
    alloc = pack_disks(items)
    stream = RequestStream.poisson(
        catalog.popularities, rate=rate, duration=15_000.0, rng=seed
    )
    return catalog, cfg, alloc, stream


def test_response_model_validation(benchmark, capsys):
    rate = 1.0
    catalog, cfg, alloc, stream = _setup(rate)
    service = cfg.service_model()

    estimate = benchmark(
        allocation_response_estimate, catalog, alloc, rate, service
    )

    result = simulate(catalog, stream, alloc, cfg, num_disks=12)
    error = abs(estimate - result.mean_response) / result.mean_response
    with capsys.disabled():
        print()
        print(format_table(
            [["mean response (s)", f"{result.mean_response:.3f}",
              f"{estimate:.3f}", f"{error:.1%}"]],
            headers=["metric", "simulated", "analytic", "error"],
            title="M/G/1 response model vs simulator",
        ))
    assert error < 0.2


def test_power_model_validation(benchmark, capsys):
    rate = 1.0
    catalog, cfg, alloc, stream = _setup(rate)
    cfg = cfg.with_overrides(idleness_threshold=None)  # break-even policy
    service = cfg.service_model()

    estimate = benchmark(
        allocation_power_estimate,
        catalog, alloc, rate, service, cfg.threshold, cfg.spec,
        12,
    )

    result = simulate(catalog, stream, alloc, cfg, num_disks=12)
    error = abs(estimate - result.mean_power) / result.mean_power
    with capsys.disabled():
        print()
        print(format_table(
            [["array power (W)", f"{result.mean_power:.1f}",
              f"{estimate:.1f}", f"{error:.1%}"]],
            headers=["metric", "simulated", "analytic", "error"],
            title="Idle-period power model vs simulator",
        ))
    assert error < 0.2


def test_closed_form_throughput(benchmark):
    """The per-disk closed forms, evaluated as a planner would (hot loop)."""

    def sweep():
        total = 0.0
        for lam in (1e-4, 1e-3, 1e-2, 1e-1):
            total += disk_power_estimate(lam, 5.0, 53.3, ST3500630AS)
            total += mg1_response_time(lam, 5.0, 40.0)
        return total

    assert benchmark(sweep) > 0
