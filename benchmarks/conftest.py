"""Benchmark harness configuration.

Every figure/table of the paper has one bench module here.  The expensive
regenerations run exactly once per session (``benchmark.pedantic`` with one
round); the experiment's table is printed to the terminal (bypassing pytest
capture) and saved under ``benchmarks/results/``.

Scaling: the ``REPRO_BENCH_SCALE`` environment variable (default ``0.25``)
shrinks simulated duration / trace length while preserving rates and
distribution shapes.  Run with ``REPRO_BENCH_SCALE=1.0`` for the paper's
full configuration (a few extra minutes).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """The session's scale factor (see module docstring)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture
def report(capsys):
    """Print an ExperimentResult to the real terminal and save its CSVs."""

    def _report(result) -> None:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        result.save_csv(RESULTS_DIR)
        text = result.to_text()
        (RESULTS_DIR / f"{result.name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _report
