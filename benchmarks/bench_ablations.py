"""Bench: the remaining design-choice ablations DESIGN.md calls out.

* size/popularity correlation (the paper's synthetic assumption vs the
  real-log finding),
* cache replacement policy (paper §6 future work),
* size-class segregation (paper §6 observation).
"""

from repro.experiments import ablations


def test_correlation_ablation(benchmark, report, scale):
    result = benchmark.pedantic(
        ablations.run_correlation, kwargs=dict(scale=scale), rounds=1, iterations=1
    )
    report(result)
    saving = result.bundles["correlation"].series["saving"].y
    # Inverse (paper's assumption) and none (real logs) must both save.
    assert saving[0] > 0.2
    assert saving[1] > 0.2


def test_cache_policy_ablation(benchmark, report, scale):
    result = benchmark.pedantic(
        ablations.run_cache_policies,
        kwargs=dict(scale=min(scale, 0.25)),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert "lru" in result.tables["cache"]


def test_segregation_ablation(benchmark, report, scale):
    result = benchmark.pedantic(
        ablations.run_segregation, kwargs=dict(scale=scale), rounds=1, iterations=1
    )
    report(result)
    assert "pack_segregated" in result.tables["segregation"]
