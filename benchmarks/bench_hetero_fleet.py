"""Bench (extension): heterogeneous fleets through the fast kernel.

Per-disk spec vectors must not erase the batched kernel's advantage:
``StorageConfig(fleet=...)`` turns every scalar in the banks (transfer
rate, access overhead, spin times, power draws, thresholds) into a
per-disk vector, and this bench guards that a mixed-generation pool —
with and without per-slot DPM ladders — still beats the event engine
>= 5x while agreeing to 1e-9.
"""

import math
import time

import pytest

from repro.disk.fleet import Fleet, FleetDisk
from repro.disk.specs import ST3500630AS, WD10EADS
from repro.system import StorageConfig, StorageSystem, allocate
from repro.workload.generator import SyntheticWorkloadParams, generate_workload

#: Per-slot ladders and thresholds: the Seagate runs the 4-rung DRPM
#: ladder, the green drive stays two-state (ladder backfill) with an
#: aggressive per-slot threshold — the maximally mixed kernel path
#: (per-group ladder assembly + per-disk threshold vectors).
TIERED = Fleet(
    "tiered",
    (
        FleetDisk(ST3500630AS, ladder="drpm4"),
        FleetDisk(WD10EADS, threshold=30.0),
    ),
)

FLEETS = {"mixed_generation": "mixed_generation", "tiered_ladders": TIERED}


def _timed(run, rounds):
    best = math.inf
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - t0)
    return result, best


@pytest.mark.parametrize("fleet_name", sorted(FLEETS))
def test_fast_engine_speedup_hetero_fleet(scale, capsys, fleet_name):
    """Mixed-fleet runs: the fast kernel must win >= 5x over the event
    engine with per-disk spec (and ladder) vectors, agreeing to 1e-9."""
    workload = generate_workload(
        SyntheticWorkloadParams(
            n_files=5_000,
            arrival_rate=6.0,
            duration=max(800.0, 4_000.0 * scale),
            seed=11,
        )
    )
    cfg = StorageConfig(
        num_disks=100,
        load_constraint=0.7,
        fleet=FLEETS[fleet_name],
    )
    # Packing normalizes by the representative (smallest, disk-0 Seagate)
    # capacity, so every bin fits every drive of the mixed pool.
    mapping = allocate(workload.catalog, "pack", cfg, 6.0).mapping(
        workload.catalog.n
    )

    def run_engine(engine):
        return StorageSystem(
            workload.catalog, mapping, cfg.with_overrides(engine=engine)
        ).run(workload.stream)

    # Best-of-N so a scheduling hiccup on a shared CI runner cannot flip
    # the speedup assertion (the fast run is only milliseconds long).
    event, event_s = _timed(lambda: run_engine("event"), rounds=2)
    fast, fast_s = _timed(lambda: run_engine("fast"), rounds=5)
    fast_s = max(fast_s, 1e-9)

    assert fast.energy == pytest.approx(event.energy, rel=1e-9)
    assert fast.spinups == event.spinups
    assert fast.spindowns == event.spindowns
    assert fast.completions == event.completions
    assert event.spindowns > 0  # the mixed pool exercises spin transitions
    with capsys.disabled():
        print(
            f"\n[fleet/{fleet_name}] {len(workload.stream)} requests: "
            f"event {event_s:.3f}s, fast {fast_s:.4f}s "
            f"({event_s / fast_s:.1f}x speedup)"
        )
    assert event_s >= 5.0 * fast_s
