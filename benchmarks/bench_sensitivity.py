"""Bench: sensitivity studies (idleness threshold; service-time model)."""

from repro.experiments import sensitivity


def test_threshold_sensitivity(benchmark, report, scale):
    result = benchmark.pedantic(
        sensitivity.run_threshold, kwargs=dict(scale=scale), rounds=1, iterations=1
    )
    report(result)
    bundle = result.bundles["threshold"]
    rnd = bundle.series["rnd saving (norm.)"]
    pack = bundle.series["pack saving (norm.)"]
    thresholds = pack.x

    # Pack's cold-disk advantage holds at every threshold.
    assert all(p > r for p, r in zip(pack.y, rnd.y))
    # On this busy Poisson workload random's per-disk gaps sit below
    # break-even: thresholds shorter than break-even actively waste energy
    # (spin thrash), so random's saving *rises* toward its no-spin-down
    # plateau as the threshold grows.
    assert rnd.y[0] < rnd.y[-1] + 1e-9
    # The break-even threshold is near-optimal for Pack_Disks: within 0.1
    # of the best saving across the sweep.
    at_breakeven = pack.y[thresholds.index(53.3)]
    assert at_breakeven > max(pack.y) - 0.1
    # Spin cycles drop monotonically as the threshold grows.
    spins = bundle.series["rnd spin-ups"].y
    assert all(b <= a for a, b in zip(spins, spins[1:]))


def test_service_mode_sensitivity(benchmark, report, scale):
    result = benchmark.pedantic(
        sensitivity.run_service_mode, kwargs=dict(scale=scale), rounds=1, iterations=1
    )
    report(result)
    table = result.tables["service_mode"]
    assert "full" in table and "transfer" in table
