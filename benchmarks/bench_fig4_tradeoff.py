"""Bench: regenerate Figure 4 (power and response vs load constraint, R=6).

Paper shape targets: monotone trade-off — raising L lowers power and
raises response time.
"""

import numpy as np

from repro.experiments import fig4_tradeoff


def test_fig4_regeneration(benchmark, report, scale):
    result = benchmark.pedantic(
        fig4_tradeoff.run, kwargs=dict(scale=scale), rounds=1, iterations=1
    )
    report(result)

    bundle = result.bundles["tradeoff"]
    power = np.array(bundle.series["Power (W)"].y)
    resp = np.array(bundle.series["Response (s)"].y)
    # Trend assertions via endpoints (individual points are noisy):
    assert power[-1] < power[0], "power must fall as L grows"
    assert resp[-1] > resp[0], "response must rise as L grows"
    # Disks used must be non-increasing in L (packing is deterministic).
    disks = result.bundles["disks"].series["pack_disks"].y
    assert all(b <= a for a, b in zip(disks, disks[1:]))
